//! Closes the diagnosis loop: a fault-injection campaign where every
//! diagnosed root cause is handed to `pod-recovery`, which executes the
//! mapped repair plan against the simulated cloud, re-checks the violated
//! assertions, and conformance-checks its own log against the recovery
//! process model — then prints success/escalation rates and the MTTR
//! (detection → verified repair) distribution per fault type.
//!
//! Run with `cargo run --release --example recovery_loop`.
//! Pass a number to change runs-per-fault (e.g. `-- 5` for a quick pass).
//! Pass `--json` to also write `BENCH_recovery.json` — one JSON-lines
//! record for the campaign plus one per fault type, carrying
//! success/escalation rates, MTTR p50/p95 and the MTTR phase breakdown.
//! Pass `--baseline <path>` to regression-gate against a committed
//! `BENCH_recovery.baseline.json`: since the campaign runs in virtual
//! time, same config + seed reproduce the committed numbers exactly, and
//! the gate fails (non-zero exit) when the fresh MTTR p50 exceeds 1.1x
//! the committed one.

use pod_diagnosis::eval::{
    recovery_lines, render_journal, render_report, Campaign, CampaignConfig,
};
use pod_log::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let runs_per_fault: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(10);
    let config = CampaignConfig {
        runs_per_fault,
        seed: 2014, // the year of the paper
        recovery: true,
        ..CampaignConfig::default()
    };
    eprintln!(
        "running {} upgrades ({} per fault type) with the recovery stage on — all in virtual \
         time...",
        runs_per_fault * 8,
        runs_per_fault
    );
    let started = std::time::Instant::now();
    let report = Campaign::new(config).run();
    eprintln!("campaign finished in {:.1?} wall-clock", started.elapsed());
    println!("{}", render_report(&report));

    let rec = &report.recovery;
    println!("-- closed-loop invariant --");
    println!(
        "recovered {} + escalated {} == attempted {} (no diagnosed incident dropped: {})",
        rec.recovered,
        rec.escalated,
        rec.attempted,
        rec.recovered + rec.escalated == rec.attempted
    );

    if json {
        let lines = recovery_lines("recovery-loop", rec);
        std::fs::write("BENCH_recovery.json", render_journal(&lines))
            .expect("write BENCH_recovery.json");
        eprintln!(
            "wrote {} journal records to BENCH_recovery.json",
            lines.len()
        );
    }

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .find(|j| j.get("record").and_then(Json::as_str) == Some("recovery"))
            .and_then(|j| j.get("mttr_p50_us").and_then(Json::as_f64))
            .unwrap_or_else(|| panic!("baseline {path} has no recovery record with mttr_p50_us"));
        let fresh = rec.mttr.percentile(0.5).as_micros() as f64;
        println!(
            "regression gate: fresh mttr_p50 {:.0}us vs committed {:.0}us (limit 1.1x)",
            fresh, committed
        );
        if fresh > 1.1 * committed {
            eprintln!(
                "REGRESSION: mttr_p50 {fresh:.0}us exceeds 1.1x the committed {committed:.0}us"
            );
            std::process::exit(1);
        }
    }
}
