//! Closes the diagnosis loop: a fault-injection campaign where every
//! diagnosed root cause is handed to `pod-recovery`, which executes the
//! mapped repair plan against the simulated cloud, re-checks the violated
//! assertions, and conformance-checks its own log against the recovery
//! process model — then prints success/escalation rates and the MTTR
//! (detection → verified repair) distribution per fault type.
//!
//! Run with `cargo run --release --example recovery_loop`.
//! Pass a number to change runs-per-fault (e.g. `-- 5` for a quick pass).
//! Pass `--json` to also write `BENCH_recovery.json` — one JSON-lines
//! record for the campaign plus one per fault type, carrying
//! success/escalation rates and MTTR p50/p95.

use pod_diagnosis::eval::{
    recovery_lines, render_journal, render_report, Campaign, CampaignConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let runs_per_fault: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(10);
    let config = CampaignConfig {
        runs_per_fault,
        seed: 2014, // the year of the paper
        recovery: true,
        ..CampaignConfig::default()
    };
    eprintln!(
        "running {} upgrades ({} per fault type) with the recovery stage on — all in virtual \
         time...",
        runs_per_fault * 8,
        runs_per_fault
    );
    let started = std::time::Instant::now();
    let report = Campaign::new(config).run();
    eprintln!("campaign finished in {:.1?} wall-clock", started.elapsed());
    println!("{}", render_report(&report));

    let rec = &report.recovery;
    println!("-- closed-loop invariant --");
    println!(
        "recovered {} + escalated {} == attempted {} (no diagnosed incident dropped: {})",
        rec.recovered,
        rec.escalated,
        rec.attempted,
        rec.recovered + rec.escalated == rec.attempted
    );

    if json {
        let lines = recovery_lines("recovery-loop", rec);
        std::fs::write("BENCH_recovery.json", render_journal(&lines))
            .expect("write BENCH_recovery.json");
        eprintln!(
            "wrote {} journal records to BENCH_recovery.json",
            lines.len()
        );
    }
}
