//! The gateway soak: ≥64 interleaved faulty upgrades through `pod-gateway`.
//!
//! Phase A runs every upgrade on its own simulated cloud (one injected
//! fault per operation, shared-account interference on every 4th, plaintext
//! application noise) and serializes the logs to raw wire lines. Phase B
//! merges all streams by arrival time and replays them through one sharded
//! gateway with a fresh POD engine per operation — then sweeps the batch
//! size and demonstrates overload shedding with a deliberately tiny queue.
//!
//! Run with `cargo run --release --example gateway_soak`.
//! Pass a number to change the operation count (e.g. `-- 16`).
//! Pass `--policy shed-oldest|shed-newest|block` for the main replay.
//! Pass `--recovery` to wire the recovery stage in: every tenant engine's
//! detections feed one shared `RecoveryStorm` whose repairs contend for
//! the gateway's admission gate (bounded lanes, shared-API throttling,
//! shed-to-sweep fallback). The run asserts zero dropped incidents and
//! replays a second same-seed soak to prove byte-identical transcripts
//! under maximal contention; `--json` then writes
//! `BENCH_recovery_soak.json` (the recovery-storm/recovery-tenant journal)
//! and `FLIGHT_recovery-soak.json`, and `--baseline <path>` gates the
//! storm-mode MTTR p50 at 1.1x a committed baseline.
//! Pass `--json` (without `--recovery`) to also write:
//! - `BENCH_gateway.json` — lines/sec (wall and virtual), the batch-size
//!   sweep, per-shard p50/p95/p99 queue waits and the replay latency budget;
//! - `JOURNAL_gateway.json` — the gateway's pod-obs snapshot plus the
//!   gateway/gateway-shard records for the main and stress replays;
//! - `FLIGHT_gateway-soak.json` — the flight recorder's black box: every
//!   periodic frame with counters/gauges/quantiles plus incident marks.

use pod_diagnosis::eval::{
    collect_streams, flight_json, gateway_lines, recovery_soak_lines, render_gateway_report,
    render_journal, render_soak_report, replay, replay_with_recovery, snapshot_lines,
    soak_bench_json, sweep_batches, SoakConfig,
};
use pod_diagnosis::gateway::{GatewayConfig, OverloadPolicy};
use pod_diagnosis::obs::render_dashboard;
use pod_diagnosis::recovery::StormConfig;
use pod_diagnosis::sim::SimDuration;
use pod_log::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let recovery = args.iter().any(|a| a == "--recovery");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let ops: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(64);
    let policy: OverloadPolicy = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.parse().expect("valid overload policy"))
        .unwrap_or(OverloadPolicy::Block);

    let config = SoakConfig {
        ops,
        seed: 2014,
        ..SoakConfig::default()
    };
    if recovery {
        return recovery_soak(&config, policy, json, baseline);
    }
    eprintln!("phase A: running {ops} faulty upgrades, each on its own cloud...");
    let started = std::time::Instant::now();
    let streams = collect_streams(&config);
    eprintln!(
        "collected {} raw lines from {} upgrades in {:.1?} wall-clock",
        streams.lines_total,
        streams.ops.len(),
        started.elapsed()
    );

    let base = GatewayConfig {
        overload: policy,
        ..GatewayConfig::default()
    };
    eprintln!(
        "phase B: replaying the interleaved feed through {} shards ({} policy)...",
        base.shards, base.overload
    );
    let replay_started = std::time::Instant::now();
    let report = replay(&streams, &base);
    let wall_secs = replay_started.elapsed().as_secs_f64();
    println!("{}", render_soak_report(&report));
    assert!(
        report.leaks.is_empty(),
        "cross-operation leakage detected: {:?}",
        report.leaks
    );

    // The flight recorder's live view: one sparkline per key metric across
    // the frame window, with `!` marks where incidents landed.
    if let Some(flight) = &report.flight {
        println!("-- flight dashboard --");
        println!(
            "{}",
            render_dashboard(
                flight,
                &[
                    "gateway.lines.processed",
                    "gateway.batches",
                    "gateway.deferred",
                    "gateway.queue_wait_us",
                ],
            )
        );
    }

    eprintln!("batch-size sweep...");
    let sweep = sweep_batches(&streams, &base, &[1, 4, 16, 64]);
    println!("-- batch-size sweep (same feed, same policy) --");
    for (batch, stats) in &sweep {
        println!(
            "batch {batch:>3}: {:>9.0} lines/s virtual, {:>6} batches, {:>6} deferred, {:>5} blocked",
            stats.lines_per_sec_virtual(),
            stats.batches,
            stats.deferred,
            stats.blocked
        );
    }
    println!();

    // Overload demonstration: a queue far too small for the burst pattern,
    // shedding oldest-first. Every lost line is accounted for.
    let stress_config = GatewayConfig {
        queue_capacity: 4,
        batch_size: 4,
        flush_interval: SimDuration::from_secs(5),
        overload: OverloadPolicy::ShedOldest,
        ..GatewayConfig::default()
    };
    let stress = replay(&streams, &stress_config);
    println!("-- overload stress (capacity 4, shed-oldest) --");
    print!("{}", render_gateway_report(&stress.stats));
    assert_eq!(
        stress.stats.lines_processed + stress.stats.total_shed(),
        streams.lines_total,
        "every line is delivered or counted as shed"
    );

    if json {
        let bench = soak_bench_json(&report, &sweep, wall_secs).to_string();
        std::fs::write("BENCH_gateway.json", bench + "\n").expect("write BENCH_gateway.json");
        eprintln!(
            "wrote gateway bench ({} ops, {} lines) to BENCH_gateway.json",
            report.ops.len(),
            report.lines_total
        );

        let mut lines = snapshot_lines("gateway-soak", &report.snapshot);
        lines.extend(gateway_lines("gateway-soak", &report.stats));
        lines.extend(gateway_lines("gateway-stress", &stress.stats));
        std::fs::write("JOURNAL_gateway.json", render_journal(&lines))
            .expect("write JOURNAL_gateway.json");
        eprintln!(
            "wrote {} journal records to JOURNAL_gateway.json",
            lines.len()
        );

        if let Some(flight) = &report.flight {
            let doc = flight_json("gateway-soak", flight).to_string();
            std::fs::write("FLIGHT_gateway-soak.json", doc + "\n")
                .expect("write FLIGHT_gateway-soak.json");
            eprintln!(
                "wrote {} flight frames ({} incident marks) to FLIGHT_gateway-soak.json",
                flight.frames.len(),
                flight.incidents.len()
            );
        }
    }
}

/// The recovery storm soak: the interleaved replay with every tenant's
/// repairs contending for the shared admission gate, run twice from the
/// same seed to prove byte-identical transcripts under contention.
fn recovery_soak(
    config: &SoakConfig,
    policy: OverloadPolicy,
    json: bool,
    baseline: Option<String>,
) {
    let base = GatewayConfig {
        overload: policy,
        ..GatewayConfig::default()
    };
    let storm = StormConfig::default();
    eprintln!(
        "recovery storm: {} tenants through {} repair lanes (throttle beyond {} in flight)...",
        config.ops, storm.lanes, storm.throttle_at
    );
    // Repairs mutate the per-tenant clouds, so each same-seed run starts
    // from freshly collected (deterministic) streams.
    let run = || {
        let streams = collect_streams(config);
        replay_with_recovery(&streams, &base, storm.clone())
    };
    let started = std::time::Instant::now();
    let report = run();
    eprintln!(
        "soak + recovery finished in {:.1?} wall-clock",
        started.elapsed()
    );
    println!("{}", render_soak_report(&report));
    assert!(
        report.leaks.is_empty(),
        "cross-operation leakage detected: {:?}",
        report.leaks
    );
    let rec = report.recovery.as_ref().expect("recovery stage ran");
    println!("-- storm invariant --");
    println!(
        "recovered {} + escalated {} == attempted {} (direct {} + {} plus {} deferred-then-swept; \
         zero dropped: {})",
        rec.recovered,
        rec.escalated,
        rec.attempted,
        rec.recovered_direct,
        rec.escalated_direct,
        rec.deferred_swept,
        rec.none_dropped()
    );
    assert!(rec.none_dropped(), "an incident was dropped: {rec:#?}");
    assert!(rec.attempted > 0, "faulty tenants must raise incidents");

    // The flight dashboard during a storm: the shed/admission/queue rows
    // (recovery.storm.* counters and gauges) light up next to incidents.
    if let Some(flight) = &report.flight {
        println!("-- flight dashboard (storm) --");
        println!(
            "{}",
            render_dashboard(
                flight,
                &[
                    "gateway.lines.processed",
                    "gateway.queue_wait_us",
                    "recovery.storm.concurrent",
                ],
            )
        );
    }

    // Quiet baseline: same seed, same tenants, but a lane per tenant and
    // no throttling — the same repairs with zero contention. Same plans,
    // same verdicts; only the virtual clock moves.
    let quiet_cfg = StormConfig {
        lanes: config.ops.max(1),
        max_lane_wait: SimDuration::from_secs(3600),
        throttle_at: config.ops,
        ..storm.clone()
    };
    let quiet_report = replay_with_recovery(&collect_streams(config), &base, quiet_cfg);
    let quiet = quiet_report.recovery.as_ref().unwrap();
    assert_eq!(
        (quiet.recovered, quiet.escalated),
        (rec.recovered, rec.escalated),
        "contention must never change outcomes, only timing"
    );
    println!("-- quiet vs storm (same seed, same repairs) --");
    println!(
        "{:<8} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "mode", "throttled", "deferred", "mttr_p50_us", "mttr_p95_us", "mttr_max_us"
    );
    for (name, r) in [("quiet", quiet), ("storm", rec)] {
        println!(
            "{:<8} {:>9} {:>9} {:>12} {:>12} {:>12}",
            name,
            r.throttled,
            r.deferred_swept,
            r.mttr.percentile(0.5).as_micros(),
            r.mttr.percentile(0.95).as_micros(),
            r.mttr.max().as_micros()
        );
    }
    println!();

    eprintln!("replaying the same seed again to prove transcript determinism...");
    let again = run();
    assert_eq!(
        report.digest(),
        again.digest(),
        "same seed + same interleaving must give a byte-identical report digest"
    );
    assert_eq!(
        rec.transcript(),
        again.recovery.as_ref().unwrap().transcript(),
        "recovery transcripts must be byte-identical under contention"
    );
    println!(
        "determinism: two same-seed storms produced byte-identical transcripts ({} bytes)",
        rec.transcript().len()
    );

    if json {
        let lines = recovery_soak_lines("recovery-soak", rec);
        std::fs::write("BENCH_recovery_soak.json", render_journal(&lines))
            .expect("write BENCH_recovery_soak.json");
        eprintln!(
            "wrote {} journal records to BENCH_recovery_soak.json",
            lines.len()
        );
        if let Some(flight) = &report.flight {
            let doc = flight_json("recovery-soak", flight).to_string();
            std::fs::write("FLIGHT_recovery-soak.json", doc + "\n")
                .expect("write FLIGHT_recovery-soak.json");
            eprintln!(
                "wrote {} flight frames ({} incident marks) to FLIGHT_recovery-soak.json",
                flight.frames.len(),
                flight.incidents.len()
            );
        }
    }

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .find(|j| j.get("record").and_then(Json::as_str) == Some("recovery-storm"))
            .and_then(|j| j.get("mttr_p50_us").and_then(Json::as_f64))
            .unwrap_or_else(|| {
                panic!("baseline {path} has no recovery-storm record with mttr_p50_us")
            });
        let fresh = rec.mttr.percentile(0.5).as_micros() as f64;
        println!(
            "regression gate: fresh storm mttr_p50 {fresh:.0}us vs committed {committed:.0}us \
             (limit 1.1x)"
        );
        if fresh > committed * 1.1 {
            eprintln!("REGRESSION: storm-mode MTTR p50 exceeds 1.1x the committed baseline");
            std::process::exit(1);
        }
    }
}
