//! The gateway soak: ≥64 interleaved faulty upgrades through `pod-gateway`.
//!
//! Phase A runs every upgrade on its own simulated cloud (one injected
//! fault per operation, shared-account interference on every 4th, plaintext
//! application noise) and serializes the logs to raw wire lines. Phase B
//! merges all streams by arrival time and replays them through one sharded
//! gateway with a fresh POD engine per operation — then sweeps the batch
//! size and demonstrates overload shedding with a deliberately tiny queue.
//!
//! Run with `cargo run --release --example gateway_soak`.
//! Pass a number to change the operation count (e.g. `-- 16`).
//! Pass `--policy shed-oldest|shed-newest|block` for the main replay.
//! Pass `--json` to also write:
//! - `BENCH_gateway.json` — lines/sec (wall and virtual), the batch-size
//!   sweep, per-shard p50/p95/p99 queue waits and the replay latency budget;
//! - `JOURNAL_gateway.json` — the gateway's pod-obs snapshot plus the
//!   gateway/gateway-shard records for the main and stress replays;
//! - `FLIGHT_gateway-soak.json` — the flight recorder's black box: every
//!   periodic frame with counters/gauges/quantiles plus incident marks.

use pod_diagnosis::eval::{
    collect_streams, flight_json, gateway_lines, render_gateway_report, render_journal,
    render_soak_report, replay, snapshot_lines, soak_bench_json, sweep_batches, SoakConfig,
};
use pod_diagnosis::gateway::{GatewayConfig, OverloadPolicy};
use pod_diagnosis::obs::render_dashboard;
use pod_diagnosis::sim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let ops: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(64);
    let policy: OverloadPolicy = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.parse().expect("valid overload policy"))
        .unwrap_or(OverloadPolicy::Block);

    let config = SoakConfig {
        ops,
        seed: 2014,
        ..SoakConfig::default()
    };
    eprintln!("phase A: running {ops} faulty upgrades, each on its own cloud...");
    let started = std::time::Instant::now();
    let streams = collect_streams(&config);
    eprintln!(
        "collected {} raw lines from {} upgrades in {:.1?} wall-clock",
        streams.lines_total,
        streams.ops.len(),
        started.elapsed()
    );

    let base = GatewayConfig {
        overload: policy,
        ..GatewayConfig::default()
    };
    eprintln!(
        "phase B: replaying the interleaved feed through {} shards ({} policy)...",
        base.shards, base.overload
    );
    let replay_started = std::time::Instant::now();
    let report = replay(&streams, &base);
    let wall_secs = replay_started.elapsed().as_secs_f64();
    println!("{}", render_soak_report(&report));
    assert!(
        report.leaks.is_empty(),
        "cross-operation leakage detected: {:?}",
        report.leaks
    );

    // The flight recorder's live view: one sparkline per key metric across
    // the frame window, with `!` marks where incidents landed.
    if let Some(flight) = &report.flight {
        println!("-- flight dashboard --");
        println!(
            "{}",
            render_dashboard(
                flight,
                &[
                    "gateway.lines.processed",
                    "gateway.batches",
                    "gateway.deferred",
                    "gateway.queue_wait_us",
                ],
            )
        );
    }

    eprintln!("batch-size sweep...");
    let sweep = sweep_batches(&streams, &base, &[1, 4, 16, 64]);
    println!("-- batch-size sweep (same feed, same policy) --");
    for (batch, stats) in &sweep {
        println!(
            "batch {batch:>3}: {:>9.0} lines/s virtual, {:>6} batches, {:>6} deferred, {:>5} blocked",
            stats.lines_per_sec_virtual(),
            stats.batches,
            stats.deferred,
            stats.blocked
        );
    }
    println!();

    // Overload demonstration: a queue far too small for the burst pattern,
    // shedding oldest-first. Every lost line is accounted for.
    let stress_config = GatewayConfig {
        queue_capacity: 4,
        batch_size: 4,
        flush_interval: SimDuration::from_secs(5),
        overload: OverloadPolicy::ShedOldest,
        ..GatewayConfig::default()
    };
    let stress = replay(&streams, &stress_config);
    println!("-- overload stress (capacity 4, shed-oldest) --");
    print!("{}", render_gateway_report(&stress.stats));
    assert_eq!(
        stress.stats.lines_processed + stress.stats.total_shed(),
        streams.lines_total,
        "every line is delivered or counted as shed"
    );

    if json {
        let bench = soak_bench_json(&report, &sweep, wall_secs).to_string();
        std::fs::write("BENCH_gateway.json", bench + "\n").expect("write BENCH_gateway.json");
        eprintln!(
            "wrote gateway bench ({} ops, {} lines) to BENCH_gateway.json",
            report.ops.len(),
            report.lines_total
        );

        let mut lines = snapshot_lines("gateway-soak", &report.snapshot);
        lines.extend(gateway_lines("gateway-soak", &report.stats));
        lines.extend(gateway_lines("gateway-stress", &stress.stats));
        std::fs::write("JOURNAL_gateway.json", render_journal(&lines))
            .expect("write JOURNAL_gateway.json");
        eprintln!(
            "wrote {} journal records to JOURNAL_gateway.json",
            lines.len()
        );

        if let Some(flight) = &report.flight {
            let doc = flight_json("gateway-soak", flight).to_string();
            std::fs::write("FLIGHT_gateway-soak.json", doc + "\n")
                .expect("write FLIGHT_gateway-soak.json");
            eprintln!(
                "wrote {} flight frames ({} incident marks) to FLIGHT_gateway-soak.json",
                flight.frames.len(),
                flight.incidents.len()
            );
        }
    }
}
