//! Experiment E6: reproduce the paper's sample diagnosis transcript
//! (Section III.B.4) — a wrong-AMI fault whose diagnosis walks the fault
//! tree, excludes the other potential faults one by one, and pinpoints the
//! rogue AMI as the root cause.
//!
//! Run with `cargo run --example rolling_upgrade_diagnosis`.

use pod_diagnosis::cloud::Cloud;
use pod_diagnosis::eval::{build_engine, build_scenario, ScenarioConfig};
use pod_diagnosis::log::{LogEvent, LogQuery};
use pod_diagnosis::orchestrator::{FaultInjector, FaultType, RollingUpgrade, UpgradeObserver};
use pod_diagnosis::sim::{SimRng, SimTime};

struct Monitor<'s> {
    engine: pod_diagnosis::core::PodEngine,
    scenario: &'s pod_diagnosis::eval::Scenario,
    injection: Option<(SimTime, FaultInjector)>,
    rng: SimRng,
}

impl UpgradeObserver for Monitor<'_> {
    fn on_log(&mut self, event: LogEvent) {
        self.engine.ingest(event);
    }

    fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
        if let Some((at, _)) = &self.injection {
            if now >= *at {
                let (_, mut injector) = self.injection.take().expect("checked above");
                injector.inject(
                    cloud,
                    &self.scenario.upgrade,
                    &self.scenario.upgrade_lc_name,
                    &mut self.rng,
                );
            }
        }
        self.engine.poll();
    }
}

fn main() {
    let config = ScenarioConfig {
        seed: 1119, // 2013-11-19, the date in the paper's sample log
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    scenario.cloud.obs().begin_run(&scenario.trace_id);
    let engine = build_engine(&scenario, &config);
    let mut monitor = Monitor {
        engine,
        scenario: &scenario,
        injection: Some((
            SimTime::from_secs(70),
            FaultInjector::new(FaultType::AmiChangedDuringUpgrade),
        )),
        rng: SimRng::seed_from(13),
    };
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    upgrade.run(&mut monitor);
    let summary = monitor.engine.finish();

    println!("== operation log (tagged lines forwarded to central storage) ==");
    for e in scenario
        .storage
        .query(&LogQuery::new().with_source("asgard.log"))
    {
        println!("{e}");
    }

    println!();
    println!("== assertion-evaluation log ==");
    for e in scenario
        .storage
        .query(&LogQuery::new().with_type("assertion"))
        .iter()
        .take(14)
    {
        println!("{e}");
    }

    println!();
    println!("== diagnosis transcript (compare with Section III.B.4 of the paper) ==");
    for e in scenario
        .storage
        .query(&LogQuery::new().with_type("diagnosis"))
    {
        println!("{e}");
    }

    println!();
    println!("== operator report ==");
    for d in &summary.detections {
        if let Some(diag) = &d.diagnosis {
            println!(
                "[{}] detected via {:?} (step {}): {} — {} potential faults, {} excluded, \
                 {} tests run in {}",
                d.at,
                d.source,
                d.step.as_deref().unwrap_or("-"),
                d.description,
                diag.potential_faults,
                diag.excluded,
                diag.tests_run,
                diag.duration,
            );
            for cause in &diag.root_causes {
                println!("    ROOT CAUSE: {}", cause.description);
            }
        }
    }

    let obs = scenario.cloud.obs();
    println!();
    println!("== incident timelines (causal chains, virtual time) ==");
    print!(
        "{}",
        pod_diagnosis::obs::render_timelines(&obs.events().records())
    );
    println!();
    println!("== span tree (virtual time) ==");
    print!("{}", obs.tracer().render_tree());
    println!();
    println!("== span flame summary ==");
    print!("{}", obs.tracer().render_flame());
    println!();
    println!("== metrics summary ==");
    print!("{}", pod_diagnosis::obs::render_summary(&obs.snapshot()));
    let spans_dropped = obs.tracer().dropped();
    let events_dropped = obs.events().dropped();
    if spans_dropped > 0 || events_dropped > 0 {
        println!(
            "WARNING: retention caps hit — {spans_dropped} span(s) and {events_dropped} causal \
             event(s) dropped; the trace exports below are incomplete"
        );
    } else {
        println!("spans dropped: 0, causal events dropped: 0");
    }

    let spans = obs.tracer().finished();
    let events = obs.events().records();
    let chrome = pod_diagnosis::obs::chrome_trace(&scenario.trace_id, &spans, &events);
    std::fs::write("TRACE_e6.json", chrome).expect("write chrome trace");
    let otlp = pod_diagnosis::obs::otlp_json(&scenario.trace_id, &spans, &events);
    std::fs::write("TRACE_e6_otlp.json", otlp).expect("write otlp trace");
    println!(
        "exported {} spans and {} causal events to TRACE_e6.json (Chrome trace-event) and \
         TRACE_e6_otlp.json (OTLP-style JSON)",
        spans.len(),
        events.len()
    );
}
