//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. diagnostic-test ordering: fault probability vs expected test cost;
//! 2. fault-tree amendment: with vs without the instance-limit root cause
//!    (the paper's fourth wrong-diagnosis class);
//! 3. detection modes: how much conformance checking contributes on top of
//!    assertions (the §V.D 20-of-80 discussion);
//! 4. fault-tree memoisation: tests run with and without result reuse.
//!
//! Each ablation runs a reduced campaign (deterministic seeds) and reports
//! the quality/virtual-time deltas. Run with
//! `cargo run --release --example ablation_study`.

use pod_diagnosis::eval::{render_metrics_line, Campaign, CampaignConfig};
use pod_diagnosis::faulttree::TestOrder;

fn campaign(mutate: impl FnOnce(&mut CampaignConfig)) -> pod_diagnosis::eval::CampaignReport {
    let mut config = CampaignConfig {
        runs_per_fault: 8,
        seed: 2014,
        ..CampaignConfig::default()
    };
    mutate(&mut config);
    Campaign::new(config).run()
}

fn main() {
    println!("== Ablation 1: diagnostic-test ordering ==");
    println!("   (the walk always runs every relevant test; ordering changes how fast the");
    println!("    first root cause is confirmed)");
    for (label, order) in [
        (
            "by fault probability (paper default)",
            TestOrder::ByProbability,
        ),
        ("by expected test cost", TestOrder::ByCost),
    ] {
        let report = campaign(|c| c.test_order = order);
        let latencies: Vec<pod_diagnosis::sim::SimDuration> = report
            .records
            .iter()
            .flat_map(|r| r.outcome.first_cause_latencies.iter().copied())
            .collect();
        let stats = pod_diagnosis::eval::TimingStats::new(latencies);
        println!(
            "  {label:<38} time-to-first-cause: mean {}, p95 {} (n={}) | {}",
            stats.mean(),
            stats.percentile(0.95),
            stats.len(),
            render_metrics_line("quality", &report.overall)
        );
    }

    println!();
    println!("== Ablation 2: fault-tree amendment (instance-limit root cause) ==");
    for (label, amended) in [
        ("un-amended (as evaluated in the paper)", false),
        ("amended", true),
    ] {
        let report = campaign(|c| {
            c.amended_trees = amended;
            // Force capacity-pressure interference so the limit case occurs.
            c.interference_fraction = 1.0;
            c.interference_kinds =
                vec![pod_diagnosis::orchestrator::Interference::OtherTeamCapacityPressure];
        });
        println!(
            "  {label:<38} {}",
            render_metrics_line("quality", &report.overall)
        );
    }

    println!();
    println!("== Ablation 3: what conformance checking adds ==");
    let report = campaign(|c| c.interference_fraction = 0.0);
    let resource_runs: Vec<_> = report
        .records
        .iter()
        .filter(|r| !r.plan.fault.is_configuration_fault())
        .collect();
    let conf_first = resource_runs
        .iter()
        .filter(|r| r.outcome.conformance_first)
        .count();
    let conf_any = resource_runs
        .iter()
        .filter(|r| r.outcome.conformance_any)
        .count();
    println!(
        "  resource-fault runs: {} — conformance flagged first in {}, at all in {}",
        resource_runs.len(),
        conf_first,
        conf_any
    );
    let config_runs: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.plan.fault.is_configuration_fault())
        .collect();
    let config_conf = config_runs
        .iter()
        .filter(|r| r.outcome.conformance_any)
        .count();
    println!(
        "  configuration-fault runs: {} — conformance flagged {} (paper: these are invisible \
         to conformance)",
        config_runs.len(),
        config_conf
    );

    println!();
    println!("== Ablation 4: fault-tree memoisation ==");
    // Measured directly on the diagnosis engine (a tree where a shared
    // child appears under two branches).
    use pod_diagnosis::assert::{CloudAssertion, ConsistentApi, RetryPolicy};
    use pod_diagnosis::faulttree::{
        DiagnosisContext, DiagnosisEngine, DiagnosticTest, FaultNode, FaultTree,
    };
    let (cloud, env) = pod_bench_cloud();
    let shared = FaultNode::root_cause(
        "shared-check",
        "a shared diagnostic check",
        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
        0.5,
    );
    let tree = FaultTree::new(
        "k",
        FaultNode::branch("root", "top")
            .child(shared.clone())
            .child(shared.clone())
            .child(shared),
    );
    let ctx = DiagnosisContext {
        env,
        step: None,
        instance: None,
        operation_started: pod_diagnosis::sim::SimTime::ZERO,
    };
    let api = ConsistentApi::new(cloud, RetryPolicy::default());
    let storage = pod_diagnosis::log::LogStorage::new();
    let memo = DiagnosisEngine::new(api.clone(), storage.clone()).diagnose(&tree, &ctx);
    let nomemo = DiagnosisEngine::new(api, storage)
        .without_memoisation()
        .diagnose(&tree, &ctx);
    println!(
        "  memoised:    {} tests run in {}",
        memo.tests_run, memo.duration
    );
    println!(
        "  unmemoised:  {} tests run in {}",
        nomemo.tests_run, nomemo.duration
    );
}

/// A small standalone cluster for ablation 4.
fn pod_bench_cloud() -> (
    pod_diagnosis::cloud::Cloud,
    pod_diagnosis::assert::ExpectedEnv,
) {
    use pod_diagnosis::cloud::{Cloud, CloudConfig};
    use pod_diagnosis::sim::{Clock, SimRng};
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(77),
        CloudConfig {
            stale_read_prob: 0.0,
            ..CloudConfig::default()
        },
    );
    let ami = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc =
        cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
    let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 4, Some(elb.clone()));
    let env = pod_diagnosis::assert::ExpectedEnv {
        asg,
        elb,
        launch_config: lc,
        expected_ami: ami,
        expected_version: "2.0".into(),
        expected_key_pair: kp,
        expected_security_group: sg,
        expected_instance_type: "m1.small".into(),
        expected_count: 4,
    };
    (cloud, env)
}
