//! Offline use of the central log storage: after several upgrades (some
//! healthy, one with a fault), the accumulated operation logs are analysed
//! after the fact — per-trace conformance verdicts — and fed back into
//! process discovery, exactly the two offline uses the paper names for the
//! central log storage.
//!
//! Run with `cargo run --release --example offline_analysis`.

use pod_diagnosis::core::offline::analyse;
use pod_diagnosis::eval::{build_scenario, ScenarioConfig};
use pod_diagnosis::log::LogEvent;
use pod_diagnosis::mining::{mine_process, MiningConfig};
use pod_diagnosis::orchestrator::{
    process_def, CollectingObserver, FaultInjector, FaultType, RollingUpgrade, UpgradeObserver,
};
use pod_diagnosis::sim::{SimRng, SimTime};

fn run_and_collect(seed: u64, fault: Option<FaultType>) -> Vec<LogEvent> {
    let config = ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    struct Obs<'s> {
        inner: CollectingObserver,
        scenario: &'s pod_diagnosis::eval::Scenario,
        injection: Option<(SimTime, FaultInjector)>,
        rng: SimRng,
    }
    impl UpgradeObserver for Obs<'_> {
        fn on_log(&mut self, event: LogEvent) {
            self.inner.on_log(event);
        }
        fn on_tick(&mut self, cloud: &pod_diagnosis::cloud::Cloud, now: SimTime) {
            if let Some((at, _)) = &self.injection {
                if now >= *at {
                    let (_, mut injector) = self.injection.take().expect("checked");
                    injector.inject(
                        cloud,
                        &self.scenario.upgrade,
                        &self.scenario.upgrade_lc_name,
                        &mut self.rng,
                    );
                }
            }
        }
    }
    let mut obs = Obs {
        inner: CollectingObserver::default(),
        scenario: &scenario,
        injection: fault.map(|f| (SimTime::from_secs(60), FaultInjector::new(f))),
        rng: SimRng::seed_from(seed ^ 0xFF),
    };
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    upgrade.run(&mut obs);
    obs.inner.events
}

fn main() {
    // A week of operations: four healthy upgrades and one that hit an
    // unavailable AMI, all merged in central storage.
    let mut stored = Vec::new();
    for seed in [41u64, 42, 43, 44] {
        stored.extend(run_and_collect(seed, None));
    }
    stored.extend(run_and_collect(45, Some(FaultType::AmiUnavailable)));
    println!(
        "central storage holds {} operation-log lines\n",
        stored.len()
    );

    // Offline use 1: conformance analysis of every stored trace.
    let report = analyse(
        &stored,
        &process_def::rolling_upgrade_model(),
        &process_def::rolling_upgrade_rules(),
        &process_def::known_error_patterns(),
        |e| e.field("taskid").map(str::to_string),
    )
    .expect("patterns compile");
    println!("== offline conformance analysis ==");
    println!(
        "{:<12} {:>6} {:>5} {:>6} {:>7} {:>12} {:>9}",
        "trace", "events", "fit", "unfit", "errors", "unclassified", "complete"
    );
    for t in &report.traces {
        println!(
            "{:<12} {:>6} {:>5} {:>6} {:>7} {:>12} {:>9}",
            t.trace_id, t.events, t.fit, t.unfit, t.known_errors, t.unclassified, t.complete
        );
    }
    for t in report.deviating() {
        println!(
            "\ndeviating trace {}: stopped after `{}`, model expected {:?}",
            t.trace_id,
            t.last_activity.as_deref().unwrap_or("<nothing>"),
            t.expected_next
        );
    }

    // Offline use 2: future process discovery from the same storage —
    // mining only the healthy traces.
    let healthy_ids: Vec<String> = report
        .traces
        .iter()
        .filter(|t| t.is_clean())
        .map(|t| t.trace_id.clone())
        .collect();
    let healthy_events: Vec<LogEvent> = stored
        .iter()
        .filter(|e| {
            e.field("taskid")
                .is_some_and(|id| healthy_ids.iter().any(|h| h == id))
        })
        .cloned()
        .collect();
    let mined = mine_process(
        &healthy_events,
        |e| e.field("taskid").map(str::to_string),
        &MiningConfig::default(),
    )
    .expect("healthy traces mine cleanly");
    println!(
        "\n== offline re-discovery from the same storage ==\nmined {} activities from {} healthy \
         traces; fitness on them: {:.4}",
        mined.model.task_names().len(),
        mined.traces.len(),
        pod_diagnosis::process::replay_fitness(&mined.model, &mined.traces).fitness()
    );
}
