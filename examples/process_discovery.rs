//! Experiment E1: regenerate the Figure-2 process model by process mining.
//!
//! Generates operation logs from several successful rolling upgrades (the
//! way the paper collected Asgard logs), clusters the lines by string
//! distance, derives per-activity regular expressions, builds the
//! directly-follows graph and discovers the BPMN model — then validates the
//! mined model by token-replay fitness against held-out runs and prints it
//! as Graphviz DOT.
//!
//! Run with `cargo run --example process_discovery`.

use pod_diagnosis::eval::{build_scenario, ScenarioConfig};
use pod_diagnosis::mining::{mine_process, MiningConfig};
use pod_diagnosis::orchestrator::{CollectingObserver, RollingUpgrade};
use pod_diagnosis::process::replay_fitness;

/// Runs one healthy upgrade and returns its operation log.
fn record_run(seed: u64, cluster: u32) -> Vec<pod_diagnosis::log::LogEvent> {
    let config = ScenarioConfig {
        seed,
        cluster_size: cluster,
        batch_size: if cluster > 4 { 4 } else { 1 },
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    let mut obs = CollectingObserver::default();
    let report = upgrade.run(&mut obs);
    assert!(report.outcome.is_success(), "training runs must be healthy");
    obs.events
}

fn main() {
    // Training logs: five successful upgrades over 4- and 8-instance
    // clusters (varying loop counts, like the paper's mixed traces).
    let mut events = Vec::new();
    for (i, cluster) in [(1u64, 4u32), (2, 4), (3, 8), (4, 4), (5, 8)] {
        events.extend(record_run(i, cluster));
    }
    println!(
        "training log: {} lines from 5 successful upgrades",
        events.len()
    );

    let mined = mine_process(
        &events,
        |e| e.field("taskid").map(str::to_string),
        &MiningConfig {
            model_name: "rolling-upgrade-mined".to_string(),
            ..MiningConfig::default()
        },
    )
    .expect("discovery succeeds on healthy traces");

    println!("\n== mined activities and their derived regular expressions ==");
    for rule in mined.rules.rules() {
        println!("  {}", rule.activity);
        for re in &rule.patterns {
            println!("      /{}/", re.as_str());
        }
    }

    println!("\n== directly-follows graph ==");
    for (from, to, freq) in mined.dfg.edges() {
        println!("  {from:<42} -> {to:<42} x{freq}");
    }

    println!("\n== discovered model (Graphviz DOT — compare with Figure 2) ==");
    println!("{}", mined.model.to_dot());

    // Fitness against the training traces and a held-out larger run.
    let counts = replay_fitness(&mined.model, &mined.traces);
    println!("fitness on training traces: {:.4}", counts.fitness());

    let holdout = record_run(99, 12);
    let holdout_trace: Vec<String> = holdout
        .iter()
        .filter_map(|e| mined.rules.match_line(&e.message).map(|m| m.activity))
        .collect();
    let counts = replay_fitness(&mined.model, &[holdout_trace]);
    println!(
        "fitness on a held-out 12-instance upgrade: {:.4}",
        counts.fitness()
    );
}
