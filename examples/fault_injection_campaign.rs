//! Reproduces the paper's evaluation (Section V): 160 fault-injection runs
//! (8 fault types × 20 runs) of a rolling upgrade on clusters of 4 or 20
//! instances, confounded by concurrent operations — then prints Table I,
//! Figure 6 and Figure 7.
//!
//! Run with `cargo run --release --example fault_injection_campaign`.
//! Pass a number to change runs-per-fault (e.g. `-- 5` for a quick pass).
//! Pass `--json` to also write:
//! - `BENCH_campaign_{n}x8.json` — Table-I metrics, the aggregated pod-obs
//!   snapshot, and the last run's incident chains as JSON-lines records;
//! - `BENCH_pod.json` — the latency budget: per-stage virtual-time self
//!   time, p50/p95/p99 per fault type;
//! - `TRACE_campaign.json` — the last run's spans and causal events as a
//!   Chrome trace-event file (load it in Perfetto / `chrome://tracing`);
//! - `TRACE_campaign_otlp.json` — the same trace as OTLP-style JSON.

use pod_diagnosis::eval::{
    incident_lines, metrics_line, render_journal, render_report, snapshot_lines, Campaign,
    CampaignConfig,
};
use pod_diagnosis::obs::{chrome_trace, incidents, otlp_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let runs_per_fault: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(20);
    let config = CampaignConfig {
        runs_per_fault,
        seed: 2014, // the year of the paper
        ..CampaignConfig::default()
    };
    eprintln!(
        "running {} upgrades ({} per fault type) — all in virtual time...",
        runs_per_fault * 8,
        runs_per_fault
    );
    let started = std::time::Instant::now();
    let report = Campaign::new(config).run();
    eprintln!("campaign finished in {:.1?} wall-clock", started.elapsed());
    println!("{}", render_report(&report));
    let mut counts = std::collections::BTreeMap::new();
    for r in &report.records {
        for s in &r.detection_sources {
            *counts.entry(format!("{s:?}")).or_insert(0usize) += 1;
        }
    }
    println!("-- raw detection sources --");
    for (k, v) in counts {
        println!("{k:<28} {v}");
    }

    if json {
        let mut lines = vec![metrics_line("overall", &report.overall)];
        for (fault, set) in &report.per_fault {
            lines.push(metrics_line(&fault.to_string(), set));
        }
        lines.extend(snapshot_lines("campaign", &report.obs_totals));
        if let Some(dump) = &report.last_trace {
            lines.extend(incident_lines(&dump.trace_id, &incidents(&dump.events)));
        }
        let path = format!("BENCH_campaign_{}x8.json", runs_per_fault);
        std::fs::write(&path, render_journal(&lines)).expect("write journal");
        eprintln!("wrote {} journal records to {path}", lines.len());

        let bench = report.latency.bench_json().to_string();
        std::fs::write("BENCH_pod.json", bench + "\n").expect("write BENCH_pod.json");
        eprintln!(
            "wrote latency budget ({} runs, {} fault types) to BENCH_pod.json",
            report.latency.runs(),
            report.latency.faults().len()
        );

        if let Some(dump) = &report.last_trace {
            let chrome = chrome_trace(&dump.trace_id, &dump.spans, &dump.events);
            std::fs::write("TRACE_campaign.json", chrome).expect("write chrome trace");
            let otlp = otlp_json(&dump.trace_id, &dump.spans, &dump.events);
            std::fs::write("TRACE_campaign_otlp.json", otlp).expect("write otlp trace");
            eprintln!(
                "wrote last run's trace ({} spans, {} events) to TRACE_campaign.json / \
                 TRACE_campaign_otlp.json",
                dump.spans.len(),
                dump.events.len()
            );
        }
    }

    println!("-- paper targets --");
    println!("precision 91.95%, recall 100%, accuracy (of detected) 96.55%, AR 97.13%");
    println!("diagnosis time: min 1.29s, mean 2.30s, p95 <= 3.83s, max 10.44s");
    println!("conformance: 20 of 80 resource-fault runs flagged before assertions");
}
