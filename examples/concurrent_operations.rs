//! Interference demo: a rolling upgrade confounded by simultaneous
//! operations — a legitimate scale-in (later acknowledged by the operator)
//! and a random instance termination — showing how process context
//! separates expected changes from real anomalies, and how diagnosis
//! attributes each detection.
//!
//! Run with `cargo run --example concurrent_operations`.

use pod_diagnosis::cloud::Cloud;
use pod_diagnosis::core::SharedEnv;
use pod_diagnosis::eval::{build_engine, build_scenario, ScenarioConfig};
use pod_diagnosis::log::LogEvent;
use pod_diagnosis::orchestrator::{Interference, RollingUpgrade, UpgradeObserver};
use pod_diagnosis::sim::{SimRng, SimTime};

struct Monitor<'s> {
    engine: pod_diagnosis::core::PodEngine,
    scenario: &'s pod_diagnosis::eval::Scenario,
    env: SharedEnv,
    schedule: Vec<(SimTime, Interference)>,
    ack_at: Option<SimTime>,
    rng: SimRng,
}

impl UpgradeObserver for Monitor<'_> {
    fn on_log(&mut self, event: LogEvent) {
        self.engine.ingest(event);
    }

    fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
        let due: Vec<(SimTime, Interference)> = {
            let (fire, keep): (Vec<_>, Vec<_>) =
                self.schedule.drain(..).partition(|(at, _)| now >= *at);
            self.schedule = keep;
            fire
        };
        for (_, kind) in due {
            kind.apply(cloud, &self.scenario.upgrade, &mut self.rng);
            println!(">>> concurrent operation at {now}: {kind:?}");
            if kind == Interference::ScaleIn {
                // The operator acknowledges the legitimate change 75 s later.
                self.ack_at = Some(SimTime::from_micros(now.as_micros() + 75_000_000));
            }
        }
        if let Some(at) = self.ack_at {
            if now >= at {
                self.env.update(|e| e.expected_count -= 1);
                self.ack_at = None;
                println!(">>> operator acknowledged the scale-in at {now} (N := N-1)");
            }
        }
        self.engine.poll();
    }
}

fn main() {
    let config = ScenarioConfig {
        seed: 23,
        cluster_size: 8,
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    let engine = build_engine(&scenario, &config);
    let mut monitor = Monitor {
        engine,
        scenario: &scenario,
        env: scenario.env.clone(),
        schedule: vec![
            (SimTime::from_secs(120), Interference::ScaleIn),
            (SimTime::from_secs(300), Interference::RandomTermination),
        ],
        ack_at: None,
        rng: SimRng::seed_from(5),
    };
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    let report = upgrade.run(&mut monitor);
    let summary = monitor.engine.finish();

    println!(
        "\nupgrade {:?}; {} detections",
        report.outcome,
        summary.detections.len()
    );
    for d in &summary.detections {
        println!("  [{}] {:?}: {}", d.at, d.source, d.description);
        if let Some(diag) = &d.diagnosis {
            for c in &diag.root_causes {
                println!("      root cause: {}", c.description);
            }
            for c in &diag.stopped_at {
                println!("      confirmed but cause unknown: {}", c.description);
            }
            if diag.root_causes.is_empty() && diag.stopped_at.is_empty() {
                println!("      no root cause identified");
            }
        }
    }
}
