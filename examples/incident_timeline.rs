//! Experiment E7: causal incident timelines — for each of the eight fault
//! types, run one faulty rolling upgrade and reconstruct, per detected
//! error, the ordered causal chain from the triggering log line through
//! detection, dispatch and fault-tree tests to the reported root cause,
//! with per-hop virtual-clock latency.
//!
//! Run with `cargo run --release --example incident_timeline`.
//! Pass `--json` to also write `JOURNAL_incidents.json`: one JSON-lines
//! record per incident chain across all eight runs.

use pod_diagnosis::eval::{
    execute_run_traced, incident_lines, render_journal, Campaign, CampaignConfig,
};
use pod_diagnosis::log::Json;
use pod_diagnosis::obs::{incidents, render_timelines};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    // One clean run per fault type: no interference, no transient reverts,
    // so each timeline shows exactly the injected fault's causal story.
    let campaign = Campaign::new(CampaignConfig {
        runs_per_fault: 1,
        seed: 1119, // the date in the paper's sample log
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        large_cluster_every: 0,
        ..CampaignConfig::default()
    });
    let mut journal: Vec<Json> = Vec::new();
    let mut total = 0usize;
    let mut anchored = 0usize;
    let mut complete = 0usize;
    for plan in campaign.plans() {
        let (record, dump) = execute_run_traced(&plan);
        println!("== fault: {} (trace {}) ==", plan.fault, dump.trace_id);
        print!("{}", render_timelines(&dump.events));
        println!();
        let chains = incidents(&dump.events);
        total += chains.len();
        anchored += chains.iter().filter(|c| c.anchored).count();
        complete += chains.iter().filter(|c| c.complete()).count();
        journal.extend(incident_lines(&dump.trace_id, &chains));
        if record.events_dropped > 0 {
            println!(
                "WARNING: {} causal event(s) dropped in this run; chains may be cut",
                record.events_dropped
            );
        }
    }
    println!(
        "== summary: {total} incident chains, {anchored} anchored at a log line, {complete} \
         carried through to a diagnosis verdict (the rest had their diagnosis suppressed by \
         the per-key cooldown) =="
    );
    if json {
        std::fs::write("JOURNAL_incidents.json", render_journal(&journal))
            .expect("write incident journal");
        eprintln!(
            "wrote {} incident records to JOURNAL_incidents.json",
            journal.len()
        );
    }
}
