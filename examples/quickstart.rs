//! Quickstart: monitor one rolling upgrade with POD-Diagnosis.
//!
//! Builds a 4-instance cluster on the simulated cloud, runs an Asgard-style
//! rolling upgrade through the POD engine twice — once healthy, once with a
//! wrong-AMI fault injected mid-flight — and prints what the engine saw.
//!
//! Run with `cargo run --example quickstart`.

use pod_diagnosis::cloud::Cloud;
use pod_diagnosis::eval::{build_engine, build_scenario, ScenarioConfig};
use pod_diagnosis::log::LogEvent;
use pod_diagnosis::orchestrator::{FaultInjector, FaultType, RollingUpgrade, UpgradeObserver};
use pod_diagnosis::sim::{SimRng, SimTime};

/// Wires orchestrator output into the POD engine and injects an optional
/// fault at a chosen virtual time.
struct Monitor<'s> {
    engine: pod_diagnosis::core::PodEngine,
    scenario: &'s pod_diagnosis::eval::Scenario,
    injection: Option<(SimTime, FaultInjector)>,
    rng: SimRng,
}

impl UpgradeObserver for Monitor<'_> {
    fn on_log(&mut self, event: LogEvent) {
        self.engine.ingest(event);
    }

    fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
        if let Some((at, _)) = &self.injection {
            if now >= *at {
                let (_, mut injector) = self.injection.take().expect("checked above");
                injector.inject(
                    cloud,
                    &self.scenario.upgrade,
                    &self.scenario.upgrade_lc_name,
                    &mut self.rng,
                );
                println!(">>> fault injected at {now}: {}", injector.fault());
            }
        }
        self.engine.poll();
    }
}

fn run(label: &str, fault: Option<FaultType>) {
    println!("=== {label} ===");
    let config = ScenarioConfig {
        seed: 7,
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    let engine = build_engine(&scenario, &config);
    let mut monitor = Monitor {
        engine,
        scenario: &scenario,
        injection: fault.map(|f| (SimTime::from_secs(90), FaultInjector::new(f))),
        rng: SimRng::seed_from(99),
    };
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    let report = upgrade.run(&mut monitor);
    let summary = monitor.engine.finish();
    println!(
        "upgrade {:?} in {} (virtual); {} log events checked by conformance, {} assertions \
         evaluated",
        report.outcome, report.duration, summary.conformance_events, summary.assertions_evaluated
    );
    if summary.detections.is_empty() {
        println!("no errors detected\n");
        return;
    }
    println!("{} detection(s):", summary.detections.len());
    for d in summary.detections.iter().take(4) {
        println!("  [{}] {:?}: {}", d.at, d.source, d.description);
        if let Some(diag) = &d.diagnosis {
            for cause in &diag.root_causes {
                println!(
                    "      -> root cause ({}): {}",
                    diag.duration, cause.description
                );
            }
        }
    }
    println!();
}

fn main() {
    run("healthy rolling upgrade", None);
    run(
        "rolling upgrade with a concurrent AMI change (fault type 1)",
        Some(FaultType::AmiChangedDuringUpgrade),
    );
}
