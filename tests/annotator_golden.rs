//! Golden test for the annotator's candidate dispatch: over the full E1
//! rolling-upgrade log (operation lines interleaved with application
//! noise), the literal-index fast path must classify every line exactly
//! like the naive match-each-pattern backtracking loop.

use pod_orchestrator::process_def::rolling_upgrade_rules;
use pod_regex::RegexSet;

#[test]
fn fast_path_annotation_matches_naive_over_e1_log() {
    let rules = rolling_upgrade_rules();
    let lines = pod_bench::upgrade_log_lines(7, 4, 4);
    assert!(lines.len() > 50, "fixture log is suspiciously short");
    let mut operation_hits = 0usize;
    let mut noise_misses = 0usize;
    for line in &lines {
        let fast = rules.match_line(line);
        let naive = rules.match_line_naive(line);
        assert_eq!(fast, naive, "divergence on line: {line}");
        match fast {
            Some(_) => operation_hits += 1,
            None => noise_misses += 1,
        }
    }
    // The E1 log must exercise both outcomes heavily: every operation
    // phase line is tagged, every noise line falls through.
    assert!(operation_hits >= 10, "only {operation_hits} lines tagged");
    assert!(noise_misses >= 40, "only {noise_misses} lines untagged");
}

#[test]
fn relevance_set_agrees_with_per_pattern_scan_over_e1_log() {
    let patterns = pod_orchestrator::process_def::relevance_patterns();
    let set = RegexSet::new(&patterns).unwrap();
    let regexes: Vec<pod_regex::Regex> = patterns
        .iter()
        .map(|p| pod_regex::Regex::new(p).unwrap())
        .collect();
    for line in pod_bench::upgrade_log_lines(11, 4, 4) {
        let via_set = set.matches(&line);
        let via_loop: Vec<usize> = regexes
            .iter()
            .enumerate()
            .filter(|(_, re)| re.is_match(&line))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(via_set, via_loop, "divergence on line: {line}");
    }
}
