//! Concurrency tests for the observability layer: two interleaved
//! operations, each on its own cloud and tracer, must keep their spans and
//! causal events fully separated — no cross-linked parents, no leaked
//! trace ids — even when driven from separate threads.

use std::collections::BTreeSet;
use std::thread;

use pod_diagnosis::eval::{build_engine, build_scenario, ScenarioConfig};
use pod_diagnosis::log::LogEvent;
use pod_diagnosis::orchestrator::{FaultInjector, FaultType, RollingUpgrade, UpgradeObserver};
use pod_diagnosis::sim::{SimRng, SimTime};

struct Monitor<'s> {
    engine: pod_diagnosis::core::PodEngine,
    scenario: &'s pod_diagnosis::eval::Scenario,
    injection: Option<(SimTime, FaultInjector)>,
    rng: SimRng,
}

impl UpgradeObserver for Monitor<'_> {
    fn on_log(&mut self, event: LogEvent) {
        self.engine.ingest(event);
    }

    fn on_tick(&mut self, cloud: &pod_diagnosis::cloud::Cloud, now: SimTime) {
        if let Some((at, _)) = &self.injection {
            if now >= *at {
                let (_, mut injector) = self.injection.take().expect("checked above");
                injector.inject(
                    cloud,
                    &self.scenario.upgrade,
                    &self.scenario.upgrade_lc_name,
                    &mut self.rng,
                );
            }
        }
        self.engine.poll();
    }
}

/// Runs one faulty upgrade end to end and returns its trace.
fn run_upgrade(
    seed: u64,
    fault: FaultType,
) -> (
    String,
    Vec<pod_diagnosis::obs::SpanRecord>,
    Vec<pod_diagnosis::obs::EventRecord>,
) {
    let config = ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    scenario.cloud.obs().begin_run(&scenario.trace_id);
    let engine = build_engine(&scenario, &config);
    let mut monitor = Monitor {
        engine,
        scenario: &scenario,
        injection: Some((SimTime::from_secs(70), FaultInjector::new(fault))),
        rng: SimRng::seed_from(seed ^ 0xBEEF),
    };
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    upgrade.run(&mut monitor);
    monitor.engine.finish();
    let obs = scenario.cloud.obs();
    assert_eq!(obs.tracer().trace_id(), scenario.trace_id);
    assert_eq!(obs.events().trace_id(), scenario.trace_id);
    (
        scenario.trace_id.clone(),
        obs.tracer().finished(),
        obs.events().records(),
    )
}

/// Every span parent and every event parent/span link must resolve within
/// the same trace (links only point at ids that exist, or were evicted —
/// never at another trace's ids, which these small runs never evict).
fn assert_self_contained(
    spans: &[pod_diagnosis::obs::SpanRecord],
    events: &[pod_diagnosis::obs::EventRecord],
) {
    let span_ids: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let event_ids: BTreeSet<u64> = events.iter().map(|e| e.id).collect();
    for span in spans {
        if let Some(parent) = span.parent {
            assert!(span_ids.contains(&parent), "span {} orphaned", span.id);
        }
    }
    for event in events {
        if let Some(parent) = event.parent {
            assert!(event_ids.contains(&parent), "event {} orphaned", event.id);
        }
        if let Some(span) = event.span {
            assert!(
                span_ids.contains(&span),
                "event {} points at unknown span",
                event.id
            );
        }
    }
}

#[test]
fn interleaved_upgrades_do_not_cross_link() {
    // Two upgrades with different faults run concurrently on independent
    // clouds; their traces must be disjoint and internally consistent.
    let a = thread::spawn(|| run_upgrade(101, FaultType::AmiChangedDuringUpgrade));
    let b = thread::spawn(|| run_upgrade(202, FaultType::ElbUnavailable));
    let (id_a, spans_a, events_a) = a.join().expect("upgrade A panicked");
    let (id_b, spans_b, events_b) = b.join().expect("upgrade B panicked");

    assert_ne!(id_a, id_b);
    assert!(!spans_a.is_empty() && !spans_b.is_empty());
    assert!(!events_a.is_empty() && !events_b.is_empty());
    assert_self_contained(&spans_a, &events_a);
    assert_self_contained(&spans_b, &events_b);

    // Both runs reconstruct incidents, and each run's chains stay anchored
    // in its own log — the other run's fault never leaks into the story.
    let incidents_a = pod_diagnosis::obs::incidents(&events_a);
    let incidents_b = pod_diagnosis::obs::incidents(&events_b);
    assert!(incidents_a.iter().any(|c| c.complete()));
    assert!(incidents_b.iter().any(|c| c.complete()));
    let causes_a: BTreeSet<String> = incidents_a
        .iter()
        .flat_map(|c| c.root_causes.iter().map(|r| r.name.to_string()))
        .collect();
    let causes_b: BTreeSet<String> = incidents_b
        .iter()
        .flat_map(|c| c.root_causes.iter().map(|r| r.name.to_string()))
        .collect();
    assert!(
        causes_a.contains("lc-wrong-ami"),
        "A diagnosed {causes_a:?}"
    );
    assert!(
        causes_b.contains("elb-unavailable"),
        "B diagnosed {causes_b:?}"
    );
    assert!(
        !causes_a.contains("elb-unavailable"),
        "cross-linked: {causes_a:?}"
    );
    assert!(
        !causes_b.contains("lc-wrong-ami"),
        "cross-linked: {causes_b:?}"
    );
}

#[test]
fn sequential_runs_on_one_cloud_reset_cleanly() {
    // Same scenario config reused: begin_run must give the second run a
    // fresh trace with no events or spans carried over.
    let config = ScenarioConfig {
        seed: 303,
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&config);
    let obs = scenario.cloud.obs();
    obs.begin_run("first");
    {
        let _span = obs.span("upgrade.step");
        obs.event("log.line", "asgard.log");
    }
    assert_eq!(obs.tracer().finished().len(), 1);
    assert_eq!(obs.events().len(), 1);
    obs.begin_run("second");
    assert_eq!(obs.tracer().trace_id(), "second");
    assert_eq!(obs.events().trace_id(), "second");
    assert!(obs.tracer().finished().is_empty());
    assert!(obs.events().is_empty());
    assert_eq!(obs.events().dropped(), 0);
}
