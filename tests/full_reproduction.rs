//! Repository-level integration tests: the full evaluation pipeline, run
//! small, must reproduce the paper's qualitative results and be
//! deterministic.

use pod_diagnosis::eval::{Campaign, CampaignConfig};

fn mini_config() -> CampaignConfig {
    CampaignConfig {
        runs_per_fault: 3,
        seed: 777,
        large_cluster_every: 3,
        ..CampaignConfig::default()
    }
}

#[test]
fn mini_campaign_reproduces_the_papers_shape() {
    let report = Campaign::new(mini_config()).run();
    let m = &report.overall;
    assert_eq!(m.runs, 24);
    // Recall is the paper's strongest claim (100%).
    assert!(
        m.detection_recall() >= 0.95,
        "recall {} too low",
        m.detection_recall()
    );
    // Precision and accuracy stay in the paper's regime (>85% on a small
    // sample; the full campaign lands at 90-95%).
    assert!(
        m.detection_precision() >= 0.80,
        "precision {}",
        m.detection_precision()
    );
    assert!(
        m.diagnosis_accuracy_over_detected() >= 0.85,
        "accuracy {}",
        m.diagnosis_accuracy_over_detected()
    );
    // Diagnosis times are seconds-scale with the paper's ordering.
    assert!(!report.timing.is_empty());
    let mean = report.timing.mean().as_secs_f64();
    assert!((0.8..6.0).contains(&mean), "mean diagnosis {mean}s");
    assert!(report.timing.max().as_secs_f64() < 30.0);
    assert!(report.timing.min().as_secs_f64() > 0.2);
}

/// The full 160-run campaign (the paper's exact scale) must land in the
/// paper's bands. This is the headline regression test; it runs the whole
/// evaluation in virtual time (~30 s of debug-build wall clock).
#[test]
fn full_campaign_matches_paper_bands() {
    let report = Campaign::new(CampaignConfig {
        runs_per_fault: 20,
        seed: 2014,
        ..CampaignConfig::default()
    })
    .run();
    let m = &report.overall;
    assert_eq!(m.runs, 160);
    assert_eq!(m.detection_recall(), 1.0, "paper: 100% recall");
    assert!(
        m.detection_precision() >= 0.88,
        "paper: 91.95%; measured {}",
        m.detection_precision()
    );
    assert!(
        m.diagnosis_accuracy_over_detected() >= 0.92,
        "paper: 96.55%; measured {}",
        m.diagnosis_accuracy_over_detected()
    );
    assert!(
        m.accuracy_rate() >= 0.90,
        "paper: 97.13%; measured {}",
        m.accuracy_rate()
    );
    // Figure 6 bands.
    let mean = report.timing.mean().as_secs_f64();
    assert!(
        (1.5..=3.5).contains(&mean),
        "paper mean 2.30s; measured {mean}"
    );
    let p95 = report.timing.percentile(0.95).as_secs_f64();
    assert!(p95 <= 5.0, "paper p95 3.83s; measured {p95}");
    assert!(report.timing.min().as_secs_f64() >= 0.5);
    // Figure 7: recall per fault type stays at 100%.
    for (fault, set) in &report.per_fault {
        assert_eq!(set.detection_recall(), 1.0, "{fault}");
    }
    // §V.D: configuration faults remain invisible to conformance in
    // interference-free runs; resource faults produce erroneous traces.
    assert_eq!(report.conformance.configuration_runs_flagged, 0);
    assert!(report.conformance.resource_runs_flagged_first >= 10);
}

#[test]
fn campaign_is_deterministic() {
    let a = Campaign::new(mini_config()).run();
    let b = Campaign::new(mini_config()).run();
    assert_eq!(a.overall, b.overall);
    assert_eq!(a.timing.samples(), b.timing.samples());
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.truth.injected_at, rb.truth.injected_at);
        assert_eq!(ra.outcome.raw_detections, rb.outcome.raw_detections);
        assert_eq!(ra.detection_sources, rb.detection_sources);
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = Campaign::new(CampaignConfig {
        seed: 1,
        runs_per_fault: 1,
        ..mini_config()
    })
    .run();
    let b = Campaign::new(CampaignConfig {
        seed: 2,
        runs_per_fault: 1,
        ..mini_config()
    })
    .run();
    let inject_a: Vec<_> = a.records.iter().map(|r| r.truth.injected_at).collect();
    let inject_b: Vec<_> = b.records.iter().map(|r| r.truth.injected_at).collect();
    assert_ne!(inject_a, inject_b);
}

#[test]
fn configuration_faults_stay_invisible_to_conformance() {
    // Interference-free campaign: the §V.D claim must hold exactly.
    let report = Campaign::new(CampaignConfig {
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        runs_per_fault: 3,
        seed: 31,
        ..CampaignConfig::default()
    })
    .run();
    for r in &report.records {
        if r.plan.fault.is_configuration_fault() {
            assert!(
                !r.outcome.conformance_any,
                "{:?} flagged by conformance",
                r.plan.fault
            );
        }
    }
    // And a sizable share of resource-fault runs produce erroneous traces.
    assert!(report.conformance.resource_runs_flagged >= report.conformance.resource_runs / 2);
}

#[test]
fn every_fault_type_is_diagnosed_correctly_in_clean_runs() {
    let report = Campaign::new(CampaignConfig {
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        runs_per_fault: 1,
        large_cluster_every: 0,
        seed: 555,
        ..CampaignConfig::default()
    })
    .run();
    for r in &report.records {
        assert!(r.outcome.fault_detected, "{:?} not detected", r.plan.fault);
        assert!(
            r.outcome.fault_diagnosed_correctly,
            "{:?} wrongly diagnosed",
            r.plan.fault
        );
        assert_eq!(r.outcome.false_positives, 0, "{:?}", r.plan.fault);
    }
}
