//! Bit-reproducibility and isolation of the gateway soak: the same seed
//! must produce byte-identical detections across independent runs, and no
//! operation's detections may reference another operation's instances.

use pod_diagnosis::eval::{collect_streams, replay, SoakConfig};
use pod_diagnosis::gateway::GatewayConfig;

fn soak_digest() -> (String, u64) {
    let config = SoakConfig {
        ops: 8,
        seed: 2014,
        ..SoakConfig::default()
    };
    let streams = collect_streams(&config);
    let report = replay(&streams, &GatewayConfig::default());
    assert!(
        report.leaks.is_empty(),
        "cross-operation leakage: {:?}",
        report.leaks
    );
    assert_eq!(
        report.stats.lines_processed, streams.lines_total,
        "block policy must deliver every line"
    );
    (report.digest(), report.stats.lines_processed)
}

#[test]
fn same_seed_produces_byte_identical_detections() {
    let (digest_a, lines_a) = soak_digest();
    let (digest_b, lines_b) = soak_digest();
    assert!(lines_a > 0);
    assert_eq!(lines_a, lines_b);
    assert!(
        digest_a.contains("run-"),
        "digest names every operation: {digest_a}"
    );
    assert_eq!(
        digest_a, digest_b,
        "same seed and same interleaved input must be bit-reproducible"
    );
}
