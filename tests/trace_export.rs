//! Smoke tests for the trace exporters: the Chrome trace-event JSON and
//! the OTLP-style JSON produced from a real diagnosis run must parse and
//! carry the keys the respective viewers require.
//!
//! `pod-obs` sits below `pod-log`, so its exporters hand-encode JSON;
//! these tests re-parse the output with `pod_log::Json` to prove the
//! encoding (including attribute escaping) is sound.

use pod_diagnosis::eval::{execute_run_traced, Campaign, CampaignConfig};
use pod_diagnosis::log::Json;
use pod_diagnosis::obs::{chrome_trace, otlp_json};

fn exported_trace() -> (String, String) {
    let campaign = Campaign::new(CampaignConfig {
        runs_per_fault: 1,
        seed: 99,
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        large_cluster_every: 0,
        ..CampaignConfig::default()
    });
    let (_, dump) = execute_run_traced(&campaign.plans()[0]);
    assert!(!dump.spans.is_empty());
    assert!(!dump.events.is_empty());
    (
        chrome_trace(&dump.trace_id, &dump.spans, &dump.events),
        otlp_json(&dump.trace_id, &dump.spans, &dump.events),
    )
}

#[test]
fn chrome_trace_parses_and_carries_required_keys() {
    let (chrome, _) = exported_trace();
    let doc = Json::parse(&chrome).expect("chrome trace is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() > 10, "only {} trace events", events.len());
    for event in events {
        for key in ["ph", "ts", "pid", "tid", "name"] {
            assert!(
                event.get(key).is_some(),
                "trace event missing {key}: {event:?}"
            );
        }
    }
    // All three record shapes appear: complete spans, instant events and
    // flow arrows binding causes to effects.
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
        .collect();
    for ph in ["X", "i", "s", "f", "M"] {
        assert!(phases.contains(&ph), "no {ph:?} phase in export");
    }
}

#[test]
fn otlp_export_parses_with_spans_and_events() {
    let (_, otlp) = exported_trace();
    let doc = Json::parse(&otlp).expect("otlp export is valid JSON");
    let scope_spans = doc
        .get("resourceSpans")
        .and_then(|v| v.as_array())
        .and_then(|rs| rs.first())
        .and_then(|r| r.get("scopeSpans"))
        .and_then(|v| v.as_array())
        .expect("scopeSpans array");
    let spans = scope_spans
        .first()
        .and_then(|s| s.get("spans"))
        .and_then(|v| v.as_array())
        .expect("spans array");
    assert!(!spans.is_empty());
    let mut events_seen = 0;
    for span in spans {
        let trace_id = span
            .get("traceId")
            .and_then(|v| v.as_str())
            .expect("traceId");
        assert_eq!(trace_id.len(), 32, "traceId not 32 hex chars: {trace_id}");
        let span_id = span.get("spanId").and_then(|v| v.as_str()).expect("spanId");
        assert_eq!(span_id.len(), 16, "spanId not 16 hex chars: {span_id}");
        assert_ne!(span_id, "0000000000000000");
        assert!(span.get("startTimeUnixNano").is_some());
        assert!(span.get("endTimeUnixNano").is_some());
        if let Some(events) = span.get("events").and_then(|v| v.as_array()) {
            events_seen += events.len();
        }
    }
    assert!(events_seen > 0, "no span carries causal events");
}
