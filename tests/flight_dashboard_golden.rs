//! Golden rendering of the flight dashboard during a recovery storm: the
//! shed/admission/queue rows must be present (auto-surfaced, without the
//! caller asking for them) and byte-stable across same-seed runs.

use pod_diagnosis::eval::{collect_streams, replay_with_recovery, SoakConfig};
use pod_diagnosis::gateway::GatewayConfig;
use pod_diagnosis::obs::render_dashboard;
use pod_diagnosis::recovery::StormConfig;
use pod_diagnosis::sim::SimDuration;

fn storm_dashboard() -> String {
    let config = SoakConfig {
        ops: 6,
        seed: 17,
        ..SoakConfig::default()
    };
    // One lane, a short wait cap and zero-tolerance throttling: eager,
    // throttled and deferred repairs all occur in a 6-tenant storm.
    let storm = StormConfig {
        lanes: 1,
        max_lane_wait: SimDuration::from_secs(30),
        throttle_at: 0,
        throttle_penalty: SimDuration::from_secs(2),
    };
    let report = replay_with_recovery(&collect_streams(&config), &GatewayConfig::default(), storm);
    let rec = report.recovery.as_ref().expect("recovery stage ran");
    assert!(rec.none_dropped(), "{rec:#?}");
    let flight = report.flight.as_ref().expect("flight on by default");
    render_dashboard(
        flight,
        &[
            "gateway.lines.processed",
            "gateway.queue_wait_us",
            "recovery.storm.concurrent",
        ],
    )
}

#[test]
fn storm_dashboard_surfaces_admission_and_queue_rows() {
    let text = storm_dashboard();
    // The caller asked for three metrics; the storm's admission ledger
    // and backlog rows must be auto-surfaced next to the incident marks.
    for row in [
        "recovery.storm.concurrent",
        "recovery.storm.requests",
        "recovery.storm.admitted",
        "recovery.storm.throttled",
        "recovery.storm.deferred",
        "recovery.storm.swept",
        "recovery.storm.queue_depth",
        "incidents",
    ] {
        assert!(
            text.contains(row),
            "dashboard misses the {row} row:\n{text}"
        );
    }
    // Counter rows carry totals, gauge rows carry levels; both render a
    // sparkline column.
    let requests_row = text
        .lines()
        .find(|l| l.starts_with("recovery.storm.requests"))
        .unwrap();
    assert!(requests_row.contains("| total "), "{requests_row}");
    let depth_row = text
        .lines()
        .find(|l| l.starts_with("recovery.storm.queue_depth"))
        .unwrap();
    assert!(depth_row.contains('|'), "{depth_row}");
}

#[test]
fn storm_dashboard_is_byte_stable_across_same_seed_runs() {
    assert_eq!(
        storm_dashboard(),
        storm_dashboard(),
        "same seed + same interleaving must render the same dashboard"
    );
}
