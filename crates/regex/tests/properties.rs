//! Property-based tests for the regex engine.

use pod_regex::{Regex, RegexSet};
use proptest::prelude::*;

/// Escapes a literal string so it can be embedded in a pattern verbatim.
fn escape(lit: &str) -> String {
    let mut out = String::new();
    for c in lit.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    /// An escaped literal always matches itself.
    #[test]
    fn escaped_literal_matches_itself(s in "[ -~]{0,40}") {
        let re = Regex::new(&escape(&s)).unwrap();
        prop_assert!(re.is_match(&s));
    }

    /// An anchored escaped literal matches exactly and only itself.
    #[test]
    fn anchored_literal_is_exact(s in "[a-zA-Z0-9 _-]{1,30}", extra in "[a-zA-Z0-9]{1,5}") {
        let re = Regex::new(&format!("^{}$", escape(&s))).unwrap();
        prop_assert!(re.is_match(&s));
        let suffixed = format!("{s}{extra}");
        let prefixed = format!("{extra}{s}");
        prop_assert!(!re.is_match(&suffixed));
        prop_assert!(!re.is_match(&prefixed));
    }

    /// `find` returns a range whose slice equals `as_str`, inside bounds.
    #[test]
    fn find_range_is_consistent(hay in "[ -~]{0,60}") {
        let re = Regex::new(r"[0-9]+").unwrap();
        if let Some(m) = re.find(&hay) {
            prop_assert!(m.end() <= hay.len());
            prop_assert_eq!(m.as_str(), &hay[m.start()..m.end()]);
            prop_assert!(m.as_str().chars().all(|c| c.is_ascii_digit()));
            // Leftmost: nothing before the match may contain a digit.
            prop_assert!(!hay[..m.start()].chars().any(|c| c.is_ascii_digit()));
        } else {
            prop_assert!(!hay.chars().any(|c| c.is_ascii_digit()));
        }
    }

    /// `find_iter` yields non-overlapping, strictly advancing matches.
    #[test]
    fn find_iter_advances(hay in "[a-c0-9]{0,50}") {
        let re = Regex::new(r"[0-9]+").unwrap();
        let mut last_end = 0usize;
        for m in re.find_iter(&hay) {
            prop_assert!(m.start() >= last_end);
            prop_assert!(m.end() > m.start());
            last_end = m.end();
        }
    }

    /// Star never fails: `x*` matches every string.
    #[test]
    fn star_matches_everything(hay in "[ -~]{0,50}") {
        let re = Regex::new("x*").unwrap();
        prop_assert!(re.is_match(&hay));
    }

    /// Alternation is the union of its branches.
    #[test]
    fn alternation_is_union(hay in "[a-f]{0,20}") {
        let left = Regex::new("ab").unwrap();
        let right = Regex::new("cd").unwrap();
        let both = Regex::new("ab|cd").unwrap();
        prop_assert_eq!(both.is_match(&hay), left.is_match(&hay) || right.is_match(&hay));
    }

    /// A bounded repeat `a{m,n}` matches iff the run length is within bounds
    /// (for fully-anchored input).
    #[test]
    fn bounded_repeat_counts(n in 0usize..12) {
        let hay: String = "a".repeat(n);
        let re = Regex::new("^a{2,5}$").unwrap();
        prop_assert_eq!(re.is_match(&hay), (2..=5).contains(&n));
    }

    /// Captures lie within the overall match.
    #[test]
    fn captures_nested_in_match(hay in "[a-z0-9 ]{0,40}") {
        let re = Regex::new(r"(\w+) (\w+)").unwrap();
        if let Some(caps) = re.captures(&hay) {
            let whole = caps.get(0).unwrap();
            for i in 1..caps.len() {
                if let Some(g) = caps.get(i) {
                    prop_assert!(g.start() >= whole.start());
                    prop_assert!(g.end() <= whole.end());
                }
            }
        }
    }

    /// RegexSet::matches agrees with matching each pattern individually.
    #[test]
    fn set_agrees_with_individuals(hay in "[a-e]{0,20}") {
        let pats = ["ab", "cd", "e+", "a$"];
        let set = RegexSet::new(&pats).unwrap();
        let expected: Vec<usize> = pats
            .iter()
            .enumerate()
            .filter(|(_, p)| Regex::new(p).unwrap().is_match(&hay))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(set.matches(&hay), expected);
    }

    /// The engine never panics on arbitrary (possibly invalid) patterns.
    #[test]
    fn parser_never_panics(pat in "[ -~]{0,30}") {
        let _ = Regex::new(&pat); // Ok or Err, but no panic
    }

    /// Valid random patterns built from a safe grammar never hang or panic
    /// when run against random input.
    #[test]
    fn safe_patterns_terminate(
        pat in prop::sample::select(vec![
            r"(a|b)*c",
            r"a+b+c?",
            r"(x*)*y",
            r"[a-m]{1,4}[n-z]*",
            r"(?:ab|ba)+",
            r"(?P<g>a(b|c)d)e?",
            r".*z.*",
        ]),
        hay in "[a-z]{0,40}",
    ) {
        let re = Regex::new(pat).unwrap();
        let _ = re.captures(&hay);
    }
}
