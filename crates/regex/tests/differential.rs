//! Differential tests: the prefiltered Pike-VM fast path must be
//! observationally identical to the legacy backtracking engine.
//!
//! Random patterns are generated from the supported dialect's grammar and
//! run against random inputs on all three engines ([`Engine::Auto`],
//! [`Engine::PikeVm`], [`Engine::Backtracking`]); `is_match`, the overall
//! find span, and every capture group's span must agree. The backtracker is
//! the reference semantics; cases where it exhausts its step budget (so
//! there is no reference answer) are skipped.

use pod_regex::{Engine, Regex};
use proptest::prelude::*;

/// Random pattern strings from the supported grammar. Leaves draw from a
/// small alphabet (so random inputs actually collide with them) plus the
/// shorthand classes; composites add concatenation, alternation, capture
/// groups and greedy/lazy repetition.
fn pattern_strategy() -> BoxedStrategy<String> {
    let leaf = prop::sample::select(vec![
        "a", "b", "c", "1", " ", "ab", "bc", "a1", r"\d", r"\w", r"\s", r"\.", ".", "[ab]", "[^a]",
        "[a-c]", "[b1 ]",
    ])
    .prop_map(str::to_string)
    .boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Concatenation.
            prop::collection::vec(inner.clone(), 2..4).prop_map(|parts| parts.concat()),
            // Alternation, grouped so precedence stays local.
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(?:{a}|{b})")),
            // Capturing group (named groups only change lookup, not spans).
            inner.clone().prop_map(|p| format!("({p})")),
            // Repetition over a grouped operand, greedy and lazy.
            (
                inner.clone(),
                prop::sample::select(vec![
                    "*", "+", "?", "{2}", "{1,3}", "{0,2}", "*?", "+?", "??",
                ]),
            )
                .prop_map(|(p, op)| format!("(?:{p}){op}")),
            // Anchored variant.
            inner.prop_map(|p| format!("^{p}")),
        ]
    })
}

/// Asserts that `engine` produces exactly the reference engine's answer
/// for `re` on `input`: same match/no-match, same group-0 span, same span
/// for every capture group.
fn assert_engines_agree(re: &Regex, input: &str, engine: Engine, pattern: &str) {
    let reference = match re.try_captures_with(input, Engine::Backtracking) {
        Ok(r) => r,
        // The backtracker gave up (MatchError::StepLimit): there is no
        // reference answer to compare against.
        Err(_) => return,
    };
    let got = re.captures_with(input, engine);
    match (&reference, &got) {
        (None, None) => {}
        (Some(want), Some(have)) => {
            assert_eq!(
                want.len(),
                have.len(),
                "group count diverged: {pattern:?} on {input:?} ({engine:?})"
            );
            for group in 0..want.len() {
                let span = |c: &pod_regex::Captures<'_>| c.get(group).map(|m| (m.start(), m.end()));
                assert_eq!(
                    span(want),
                    span(have),
                    "group {group} diverged: {pattern:?} on {input:?} ({engine:?})"
                );
            }
        }
        _ => panic!(
            "is_match diverged: {pattern:?} on {input:?} ({engine:?}): \
             backtracking={:?} fast={:?}",
            reference.is_some(),
            got.is_some()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    /// Auto (prefilter + Pike VM) and bare Pike VM agree with the
    /// backtracker on random (pattern, input) pairs.
    #[test]
    fn random_patterns_agree_across_engines(
        pattern in pattern_strategy(),
        input in "[abc1 ]{0,14}",
    ) {
        let re = Regex::new(&pattern).expect("generated pattern must parse");
        assert_engines_agree(&re, &input, Engine::Auto, &pattern);
        assert_engines_agree(&re, &input, Engine::PikeVm, &pattern);
    }

    /// Same property against inputs biased to contain full pattern leaves,
    /// so matches (not just rejections) are exercised heavily.
    #[test]
    fn match_heavy_inputs_agree_across_engines(
        pattern in pattern_strategy(),
        head in "[abc1 ]{0,6}",
        tail in "[abc1 ]{0,6}",
    ) {
        let re = Regex::new(&pattern).expect("generated pattern must parse");
        for middle in ["ab", "abc", "a1 b", "ccc"] {
            let input = format!("{head}{middle}{tail}");
            assert_engines_agree(&re, &input, Engine::Auto, &pattern);
            assert_engines_agree(&re, &input, Engine::PikeVm, &pattern);
        }
    }

    /// The production rule patterns agree across engines on random lines.
    #[test]
    fn fixture_like_patterns_agree(
        pattern in prop::sample::select(vec![
            r"Terminated instance (?P<id>i-[0-9a-f]+)",
            r"[Rr]olling upgrade",
            r"Waiting for ASG (?P<asg>[\w-]+)",
            r"(?P<n>\d+) of (?P<m>\d+) instances",
            r"^\[(?P<ts>\d{4})\]",
            r"ERROR",
        ]),
        line in "[a-z0-9 \\[\\]:,.-]{0,40}",
    ) {
        let re = Regex::new(pattern).unwrap();
        for input in [
            line.clone(),
            format!("{line} Terminated instance i-7df34041"),
            format!("[2013] Rolling upgrade: 3 of 12 instances, ERROR {line}"),
        ] {
            assert_engines_agree(&re, &input, Engine::Auto, pattern);
            assert_engines_agree(&re, &input, Engine::PikeVm, pattern);
        }
    }
}
