//! A small, dependency-free regular-expression engine.
//!
//! POD-Diagnosis is driven end-to-end by regular expressions: Logstash-style
//! noise filters, activity matchers derived by process mining, and the
//! process-context annotators all match log lines against patterns. This
//! crate provides the engine, hand-rolled for the offline build environment.
//!
//! The dialect covers what the system needs: literals, `.`, escapes,
//! shorthand classes (`\d \w \s` and negations), bracketed classes with
//! ranges and negation, anchors (`^`, `$`), greedy and lazy repetition
//! (`* + ? {m} {m,} {m,n}`), alternation, and capturing / non-capturing /
//! named groups (`(?P<name>...)`).
//!
//! # Matching fast path
//!
//! Since most lines fed to the pipeline match none of the patterns, the
//! engine is built to reject cheaply:
//!
//! 1. **Literal prefilter** — at compile time the AST is analysed for
//!    required literals ([`Regex::required_literals`]). At match time a
//!    substring scan ([`LiteralScanner`]) either rejects the line outright
//!    or yields the only byte offsets a match could start at.
//! 2. **Pike VM** — surviving candidates run on a non-backtracking
//!    thread-list engine with reusable scratch buffers, visiting each
//!    (position, instruction) pair at most once. The dialect has no
//!    back-references, so this path is always available and is selected by
//!    default ([`Engine::Auto`]).
//! 3. The classic backtracking VM is kept as a reference engine
//!    ([`Engine::Backtracking`]); its step-limit abort is surfaced as
//!    [`MatchError::StepLimit`] and counted in [`step_limit_hits`] instead
//!    of being silently conflated with a non-match.
//!
//! # Examples
//!
//! ```
//! use pod_regex::Regex;
//!
//! let re = Regex::new(r"Instance (?P<app>\w+) on (?P<id>i-[0-9a-f]+) is ready").unwrap();
//! let caps = re.captures("... Instance pm on i-7df34041 is ready for use.").unwrap();
//! assert_eq!(caps.name("id").unwrap().as_str(), "i-7df34041");
//! assert_eq!(caps.name("app").unwrap().as_str(), "pm");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod compile;
mod literal;
mod parser;
mod pike;
mod vm;

pub use literal::LiteralScanner;
pub use parser::ParseError;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use compile::Program;
use literal::LiteralInfo;
use pike::StartPolicy;

/// Global count of backtracking-VM executions that hit the step limit.
static STEP_LIMIT_HITS: AtomicU64 = AtomicU64::new(0);

/// Number of times (process-wide) the backtracking engine abandoned a match
/// attempt at its step limit. Each such attempt's answer is unknown — the
/// pipeline samples this to surface "the matcher gave up" in observability
/// rather than treating the line as a clean non-match.
pub fn step_limit_hits() -> u64 {
    STEP_LIMIT_HITS.load(Ordering::Relaxed)
}

/// A matching failure. The only current variant is the backtracking
/// engine's step-limit abort, which means the input may or may not match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchError {
    /// The backtracking engine exhausted its step budget; no answer.
    StepLimit,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::StepLimit => {
                write!(f, "regex engine exhausted its step limit (no answer)")
            }
        }
    }
}

impl std::error::Error for MatchError {}

/// Which execution engine to use for a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Literal prefilter + Pike VM (the default fast path).
    #[default]
    Auto,
    /// Pike VM without the prefilter (scans every offset). Useful to test
    /// the prefilter and the VM independently.
    PikeVm,
    /// The legacy backtracking VM. Kept as the reference semantics and the
    /// "before" side of benchmarks; may fail with [`MatchError::StepLimit`].
    Backtracking,
}

thread_local! {
    /// Reusable buffer for prefilter candidate start offsets.
    static START_BUF: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Reusable buffer for `RegexSet` candidate pattern ids.
    static CANDIDATE_BUF: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// The compiled prefilter of one pattern.
#[derive(Debug, Clone)]
enum Prefilter {
    /// Every match starts with one of the scanner's literals.
    Prefixes(LiteralScanner),
    /// Every match contains one of the scanner's literals somewhere.
    Inner(LiteralScanner),
    /// No literal requirement: scan every offset.
    None,
}

/// A compiled regular expression.
///
/// Matching is *unanchored* by default: [`Regex::find`] and
/// [`Regex::captures`] scan for the leftmost match. Use `^` / `$` in the
/// pattern to anchor.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
    names: Vec<(u32, String)>,
    anchored: bool,
    prefilter: Prefilter,
    literals: Option<Vec<String>>,
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the position and cause if the
    /// pattern is not valid in the supported dialect.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        let parsed = parser::parse(pattern)?;
        let prog = compile::compile(&parsed.ast, parsed.capture_count);
        let anchored = literal::anchored_at_start(&parsed.ast);
        let info = literal::literal_info(&parsed.ast);
        let literals = info.literals().map(<[String]>::to_vec);
        let prefilter = match &info {
            // An anchored pattern already restricts the start to offset 0;
            // the scanner would be pure overhead.
            _ if anchored => Prefilter::None,
            LiteralInfo::Prefixes(lits) => Prefilter::Prefixes(LiteralScanner::new(lits)),
            LiteralInfo::Inner(lits) => Prefilter::Inner(LiteralScanner::new(lits)),
            LiteralInfo::None => Prefilter::None,
        };
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
            names: parsed.capture_names,
            anchored,
            prefilter,
            literals,
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// The literal requirement derived from the pattern, if any: every
    /// match of the pattern contains at least one of the returned strings.
    /// Callers (like the annotator's rule index) build shared multi-pattern
    /// prefilters from these.
    pub fn required_literals(&self) -> Option<&[String]> {
        self.literals.as_deref()
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the leftmost match in `text`.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.captures(text)
            .map(|c| c.get(0).expect("group 0 always set"))
    }

    /// Finds the leftmost match and returns all capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        self.captures_with(text, Engine::Auto)
    }

    /// Like [`Regex::captures`], but surfaces engine failures instead of
    /// mapping them to "no match".
    ///
    /// # Errors
    ///
    /// [`MatchError::StepLimit`] if the backtracking engine gave up; the
    /// default engine never fails.
    pub fn try_captures<'t>(&self, text: &'t str) -> Result<Option<Captures<'t>>, MatchError> {
        self.try_captures_with(text, Engine::Auto)
    }

    /// Finds the leftmost match using a specific [`Engine`]. Engine
    /// failures count toward [`step_limit_hits`] and report as no match.
    pub fn captures_with<'t>(&self, text: &'t str, engine: Engine) -> Option<Captures<'t>> {
        self.try_captures_with(text, engine).unwrap_or_default()
    }

    /// Finds the leftmost match using a specific [`Engine`], surfacing
    /// engine failures.
    ///
    /// # Errors
    ///
    /// [`MatchError::StepLimit`] if the backtracking engine gave up before
    /// finding an answer (the attempt is also counted in
    /// [`step_limit_hits`]). `Auto` and `PikeVm` never fail.
    pub fn try_captures_with<'t>(
        &self,
        text: &'t str,
        engine: Engine,
    ) -> Result<Option<Captures<'t>>, MatchError> {
        let slots = match engine {
            Engine::Auto => self.exec_auto(text),
            Engine::PikeVm => {
                let policy = if self.anchored {
                    StartPolicy::Zero
                } else {
                    StartPolicy::All
                };
                pike::exec(&self.prog, text, policy)
            }
            Engine::Backtracking => self.exec_backtracking(text)?,
        };
        Ok(slots.map(|slots| Captures {
            text,
            slots,
            names: self.names.clone(),
        }))
    }

    /// The default path: prefilter, then Pike VM over candidate starts.
    fn exec_auto(&self, text: &str) -> Option<pike::ByteSlots> {
        if self.anchored {
            return pike::exec(&self.prog, text, StartPolicy::Zero);
        }
        match &self.prefilter {
            Prefilter::Prefixes(scanner) => START_BUF.with(|buf| {
                let mut fallback = Vec::new();
                let mut guard = buf.try_borrow_mut().ok();
                let starts = guard.as_deref_mut().unwrap_or(&mut fallback);
                starts.clear();
                scanner.scan(text, |_, at| starts.push(at));
                if starts.is_empty() {
                    return None;
                }
                starts.sort_unstable();
                starts.dedup();
                pike::exec(&self.prog, text, StartPolicy::At(starts))
            }),
            Prefilter::Inner(scanner) => {
                if !scanner.matches_any(text) {
                    return None;
                }
                pike::exec(&self.prog, text, StartPolicy::All)
            }
            Prefilter::None => pike::exec(&self.prog, text, StartPolicy::All),
        }
    }

    /// The legacy engine: retry the backtracking VM at every start offset,
    /// then convert its char-index slots to byte offsets.
    fn exec_backtracking(&self, text: &str) -> Result<Option<pike::ByteSlots>, MatchError> {
        let chars: Vec<char> = text.chars().collect();
        // Byte offset of each char index, plus the end offset.
        let mut offsets = Vec::with_capacity(chars.len() + 1);
        let mut off = 0;
        for c in &chars {
            offsets.push(off);
            off += c.len_utf8();
        }
        offsets.push(off);
        for start in 0..=chars.len() {
            match vm::exec(&self.prog, &chars, start) {
                vm::ExecOutcome::Match(slots) => {
                    let byte_slots = slots.iter().map(|s| s.map(|i| offsets[i])).collect();
                    return Ok(Some(byte_slots));
                }
                vm::ExecOutcome::NoMatch => {}
                vm::ExecOutcome::StepLimit => {
                    STEP_LIMIT_HITS.fetch_add(1, Ordering::Relaxed);
                    return Err(MatchError::StepLimit);
                }
            }
        }
        Ok(None)
    }

    /// Iterates over all non-overlapping matches in `text`.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            text,
            next_start: 0,
            done: false,
        }
    }

    /// Number of capturing groups, excluding group 0.
    pub fn capture_count(&self) -> u32 {
        self.prog.n_captures
    }

    /// The names of the named capture groups, in index order.
    pub fn capture_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|(_, n)| n.as_str())
    }

    /// Replaces the leftmost match with `replacement` (no `$` expansion).
    pub fn replace(&self, text: &str, replacement: &str) -> String {
        match self.find(text) {
            Some(m) => {
                let mut out = String::with_capacity(text.len());
                out.push_str(&text[..m.start()]);
                out.push_str(replacement);
                out.push_str(&text[m.end()..]);
                out
            }
            None => text.to_string(),
        }
    }

    /// Replaces every non-overlapping match with `replacement`.
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut last = 0;
        for m in self.find_iter(text) {
            out.push_str(&text[last..m.start()]);
            out.push_str(replacement);
            last = m.end();
        }
        out.push_str(&text[last..]);
        out
    }

    /// Splits `text` around every non-overlapping match. Empty matches
    /// split between characters, like the standard library's pattern split.
    pub fn split<'r, 't>(&'r self, text: &'t str) -> impl Iterator<Item = &'t str> + 'r
    where
        't: 'r,
    {
        let mut last = 0;
        let mut matches = self.find_iter(text).collect::<Vec<_>>().into_iter();
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            match matches.next() {
                Some(m) => {
                    let piece = &text[last..m.start()];
                    last = m.end();
                    Some(piece)
                }
                None => {
                    done = true;
                    Some(&text[last..])
                }
            }
        })
    }
}

/// A single match: a located substring of the searched text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    text: &'t str,
    start: usize,
    end: usize,
}

impl<'t> Match<'t> {
    /// Byte offset of the start of the match.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Byte offset of the end of the match (exclusive).
    pub fn end(&self) -> usize {
        self.end
    }

    /// The matched text.
    pub fn as_str(&self) -> &'t str {
        &self.text[self.start..self.end]
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The capture groups of a successful match. Group 0 is the whole match.
/// Slots are byte offsets into the searched text.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    slots: Vec<Option<usize>>,
    names: Vec<(u32, String)>,
}

impl<'t> Captures<'t> {
    /// Returns the match for capture group `i`, if it participated.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let s = (*self.slots.get(2 * i)?)?;
        let e = (*self.slots.get(2 * i + 1)?)?;
        Some(Match {
            text: self.text,
            start: s,
            end: e,
        })
    }

    /// Returns the match for the named group `name`.
    pub fn name(&self, name: &str) -> Option<Match<'t>> {
        let idx = self
            .names
            .iter()
            .find(|(_, n)| n == name)
            .map(|(i, _)| *i as usize)?;
        self.get(idx)
    }

    /// Number of groups, including group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// Always `false`: group 0 exists on every successful match.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
#[derive(Debug)]
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    text: &'t str,
    next_start: usize,
    done: bool,
}

impl<'t> Iterator for FindIter<'_, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.done || self.next_start > self.text.len() {
            return None;
        }
        let tail = &self.text[self.next_start..];
        let m = self.re.find(tail)?;
        let abs = Match {
            text: self.text,
            start: self.next_start + m.start(),
            end: self.next_start + m.end(),
        };
        if abs.is_empty() {
            // Step one char past an empty match to guarantee progress.
            match self.text[abs.end()..].chars().next() {
                Some(c) => self.next_start = abs.end() + c.len_utf8(),
                None => self.done = true,
            }
        } else {
            self.next_start = abs.end();
        }
        Some(abs)
    }
}

/// The shared multi-pattern prefilter of a [`RegexSet`]: one scanner over
/// the union of every member's required literals, mapping each literal back
/// to the pattern that requires it.
#[derive(Debug, Clone)]
struct SetPrefilter {
    scanner: LiteralScanner,
    /// Pattern index owning each literal id.
    lit_owner: Vec<usize>,
    /// Patterns with no literal requirement: always candidates.
    always: Vec<usize>,
}

/// A set of patterns matched together, used by the log pipeline's noise
/// filter and the activity matchers.
///
/// Membership tests run as a true multi-pattern engine: one shared literal
/// scan over the line yields candidate pattern ids, and only those
/// candidates are confirmed with their full regex. Patterns for which no
/// literal requirement can be derived are always candidates; if no pattern
/// yields literals the set falls back to the match-each-member loop.
///
/// # Examples
///
/// ```
/// use pod_regex::RegexSet;
///
/// let set = RegexSet::new(&[r"ERROR", r"instance i-\w+ terminated"]).unwrap();
/// assert_eq!(set.first_match("instance i-abc123 terminated"), Some(1));
/// assert!(set.matches("all quiet").is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegexSet {
    regexes: Vec<Regex>,
    prefilter: Option<SetPrefilter>,
}

impl RegexSet {
    /// Compiles every pattern; fails on the first invalid one.
    pub fn new<S: AsRef<str>>(patterns: &[S]) -> Result<RegexSet, ParseError> {
        let regexes = patterns
            .iter()
            .map(|p| Regex::new(p.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut literals: Vec<String> = Vec::new();
        let mut lit_owner = Vec::new();
        let mut always = Vec::new();
        for (idx, re) in regexes.iter().enumerate() {
            match re.required_literals() {
                Some(lits) => {
                    for lit in lits {
                        literals.push(lit.clone());
                        lit_owner.push(idx);
                    }
                }
                None => always.push(idx),
            }
        }
        // A prefilter that admits everything is pure overhead.
        let prefilter = if lit_owner.is_empty() {
            None
        } else {
            Some(SetPrefilter {
                scanner: LiteralScanner::new(&literals),
                lit_owner,
                always,
            })
        };
        Ok(RegexSet { regexes, prefilter })
    }

    /// Candidate pattern indices for `text` (sorted, deduplicated), written
    /// into `out`. Patterns not listed are guaranteed non-matching.
    fn candidates(&self, pf: &SetPrefilter, text: &str, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&pf.always);
        pf.scanner.scan(text, |lit, _| out.push(pf.lit_owner[lit]));
        out.sort_unstable();
        out.dedup();
    }

    /// Computes the candidate patterns for `text` into reusable scratch
    /// and hands them (in index order) to `f`.
    fn with_candidates<T>(&self, text: &str, f: impl FnOnce(&[usize]) -> T) -> T {
        let pf = self
            .prefilter
            .as_ref()
            .expect("with_candidates requires a prefilter");
        CANDIDATE_BUF.with(|buf| {
            let mut fallback = Vec::new();
            let mut guard = buf.try_borrow_mut().ok();
            let out = guard.as_deref_mut().unwrap_or(&mut fallback);
            self.candidates(pf, text, out);
            f(out)
        })
    }

    /// Indices of all patterns that match `text`.
    pub fn matches(&self, text: &str) -> Vec<usize> {
        match &self.prefilter {
            Some(_) => self.with_candidates(text, |cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|&i| self.regexes[i].is_match(text))
                    .collect()
            }),
            None => self
                .regexes
                .iter()
                .enumerate()
                .filter(|(_, re)| re.is_match(text))
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Index of the first (lowest-index) matching pattern.
    pub fn first_match(&self, text: &str) -> Option<usize> {
        match &self.prefilter {
            Some(_) => self.with_candidates(text, |cands| {
                cands
                    .iter()
                    .copied()
                    .find(|&i| self.regexes[i].is_match(text))
            }),
            None => self.regexes.iter().position(|re| re.is_match(text)),
        }
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.regexes.len()
    }

    /// Whether the set contains no patterns.
    pub fn is_empty(&self) -> bool {
        self.regexes.is_empty()
    }

    /// The individual compiled patterns.
    pub fn regexes(&self) -> &[Regex] {
        &self.regexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanchored_find_locates_leftmost() {
        let re = Regex::new(r"\d+").unwrap();
        let m = re.find("abc 123 def 456").unwrap();
        assert_eq!(m.as_str(), "123");
        assert_eq!((m.start(), m.end()), (4, 7));
    }

    #[test]
    fn find_iter_collects_all() {
        let re = Regex::new(r"i-[0-9a-f]+").unwrap();
        let ids: Vec<&str> = re
            .find_iter("i-7df34041, i-aa12, then i-beef")
            .map(|m| m.as_str())
            .collect();
        assert_eq!(ids, vec!["i-7df34041", "i-aa12", "i-beef"]);
    }

    #[test]
    fn find_iter_handles_empty_matches() {
        let re = Regex::new(r"x*").unwrap();
        let count = re.find_iter("abc").count();
        assert_eq!(count, 4); // empty match at each position incl. end
    }

    #[test]
    fn named_captures() {
        let re = Regex::new(r"\[(?P<level>INFO|ERROR)\] (?P<msg>.*)$").unwrap();
        let caps = re.captures("[ERROR] instance launch failed").unwrap();
        assert_eq!(caps.name("level").unwrap().as_str(), "ERROR");
        assert_eq!(caps.name("msg").unwrap().as_str(), "instance launch failed");
        assert!(caps.name("missing").is_none());
    }

    #[test]
    fn optional_group_is_none_when_absent() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let caps = re.captures("ac").unwrap();
        assert!(caps.get(1).is_none());
        assert_eq!(caps.len(), 2);
    }

    #[test]
    fn unicode_text_offsets_are_bytes() {
        let re = Regex::new("b").unwrap();
        let m = re.find("äb").unwrap();
        assert_eq!(m.start(), 2);
        assert_eq!(m.as_str(), "b");
    }

    #[test]
    fn replace_first() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace("run 42 done", "N"), "run N done");
        assert_eq!(re.replace("no digits", "N"), "no digits");
    }

    #[test]
    fn replace_all_matches() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace_all("1 and 22 and 333", "N"), "N and N and N");
        assert_eq!(re.replace_all("nothing", "N"), "nothing");
    }

    #[test]
    fn split_around_matches() {
        let re = Regex::new(r",\s*").unwrap();
        let parts: Vec<&str> = re.split("a, b,c,  d").collect();
        assert_eq!(parts, vec!["a", "b", "c", "d"]);
        let re = Regex::new("x").unwrap();
        let parts: Vec<&str> = re.split("no matches").collect();
        assert_eq!(parts, vec!["no matches"]);
    }

    #[test]
    fn realistic_asgard_pattern() {
        let re = Regex::new(
            r"Pushing (?P<ami>ami-[0-9a-f]+) into group (?P<asg>[\w-]+) for app (?P<app>\w+)",
        )
        .unwrap();
        let line =
            "[2013-10-24 11:41:48,312] [Task:Pushing ami-750c9e4f into group pm--asg for app pm]";
        let caps = re.captures(line).unwrap();
        assert_eq!(caps.name("ami").unwrap().as_str(), "ami-750c9e4f");
        assert_eq!(caps.name("asg").unwrap().as_str(), "pm--asg");
    }

    #[test]
    fn timestamp_pattern() {
        let re = Regex::new(r"^\[(?P<ts>\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3})\]").unwrap();
        let caps = re
            .captures("[2013-11-19 11:48:01,100] [diagnosis] ...")
            .unwrap();
        assert_eq!(caps.name("ts").unwrap().as_str(), "2013-11-19 11:48:01,100");
    }

    #[test]
    fn alternation_prefers_left_branch() {
        let re = Regex::new("ab|a").unwrap();
        assert_eq!(re.find("ab").unwrap().as_str(), "ab");
    }

    #[test]
    fn set_reports_all_matches() {
        let set = RegexSet::new(&["a", "b", "c"]).unwrap();
        assert_eq!(set.matches("cab"), vec![0, 1, 2]);
        assert_eq!(set.matches("b"), vec![1]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn engines_agree_on_fixture_patterns() {
        let cases = [
            (
                r"Terminated instance (?P<id>i-[0-9a-f]+)",
                "... Terminated instance i-7df34041 ...",
            ),
            (r"Terminated instance i-\w+", "nothing relevant here"),
            (r"[Rr]olling upgrade", "Started rolling upgrade task"),
            (r"\d+ of \d+ instances", "saw 3 of 12 instances in service"),
            (r"^\[task\] done$", "[task] done"),
            (r"x+y?z*", "wxxyzz!"),
        ];
        for (pattern, text) in cases {
            let re = Regex::new(pattern).unwrap();
            let auto = re.captures_with(text, Engine::Auto);
            let pikevm = re.captures_with(text, Engine::PikeVm);
            let backtrack = re.captures_with(text, Engine::Backtracking);
            for (name, got) in [("pike", &pikevm), ("backtracking", &backtrack)] {
                match (&auto, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        for i in 0..a.len() {
                            assert_eq!(
                                a.get(i).map(|m| (m.start(), m.end())),
                                b.get(i).map(|m| (m.start(), m.end())),
                                "{pattern} vs {name} group {i} on {text:?}"
                            );
                        }
                    }
                    _ => panic!("{pattern}: auto={auto:?} {name}={got:?}"),
                }
            }
        }
    }

    #[test]
    fn step_limit_surfaces_as_error_and_metric() {
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(30);
        let before = step_limit_hits();
        assert_eq!(
            re.try_captures_with(&text, Engine::Backtracking).err(),
            Some(MatchError::StepLimit)
        );
        assert!(step_limit_hits() > before);
        // The infallible API maps the failure to "no match"…
        assert!(re.captures_with(&text, Engine::Backtracking).is_none());
        // …while the default engine answers definitively.
        assert!(re.try_captures(&text).unwrap().is_none());
        assert!(re.captures(&format!("{text}b")).is_some());
    }

    #[test]
    fn set_prefilter_confirms_candidates_only() {
        let set = RegexSet::new(&[
            r"ERROR",
            r"Terminated instance i-\w+",
            r"\d+\s\w+", // no derivable literal: always a candidate
        ])
        .unwrap();
        assert_eq!(set.matches("ERROR: Terminated instance i-1"), vec![0, 1]);
        assert_eq!(set.matches("7 dwarves"), vec![2]);
        assert_eq!(set.first_match("Terminated instance i-9 ERROR"), Some(0));
        assert_eq!(set.first_match("all quiet"), None);
        assert!(set.matches("all quiet").is_empty());
    }
}
