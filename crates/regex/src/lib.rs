//! A small, dependency-free regular-expression engine.
//!
//! POD-Diagnosis is driven end-to-end by regular expressions: Logstash-style
//! noise filters, activity matchers derived by process mining, and the
//! process-context annotators all match log lines against patterns. This
//! crate provides the engine, hand-rolled for the offline build environment.
//!
//! The dialect covers what the system needs: literals, `.`, escapes,
//! shorthand classes (`\d \w \s` and negations), bracketed classes with
//! ranges and negation, anchors (`^`, `$`), greedy and lazy repetition
//! (`* + ? {m} {m,} {m,n}`), alternation, and capturing / non-capturing /
//! named groups (`(?P<name>...)`).
//!
//! The implementation is a classic backtracking VM (parse → AST → compile →
//! execute) with an empty-match loop guard, so patterns like `(a*)*` cannot
//! hang.
//!
//! # Examples
//!
//! ```
//! use pod_regex::Regex;
//!
//! let re = Regex::new(r"Instance (?P<app>\w+) on (?P<id>i-[0-9a-f]+) is ready").unwrap();
//! let caps = re.captures("... Instance pm on i-7df34041 is ready for use.").unwrap();
//! assert_eq!(caps.name("id").unwrap().as_str(), "i-7df34041");
//! assert_eq!(caps.name("app").unwrap().as_str(), "pm");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod compile;
mod parser;
mod vm;

pub use parser::ParseError;

use compile::Program;

/// A compiled regular expression.
///
/// Matching is *unanchored* by default: [`Regex::find`] and
/// [`Regex::captures`] scan for the leftmost match. Use `^` / `$` in the
/// pattern to anchor.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
    names: Vec<(u32, String)>,
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the position and cause if the
    /// pattern is not valid in the supported dialect.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        let parsed = parser::parse(pattern)?;
        let prog = compile::compile(&parsed.ast, parsed.capture_count);
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
            names: parsed.capture_names,
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the leftmost match in `text`.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.captures(text)
            .map(|c| c.get(0).expect("group 0 always set"))
    }

    /// Finds the leftmost match and returns all capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        let chars: Vec<char> = text.chars().collect();
        // Byte offset of each char index, plus the end offset.
        let mut offsets = Vec::with_capacity(chars.len() + 1);
        let mut off = 0;
        for c in &chars {
            offsets.push(off);
            off += c.len_utf8();
        }
        offsets.push(off);
        for start in 0..=chars.len() {
            if let Some(slots) = vm::exec(&self.prog, &chars, start) {
                return Some(Captures {
                    text,
                    offsets,
                    slots,
                    names: self.names.clone(),
                });
            }
        }
        None
    }

    /// Iterates over all non-overlapping matches in `text`.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            text,
            next_start: 0,
            done: false,
        }
    }

    /// Number of capturing groups, excluding group 0.
    pub fn capture_count(&self) -> u32 {
        self.prog.n_captures
    }

    /// The names of the named capture groups, in index order.
    pub fn capture_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|(_, n)| n.as_str())
    }

    /// Replaces the leftmost match with `replacement` (no `$` expansion).
    pub fn replace(&self, text: &str, replacement: &str) -> String {
        match self.find(text) {
            Some(m) => {
                let mut out = String::with_capacity(text.len());
                out.push_str(&text[..m.start()]);
                out.push_str(replacement);
                out.push_str(&text[m.end()..]);
                out
            }
            None => text.to_string(),
        }
    }

    /// Replaces every non-overlapping match with `replacement`.
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut last = 0;
        for m in self.find_iter(text) {
            out.push_str(&text[last..m.start()]);
            out.push_str(replacement);
            last = m.end();
        }
        out.push_str(&text[last..]);
        out
    }

    /// Splits `text` around every non-overlapping match. Empty matches
    /// split between characters, like the standard library's pattern split.
    pub fn split<'r, 't>(&'r self, text: &'t str) -> impl Iterator<Item = &'t str> + 'r
    where
        't: 'r,
    {
        let mut last = 0;
        let mut matches = self.find_iter(text).collect::<Vec<_>>().into_iter();
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            match matches.next() {
                Some(m) => {
                    let piece = &text[last..m.start()];
                    last = m.end();
                    Some(piece)
                }
                None => {
                    done = true;
                    Some(&text[last..])
                }
            }
        })
    }
}

/// A single match: a located substring of the searched text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    text: &'t str,
    start: usize,
    end: usize,
}

impl<'t> Match<'t> {
    /// Byte offset of the start of the match.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Byte offset of the end of the match (exclusive).
    pub fn end(&self) -> usize {
        self.end
    }

    /// The matched text.
    pub fn as_str(&self) -> &'t str {
        &self.text[self.start..self.end]
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The capture groups of a successful match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    offsets: Vec<usize>,
    slots: Vec<Option<usize>>,
    names: Vec<(u32, String)>,
}

impl<'t> Captures<'t> {
    /// Returns the match for capture group `i`, if it participated.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let s = (*self.slots.get(2 * i)?)?;
        let e = (*self.slots.get(2 * i + 1)?)?;
        Some(Match {
            text: self.text,
            start: self.offsets[s],
            end: self.offsets[e],
        })
    }

    /// Returns the match for the named group `name`.
    pub fn name(&self, name: &str) -> Option<Match<'t>> {
        let idx = self
            .names
            .iter()
            .find(|(_, n)| n == name)
            .map(|(i, _)| *i as usize)?;
        self.get(idx)
    }

    /// Number of groups, including group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// Always `false`: group 0 exists on every successful match.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
#[derive(Debug)]
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    text: &'t str,
    next_start: usize,
    done: bool,
}

impl<'t> Iterator for FindIter<'_, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.done || self.next_start > self.text.len() {
            return None;
        }
        let tail = &self.text[self.next_start..];
        let m = self.re.find(tail)?;
        let abs = Match {
            text: self.text,
            start: self.next_start + m.start(),
            end: self.next_start + m.end(),
        };
        if abs.is_empty() {
            // Step one char past an empty match to guarantee progress.
            match self.text[abs.end()..].chars().next() {
                Some(c) => self.next_start = abs.end() + c.len_utf8(),
                None => self.done = true,
            }
        } else {
            self.next_start = abs.end();
        }
        Some(abs)
    }
}

/// A set of patterns matched together, used by the log pipeline's noise
/// filter and the activity matchers.
///
/// # Examples
///
/// ```
/// use pod_regex::RegexSet;
///
/// let set = RegexSet::new(&[r"ERROR", r"instance i-\w+ terminated"]).unwrap();
/// assert_eq!(set.first_match("instance i-abc123 terminated"), Some(1));
/// assert!(set.matches("all quiet").is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegexSet {
    regexes: Vec<Regex>,
}

impl RegexSet {
    /// Compiles every pattern; fails on the first invalid one.
    pub fn new<S: AsRef<str>>(patterns: &[S]) -> Result<RegexSet, ParseError> {
        let regexes = patterns
            .iter()
            .map(|p| Regex::new(p.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RegexSet { regexes })
    }

    /// Indices of all patterns that match `text`.
    pub fn matches(&self, text: &str) -> Vec<usize> {
        self.regexes
            .iter()
            .enumerate()
            .filter(|(_, re)| re.is_match(text))
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the first (lowest-index) matching pattern.
    pub fn first_match(&self, text: &str) -> Option<usize> {
        self.regexes.iter().position(|re| re.is_match(text))
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.regexes.len()
    }

    /// Whether the set contains no patterns.
    pub fn is_empty(&self) -> bool {
        self.regexes.is_empty()
    }

    /// The individual compiled patterns.
    pub fn regexes(&self) -> &[Regex] {
        &self.regexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanchored_find_locates_leftmost() {
        let re = Regex::new(r"\d+").unwrap();
        let m = re.find("abc 123 def 456").unwrap();
        assert_eq!(m.as_str(), "123");
        assert_eq!((m.start(), m.end()), (4, 7));
    }

    #[test]
    fn find_iter_collects_all() {
        let re = Regex::new(r"i-[0-9a-f]+").unwrap();
        let ids: Vec<&str> = re
            .find_iter("i-7df34041, i-aa12, then i-beef")
            .map(|m| m.as_str())
            .collect();
        assert_eq!(ids, vec!["i-7df34041", "i-aa12", "i-beef"]);
    }

    #[test]
    fn find_iter_handles_empty_matches() {
        let re = Regex::new(r"x*").unwrap();
        let count = re.find_iter("abc").count();
        assert_eq!(count, 4); // empty match at each position incl. end
    }

    #[test]
    fn named_captures() {
        let re = Regex::new(r"\[(?P<level>INFO|ERROR)\] (?P<msg>.*)$").unwrap();
        let caps = re.captures("[ERROR] instance launch failed").unwrap();
        assert_eq!(caps.name("level").unwrap().as_str(), "ERROR");
        assert_eq!(caps.name("msg").unwrap().as_str(), "instance launch failed");
        assert!(caps.name("missing").is_none());
    }

    #[test]
    fn optional_group_is_none_when_absent() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let caps = re.captures("ac").unwrap();
        assert!(caps.get(1).is_none());
        assert_eq!(caps.len(), 2);
    }

    #[test]
    fn unicode_text_offsets_are_bytes() {
        let re = Regex::new("b").unwrap();
        let m = re.find("äb").unwrap();
        assert_eq!(m.start(), 2);
        assert_eq!(m.as_str(), "b");
    }

    #[test]
    fn replace_first() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace("run 42 done", "N"), "run N done");
        assert_eq!(re.replace("no digits", "N"), "no digits");
    }

    #[test]
    fn replace_all_matches() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace_all("1 and 22 and 333", "N"), "N and N and N");
        assert_eq!(re.replace_all("nothing", "N"), "nothing");
    }

    #[test]
    fn split_around_matches() {
        let re = Regex::new(r",\s*").unwrap();
        let parts: Vec<&str> = re.split("a, b,c,  d").collect();
        assert_eq!(parts, vec!["a", "b", "c", "d"]);
        let re = Regex::new("x").unwrap();
        let parts: Vec<&str> = re.split("no matches").collect();
        assert_eq!(parts, vec!["no matches"]);
    }

    #[test]
    fn realistic_asgard_pattern() {
        let re = Regex::new(
            r"Pushing (?P<ami>ami-[0-9a-f]+) into group (?P<asg>[\w-]+) for app (?P<app>\w+)",
        )
        .unwrap();
        let line =
            "[2013-10-24 11:41:48,312] [Task:Pushing ami-750c9e4f into group pm--asg for app pm]";
        let caps = re.captures(line).unwrap();
        assert_eq!(caps.name("ami").unwrap().as_str(), "ami-750c9e4f");
        assert_eq!(caps.name("asg").unwrap().as_str(), "pm--asg");
    }

    #[test]
    fn timestamp_pattern() {
        let re = Regex::new(r"^\[(?P<ts>\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3})\]").unwrap();
        let caps = re
            .captures("[2013-11-19 11:48:01,100] [diagnosis] ...")
            .unwrap();
        assert_eq!(caps.name("ts").unwrap().as_str(), "2013-11-19 11:48:01,100");
    }

    #[test]
    fn alternation_prefers_left_branch() {
        let re = Regex::new("ab|a").unwrap();
        assert_eq!(re.find("ab").unwrap().as_str(), "ab");
    }

    #[test]
    fn set_reports_all_matches() {
        let set = RegexSet::new(&["a", "b", "c"]).unwrap();
        assert_eq!(set.matches("cab"), vec![0, 1, 2]);
        assert_eq!(set.matches("b"), vec![1]);
        assert_eq!(set.len(), 3);
    }
}
