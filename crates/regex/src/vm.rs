//! The backtracking virtual machine that executes compiled programs.

use crate::compile::{Inst, Program};

/// Upper bound on VM steps per match attempt; guards against pathological
/// backtracking. Log lines are short and the system's patterns are fixed, so
/// this limit is never reached in practice — but when it is, the caller must
/// be able to tell "gave up" apart from "no match" (see [`ExecOutcome`]).
const STEP_LIMIT: usize = 1 << 22;

/// The result of running the VM: capture slots (`None` where a group did not
/// participate in the match).
pub type Slots = Vec<Option<usize>>;

/// Outcome of one VM execution. `StepLimit` means the engine abandoned the
/// attempt after [`STEP_LIMIT`] steps: the input may or may not match, and
/// callers must not report it as a clean non-match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The program matched; capture slots are recorded.
    Match(Slots),
    /// The program definitively does not match at this start position.
    NoMatch,
    /// The step budget was exhausted before an answer was found.
    StepLimit,
}

#[derive(Debug)]
struct Frame {
    pc: usize,
    pos: usize,
    slots: Slots,
    regs: Vec<usize>,
}

/// Attempts to match `prog` against `input` starting exactly at char index
/// `start`.
pub fn exec(prog: &Program, input: &[char], start: usize) -> ExecOutcome {
    let mut slots: Slots = vec![None; prog.n_slots];
    let mut regs: Vec<usize> = vec![usize::MAX; prog.n_regs];
    let mut stack: Vec<Frame> = Vec::new();
    let mut pc = 0usize;
    let mut pos = start;
    let mut steps = 0usize;

    macro_rules! backtrack {
        () => {
            match stack.pop() {
                Some(f) => {
                    pc = f.pc;
                    pos = f.pos;
                    slots = f.slots;
                    regs = f.regs;
                    continue;
                }
                None => return ExecOutcome::NoMatch,
            }
        };
    }

    loop {
        steps += 1;
        if steps > STEP_LIMIT {
            return ExecOutcome::StepLimit;
        }
        match &prog.insts[pc] {
            Inst::Char(c) => {
                if input.get(pos) == Some(c) {
                    pos += 1;
                    pc += 1;
                } else {
                    backtrack!();
                }
            }
            Inst::Any => {
                if input.get(pos).is_some_and(|c| *c != '\n') {
                    pos += 1;
                    pc += 1;
                } else {
                    backtrack!();
                }
            }
            Inst::Class(class) => {
                if input.get(pos).is_some_and(|c| class.matches(*c)) {
                    pos += 1;
                    pc += 1;
                } else {
                    backtrack!();
                }
            }
            Inst::Perl(p) => {
                if input.get(pos).is_some_and(|c| p.matches(*c)) {
                    pos += 1;
                    pc += 1;
                } else {
                    backtrack!();
                }
            }
            Inst::Split(first, second) => {
                stack.push(Frame {
                    pc: *second,
                    pos,
                    slots: slots.clone(),
                    regs: regs.clone(),
                });
                pc = *first;
            }
            Inst::Jump(target) => pc = *target,
            Inst::Save(slot) => {
                slots[*slot] = Some(pos);
                pc += 1;
            }
            Inst::Mark(reg) => {
                regs[*reg] = pos;
                pc += 1;
            }
            Inst::IfProgress { reg, target } => {
                if regs[*reg] != pos {
                    pc = *target;
                } else {
                    // The loop body matched the empty string; stop iterating
                    // to avoid an infinite loop.
                    pc += 1;
                }
            }
            Inst::AssertStart => {
                if pos == 0 {
                    pc += 1;
                } else {
                    backtrack!();
                }
            }
            Inst::AssertEnd => {
                if pos == input.len() {
                    pc += 1;
                } else {
                    backtrack!();
                }
            }
            Inst::Match => return ExecOutcome::Match(slots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn run(pattern: &str, text: &str) -> Option<Slots> {
        let parsed = parse(pattern).unwrap();
        let prog = compile(&parsed.ast, parsed.capture_count);
        let chars: Vec<char> = text.chars().collect();
        match exec(&prog, &chars, 0) {
            ExecOutcome::Match(slots) => Some(slots),
            ExecOutcome::NoMatch => None,
            ExecOutcome::StepLimit => panic!("unexpected step limit"),
        }
    }

    #[test]
    fn literal_match() {
        assert!(run("abc", "abc").is_some());
        assert!(run("abc", "abd").is_none());
    }

    #[test]
    fn captures_record_positions() {
        let slots = run("a(b+)c", "abbbc").unwrap();
        assert_eq!(slots[0], Some(0));
        assert_eq!(slots[1], Some(5));
        assert_eq!(slots[2], Some(1));
        assert_eq!(slots[3], Some(4));
    }

    #[test]
    fn empty_loop_terminates() {
        // `(a*)*` against "b" must match the empty prefix, not hang.
        let slots = run("(a*)*", "b").unwrap();
        assert_eq!(slots[0], Some(0));
        assert_eq!(slots[1], Some(0));
    }

    #[test]
    fn greedy_vs_lazy() {
        let greedy = run("a(.*)c", "abcbc").unwrap();
        assert_eq!((greedy[2], greedy[3]), (Some(1), Some(4)));
        let lazy = run("a(.*?)c", "abcbc").unwrap();
        assert_eq!((lazy[2], lazy[3]), (Some(1), Some(2)));
    }

    #[test]
    fn anchors_enforced() {
        assert!(run("^ab$", "ab").is_some());
        assert!(run("^ab$", "abx").is_none());
    }

    #[test]
    fn step_limit_is_a_distinct_outcome() {
        // Classic catastrophic backtracking: nested quantifier plus a
        // forced failure at the end. The VM must report `StepLimit`, not
        // pretend the line cleanly failed to match.
        let parsed = parse("(a+)+b").unwrap();
        let prog = compile(&parsed.ast, parsed.capture_count);
        let chars: Vec<char> = "a".repeat(30).chars().collect();
        assert_eq!(exec(&prog, &chars, 0), ExecOutcome::StepLimit);
    }
}
