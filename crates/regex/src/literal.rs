//! Literal prefilters: extracting required literals from a pattern's AST
//! and scanning for them with a multi-pattern Aho-Corasick automaton.
//!
//! The log pipeline matches every line against many patterns, and almost
//! every (line, pattern) pair is a non-match. Running the VM to discover
//! that is wasteful: most patterns *require* some literal text ("Terminated
//! instance ", "ERROR: ", …) that a plain substring scan can rule out in a
//! fraction of the cost. This module derives those requirements:
//!
//! * [`literal_info`] analyses an AST and reports either a set of literal
//!   *prefixes* (every match starts with one of them — the VM only needs to
//!   run at their occurrences) or a set of required *inner* literals (every
//!   match contains at least one — their absence rejects the line outright).
//! * [`LiteralScanner`] is the shared multi-literal searcher: an
//!   Aho-Corasick trie over the literal bytes with a dense root fan-out, so
//!   one left-to-right pass reports every occurrence of every literal.
//!
//! The same extraction feeds three layers: single-pattern prefilters in
//! [`crate::Regex`], the multi-pattern candidate scan in
//! [`crate::RegexSet`], and the rule-level index `pod-log` builds over its
//! transformation rules.

use crate::ast::{Ast, ClassItem};

/// Caps on the extracted literal sets: more or longer literals than this
/// stop paying for themselves.
const MAX_LITERALS: usize = 16;
/// Longest literal kept; longer required text is truncated (still sound:
/// a truncated prefix/substring is still required).
const MAX_LITERAL_LEN: usize = 24;
/// Largest character class expanded into per-character literals.
const MAX_CLASS_EXPANSION: usize = 4;
/// Inner (containment-only) literals shorter than this produce too many
/// false candidates to be useful.
const MIN_INNER_LEN: usize = 2;

/// The literal requirement derived from a pattern, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LiteralInfo {
    /// Every match starts with one of these (non-empty) literals.
    Prefixes(Vec<String>),
    /// Every match contains at least one of these literals somewhere.
    Inner(Vec<String>),
    /// No useful literal requirement could be derived.
    None,
}

impl LiteralInfo {
    /// The literal set, regardless of kind.
    pub(crate) fn literals(&self) -> Option<&[String]> {
        match self {
            LiteralInfo::Prefixes(l) | LiteralInfo::Inner(l) => Some(l),
            LiteralInfo::None => None,
        }
    }
}

/// Derives the strongest literal requirement for `ast`.
pub(crate) fn literal_info(ast: &Ast) -> LiteralInfo {
    let mut items = Vec::new();
    flatten(ast, &mut items);
    if let Some(set) = prefixes_of_seq(&items) {
        let lits = set.lits;
        if !lits.is_empty() && lits.len() <= MAX_LITERALS && lits.iter().all(|l| !l.is_empty()) {
            return LiteralInfo::Prefixes(cap_lengths(lits));
        }
    }
    match required_of_seq(&items) {
        Some(lits)
            if !lits.is_empty()
                && lits.len() <= MAX_LITERALS
                && lits.iter().all(|l| l.chars().count() >= MIN_INNER_LEN) =>
        {
            LiteralInfo::Inner(cap_lengths(lits))
        }
        _ => LiteralInfo::None,
    }
}

/// Whether every match of `ast` must begin at the start of the input
/// (i.e. the pattern is start-anchored on every alternation path).
pub(crate) fn anchored_at_start(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(items) => {
            for item in items {
                match item {
                    Ast::Empty => continue,
                    other => return anchored_at_start(other),
                }
            }
            false
        }
        Ast::Alternate(branches) => branches.iter().all(anchored_at_start),
        Ast::Group { node, .. } | Ast::NonCapturing(node) => anchored_at_start(node),
        Ast::Repeat { node, min, .. } => *min >= 1 && anchored_at_start(node),
        _ => false,
    }
}

/// Truncates literals to [`MAX_LITERAL_LEN`] characters (sound for both
/// prefix and containment requirements) and deduplicates.
fn cap_lengths(lits: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = lits
        .into_iter()
        .map(|l| l.chars().take(MAX_LITERAL_LEN).collect())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Flattens concatenations and (non-)capturing group wrappers into a flat
/// item sequence; alternations and repeats stay as single items.
fn flatten<'a>(ast: &'a Ast, out: &mut Vec<&'a Ast>) {
    match ast {
        Ast::Concat(items) => {
            for item in items {
                flatten(item, out);
            }
        }
        Ast::Group { node, .. } | Ast::NonCapturing(node) => flatten(node, out),
        other => out.push(other),
    }
}

/// A set of possible prefixes for a (sub)sequence. Invariant: every string
/// the sequence matches starts with one of `lits`. When `exact` is set the
/// sequence matches *exactly* the strings in `lits`, so a following item
/// may extend them.
#[derive(Debug, Clone)]
struct PrefixSet {
    lits: Vec<String>,
    exact: bool,
}

impl PrefixSet {
    fn empty_exact() -> PrefixSet {
        PrefixSet {
            lits: vec![String::new()],
            exact: true,
        }
    }
}

/// Prefix analysis of a flattened item sequence. `None` means "no claim".
fn prefixes_of_seq(items: &[&Ast]) -> Option<PrefixSet> {
    let Some((&first, rest)) = items.split_first() else {
        return Some(PrefixSet::empty_exact());
    };
    match first {
        // Zero-width items are transparent to prefixes.
        Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => prefixes_of_seq(rest),
        Ast::Repeat {
            node, min: 0, max, ..
        } => {
            // Either the repeat is skipped (prefix comes from the rest) or
            // entered at least once (prefix comes from the body). Both
            // cases must yield literals for the union to be sound.
            let skipped = prefixes_of_seq(rest)?;
            let mut body_items = Vec::new();
            flatten(node, &mut body_items);
            let mut entered = prefixes_of_seq(&body_items)?;
            if *max == Some(1) && entered.exact {
                // `x?y`: the entered branch continues straight into the
                // rest, so its exact prefixes extend.
                entered = cross(entered, rest)?;
            } else {
                entered.exact = false;
            }
            union_sets(skipped, entered)
        }
        Ast::Repeat { node, min, max, .. } => {
            // At least one mandatory iteration: the body's prefixes hold.
            // Only a single fixed iteration keeps the set exact.
            let mut body_items = Vec::new();
            flatten(node, &mut body_items);
            let mut set = prefixes_of_seq(&body_items)?;
            if *min == 1 && *max == Some(1) && set.exact {
                return cross(set, rest);
            }
            set.exact = false;
            Some(set)
        }
        other => {
            let set = prefixes_of_atom(other)?;
            if set.exact {
                cross(set, rest)
            } else {
                Some(set)
            }
        }
    }
}

/// Extends an exact prefix set with the analysis of the remaining items.
/// When the tail yields no claim (e.g. it starts with `\w+`), the
/// accumulated strings are still valid prefixes — just no longer exact.
fn cross(acc: PrefixSet, rest: &[&Ast]) -> Option<PrefixSet> {
    debug_assert!(acc.exact);
    let Some(tail) = prefixes_of_seq(rest) else {
        return Some(PrefixSet {
            lits: acc.lits,
            exact: false,
        });
    };
    if acc.lits.len().saturating_mul(tail.lits.len()) > MAX_LITERALS {
        // Too many combinations: stop extending, keep what we have. The
        // accumulated strings are still valid (non-exact) prefixes.
        return Some(PrefixSet {
            lits: acc.lits,
            exact: false,
        });
    }
    let mut lits = Vec::with_capacity(acc.lits.len() * tail.lits.len());
    let mut truncated = false;
    for a in &acc.lits {
        for t in &tail.lits {
            let mut s = a.clone();
            if s.chars().count() >= MAX_LITERAL_LEN {
                truncated = true;
            } else {
                s.push_str(t);
            }
            lits.push(s);
        }
    }
    lits.sort();
    lits.dedup();
    Some(PrefixSet {
        lits,
        exact: tail.exact && !truncated,
    })
}

/// Union of two sound prefix sets (sound: a match starts with a member of
/// either). The union is never exact-extendable.
fn union_sets(a: PrefixSet, b: PrefixSet) -> Option<PrefixSet> {
    let mut lits = a.lits;
    lits.extend(b.lits);
    lits.sort();
    lits.dedup();
    if lits.len() > MAX_LITERALS {
        return None;
    }
    Some(PrefixSet { lits, exact: false })
}

/// Prefix analysis of a single non-transparent atom.
fn prefixes_of_atom(ast: &Ast) -> Option<PrefixSet> {
    match ast {
        Ast::Literal(c) => Some(PrefixSet {
            lits: vec![c.to_string()],
            exact: true,
        }),
        Ast::Class(class) if !class.negated => {
            let chars = expand_class_items(&class.items)?;
            Some(PrefixSet {
                lits: chars.into_iter().map(|c| c.to_string()).collect(),
                exact: true,
            })
        }
        Ast::Alternate(branches) => {
            let mut acc: Option<PrefixSet> = None;
            for branch in branches {
                let mut items = Vec::new();
                flatten(branch, &mut items);
                let set = prefixes_of_seq(&items)?;
                acc = Some(match acc {
                    None => set,
                    Some(prev) => {
                        // Keep exactness when *all* branches are exact so a
                        // following literal can still extend the union.
                        let exact = prev.exact && set.exact;
                        let mut merged = union_sets(prev, set)?;
                        merged.exact = exact;
                        merged
                    }
                });
            }
            acc
        }
        _ => None,
    }
}

/// Expands small, non-negated class item lists into their characters.
fn expand_class_items(items: &[ClassItem]) -> Option<Vec<char>> {
    let mut chars = Vec::new();
    for item in items {
        match item {
            ClassItem::Char(c) => chars.push(*c),
            ClassItem::Range(lo, hi) => {
                let span = (*hi as u32).saturating_sub(*lo as u32) as usize + 1;
                if chars.len() + span > MAX_CLASS_EXPANSION {
                    return None;
                }
                for cp in (*lo as u32)..=(*hi as u32) {
                    chars.push(char::from_u32(cp)?);
                }
            }
            ClassItem::Perl(_) => return None,
        }
        if chars.len() > MAX_CLASS_EXPANSION {
            return None;
        }
    }
    if chars.is_empty() {
        None
    } else {
        Some(chars)
    }
}

/// Containment analysis: a set of literals such that every match of the
/// sequence contains at least one of them. Picks the best candidate
/// (longest minimum length, then fewest alternatives) along the sequence.
fn required_of_seq(items: &[&Ast]) -> Option<Vec<String>> {
    let mut best: Option<Vec<String>> = None;
    let mut run = String::new();
    let consider = |cand: Vec<String>, best: &mut Option<Vec<String>>| {
        if cand.is_empty() || cand.len() > MAX_LITERALS {
            return;
        }
        let score = |set: &[String]| {
            let min_len = set.iter().map(|l| l.chars().count()).min().unwrap_or(0);
            (min_len, usize::MAX - set.len())
        };
        if best.as_deref().is_none_or(|b| score(&cand) > score(b)) {
            *best = Some(cand);
        }
    };
    for &item in items {
        match item {
            Ast::Literal(c) => {
                run.push(*c);
                continue;
            }
            Ast::Alternate(branches) => {
                // Every branch must require a literal for the union to be
                // a requirement of the alternation.
                let mut set = Vec::new();
                let mut ok = true;
                for branch in branches {
                    let mut branch_items = Vec::new();
                    flatten(branch, &mut branch_items);
                    match required_of_seq(&branch_items) {
                        Some(lits) => set.extend(lits),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    set.sort();
                    set.dedup();
                    consider(set, &mut best);
                }
            }
            Ast::Repeat { node, min, .. } if *min >= 1 => {
                let mut body_items = Vec::new();
                flatten(node, &mut body_items);
                if let Some(lits) = required_of_seq(&body_items) {
                    consider(lits, &mut best);
                }
            }
            _ => {}
        }
        // The current literal run ended at this item.
        if !run.is_empty() {
            consider(vec![std::mem::take(&mut run)], &mut best);
        }
    }
    if !run.is_empty() {
        consider(vec![run], &mut best);
    }
    best
}

// ---------------------------------------------------------------------------
// Multi-literal scanner (Aho-Corasick).
// ---------------------------------------------------------------------------

/// Sentinel for "no child" in the dense root table.
const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone, Default)]
struct TrieNode {
    /// Sparse byte → child edges (kept sorted by byte).
    edges: Vec<(u8, u32)>,
    /// Failure link (longest proper suffix that is also a trie prefix).
    fail: u32,
    /// Literal ids whose occurrence ends at this node (own + inherited).
    out: Vec<u32>,
}

impl TrieNode {
    fn child(&self, b: u8) -> Option<u32> {
        self.edges
            .binary_search_by_key(&b, |(byte, _)| *byte)
            .ok()
            .map(|i| self.edges[i].1)
    }
}

/// A multi-literal substring searcher: one pass over the haystack reports
/// every occurrence of every needle. This is the shared prefilter behind
/// [`crate::Regex`], [`crate::RegexSet`] and the rule index in `pod-log`.
///
/// # Examples
///
/// ```
/// use pod_regex::LiteralScanner;
///
/// let scanner = LiteralScanner::new(&["ERROR", "Terminated"]);
/// let mut hits = Vec::new();
/// scanner.scan("ERROR: instance i-1 Terminated", |lit, start| hits.push((lit, start)));
/// assert_eq!(hits, vec![(0, 0), (1, 20)]);
/// assert!(!scanner.matches_any("all quiet"));
/// ```
#[derive(Debug, Clone)]
pub struct LiteralScanner {
    nodes: Vec<TrieNode>,
    /// Dense fan-out for the root state: byte → child (or [`NO_CHILD`]).
    root: Box<[u32; 256]>,
    /// Byte length of each literal, indexed by literal id.
    lit_lens: Vec<usize>,
}

impl LiteralScanner {
    /// Builds a scanner over `literals`. Empty literals are ignored (they
    /// would match everywhere and carry no information).
    pub fn new<S: AsRef<str>>(literals: &[S]) -> LiteralScanner {
        let mut nodes = vec![TrieNode::default()];
        let mut lit_lens = Vec::with_capacity(literals.len());
        for (id, lit) in literals.iter().enumerate() {
            let bytes = lit.as_ref().as_bytes();
            lit_lens.push(bytes.len());
            if bytes.is_empty() {
                continue;
            }
            let mut state = 0u32;
            for &b in bytes {
                state = match nodes[state as usize].child(b) {
                    Some(next) => next,
                    None => {
                        let next = nodes.len() as u32;
                        nodes.push(TrieNode::default());
                        let edges = &mut nodes[state as usize].edges;
                        let pos = edges.partition_point(|(byte, _)| *byte < b);
                        edges.insert(pos, (b, next));
                        next
                    }
                };
            }
            nodes[state as usize].out.push(id as u32);
        }
        // Breadth-first failure links; outputs are inherited from the fail
        // chain so scanning never has to walk it.
        let mut queue = std::collections::VecDeque::new();
        let mut root = Box::new([NO_CHILD; 256]);
        for &(b, child) in &nodes[0].edges.clone() {
            root[b as usize] = child;
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(state) = queue.pop_front() {
            let edges = nodes[state as usize].edges.clone();
            for (b, child) in edges {
                let mut f = nodes[state as usize].fail;
                let fail = loop {
                    if let Some(next) = nodes[f as usize].child(b) {
                        break next;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[child as usize].fail = fail;
                let inherited = nodes[fail as usize].out.clone();
                nodes[child as usize].out.extend(inherited);
                queue.push_back(child);
            }
        }
        LiteralScanner {
            nodes,
            root,
            lit_lens,
        }
    }

    /// Number of literals the scanner was built from.
    pub fn len(&self) -> usize {
        self.lit_lens.len()
    }

    /// Whether the scanner holds no literals (it then never matches).
    pub fn is_empty(&self) -> bool {
        self.lit_lens.is_empty()
    }

    /// Calls `on_hit(literal_id, start_byte_offset)` for every occurrence
    /// of every literal in `haystack`, left to right by end position.
    pub fn scan(&self, haystack: &str, mut on_hit: impl FnMut(usize, usize)) {
        let bytes = haystack.as_bytes();
        let mut state = 0u32;
        for (i, &b) in bytes.iter().enumerate() {
            state = self.step(state, b);
            let node = &self.nodes[state as usize];
            for &lit in &node.out {
                let len = self.lit_lens[lit as usize];
                on_hit(lit as usize, i + 1 - len);
            }
        }
    }

    /// Whether any literal occurs in `haystack` (early exit on first hit).
    pub fn matches_any(&self, haystack: &str) -> bool {
        let bytes = haystack.as_bytes();
        let mut state = 0u32;
        for &b in bytes {
            state = self.step(state, b);
            if !self.nodes[state as usize].out.is_empty() {
                return true;
            }
        }
        false
    }

    #[inline]
    fn step(&self, mut state: u32, b: u8) -> u32 {
        loop {
            if state == 0 {
                let next = self.root[b as usize];
                return if next == NO_CHILD { 0 } else { next };
            }
            if let Some(next) = self.nodes[state as usize].child(b) {
                return next;
            }
            state = self.nodes[state as usize].fail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn info(pattern: &str) -> LiteralInfo {
        literal_info(&parse(pattern).unwrap().ast)
    }

    #[test]
    fn plain_literal_prefix() {
        assert_eq!(
            info("Terminated instance "),
            LiteralInfo::Prefixes(vec!["Terminated instance ".into()])
        );
    }

    #[test]
    fn prefix_stops_at_first_wildcard() {
        match info(r"Instance \w+ is ready") {
            LiteralInfo::Prefixes(lits) => assert_eq!(lits, vec!["Instance ".to_string()]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_alternation_expands() {
        match info(r"[Rr]olling upgrade") {
            LiteralInfo::Prefixes(mut lits) => {
                lits.sort();
                assert_eq!(lits, vec!["Rolling upgrade", "rolling upgrade"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alternation_unions_branch_prefixes() {
        match info("abc|xy|q0") {
            LiteralInfo::Prefixes(mut lits) => {
                lits.sort();
                assert_eq!(lits, vec!["abc", "q0", "xy"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optional_head_unions_skip_and_enter() {
        match info(r"(?:re)?started") {
            LiteralInfo::Prefixes(mut lits) => {
                lits.sort();
                assert_eq!(lits, vec!["restarted", "started"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leading_wildcard_falls_back_to_inner_literal() {
        match info(r"\d+ instances of group") {
            LiteralInfo::Inner(lits) => {
                assert_eq!(lits, vec![" instances of group".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pure_wildcards_have_no_literals() {
        assert_eq!(info(r"\d+\s\w+"), LiteralInfo::None);
        assert_eq!(info(".*"), LiteralInfo::None);
    }

    #[test]
    fn anchored_start_detected() {
        assert!(anchored_at_start(&parse("^abc").unwrap().ast));
        assert!(anchored_at_start(&parse("^a|^b").unwrap().ast));
        assert!(!anchored_at_start(&parse("a^b|^c").unwrap().ast));
        assert!(!anchored_at_start(&parse("abc").unwrap().ast));
    }

    #[test]
    fn group_wrappers_are_transparent() {
        match info(r"(?P<id>i-[0-9a-f]+) terminated") {
            LiteralInfo::Prefixes(lits) => assert_eq!(lits, vec!["i-".to_string()]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scanner_reports_all_hits() {
        let scanner = LiteralScanner::new(&["he", "she", "his", "hers"]);
        let mut hits = Vec::new();
        scanner.scan("ushers", |lit, start| hits.push((lit, start)));
        // "she" at 1, "he" at 2, "hers" at 2.
        assert_eq!(hits, vec![(1, 1), (0, 2), (3, 2)]);
    }

    #[test]
    fn scanner_overlapping_and_miss() {
        let scanner = LiteralScanner::new(&["aba"]);
        let mut hits = Vec::new();
        scanner.scan("ababa", |_, start| hits.push(start));
        assert_eq!(hits, vec![0, 2]);
        assert!(!scanner.matches_any("bbbb"));
        assert!(scanner.matches_any("xxabay"));
    }

    #[test]
    fn scanner_handles_unicode_haystacks() {
        let scanner = LiteralScanner::new(&["ready"]);
        let mut hits = Vec::new();
        scanner.scan("ünïcode ready", |_, start| hits.push(start));
        assert_eq!(hits, vec!["ünïcode ".len()]);
    }
}
