//! Recursive-descent parser for the supported regex dialect.
//!
//! Supported syntax: literals, `.`; escapes `\d \D \w \W \s \S \n \t \r` and
//! escaped metacharacters; classes `[...]` with ranges, negation and
//! shorthand classes; anchors `^ $`; repetition `* + ? {m} {m,} {m,n}` each
//! with an optional non-greedy `?` suffix; alternation `|`; groups `(...)`,
//! `(?:...)` and named groups `(?P<name>...)` / `(?<name>...)`.

use std::fmt;

use crate::ast::{Ast, CharClass, ClassItem, PerlClass};

/// An error produced while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the pattern where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result of a successful parse.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// Root of the AST.
    pub ast: Ast,
    /// Number of capturing groups (not counting group 0, the whole match).
    pub capture_count: u32,
    /// Names of named groups, as `(index, name)` pairs.
    pub capture_names: Vec<(u32, String)>,
}

/// Maximum expansion allowed for `{m,n}` repetitions; guards against
/// pathological compile-time blowup.
const MAX_REPEAT: u32 = 256;

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
    next_group: u32,
    names: Vec<(u32, String)>,
}

/// Parses `pattern` into an AST.
pub fn parse(pattern: &str) -> Result<Parsed, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
        next_group: 1,
        names: Vec::new(),
    };
    let ast = p.parse_alternation()?;
    if p.pos < p.chars.len() {
        return Err(p.error(format!("unexpected `{}`", p.chars[p.pos])));
    }
    Ok(Parsed {
        ast,
        capture_count: p.next_group - 1,
        capture_names: p.names,
    })
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos.min(self.pattern.len()),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().expect("one item")),
            _ => Ok(Ast::Concat(items)),
        }
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                if let Some(bounds) = self.try_parse_bounds()? {
                    bounds
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor | Ast::Empty) {
            return Err(self.error("repetition operator applied to an anchor or empty expression"));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Parses `{m}`, `{m,}`, `{m,n}` after the opening brace position.
    /// Returns `None` (restoring position) when the braces are not a valid
    /// bound, in which case `{` is treated as a literal.
    fn try_parse_bounds(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseError> {
        let start = self.pos;
        self.bump(); // consume '{'
        let min = self.parse_number();
        let bounds = match (min, self.peek()) {
            (Some(m), Some('}')) => {
                self.bump();
                Some((m, Some(m)))
            }
            (Some(m), Some(',')) => {
                self.bump();
                let max = self.parse_number();
                if self.eat('}') {
                    Some((m, max))
                } else {
                    None
                }
            }
            _ => None,
        };
        match bounds {
            Some((m, x)) => {
                if let Some(x) = x {
                    if x < m {
                        return Err(self.error("repetition bound {m,n} requires m <= n"));
                    }
                    if x > MAX_REPEAT {
                        return Err(self.error(format!("repetition bound exceeds {MAX_REPEAT}")));
                    }
                } else if m > MAX_REPEAT {
                    return Err(self.error(format!("repetition bound exceeds {MAX_REPEAT}")));
                }
                Ok(Some((m, x)))
            }
            None => {
                self.pos = start;
                Ok(None)
            }
        }
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().ok()
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            Some('(') => self.parse_group(),
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(),
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some(c @ ('*' | '+' | '?')) => Err(self.error(format!("dangling `{c}`"))),
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
            None => Ok(Ast::Empty),
        }
    }

    fn parse_group(&mut self) -> Result<Ast, ParseError> {
        self.bump(); // '('
        let mut name = None;
        let mut capturing = true;
        if self.eat('?') {
            match self.peek() {
                Some(':') => {
                    self.bump();
                    capturing = false;
                }
                Some('P') | Some('<') => {
                    if self.peek() == Some('P') {
                        self.bump();
                    }
                    if !self.eat('<') {
                        return Err(self.error("expected `<` after `(?P`"));
                    }
                    let mut n = String::new();
                    while let Some(c) = self.peek() {
                        if c == '>' {
                            break;
                        }
                        if !(c.is_ascii_alphanumeric() || c == '_') {
                            return Err(self.error(format!("invalid group-name character `{c}`")));
                        }
                        n.push(c);
                        self.bump();
                    }
                    if !self.eat('>') {
                        return Err(self.error("unterminated group name"));
                    }
                    if n.is_empty() {
                        return Err(self.error("empty group name"));
                    }
                    name = Some(n);
                }
                _ => return Err(self.error("unsupported group flag")),
            }
        }
        let ast = if capturing {
            let index = self.next_group;
            self.next_group += 1;
            if let Some(ref n) = name {
                if self.names.iter().any(|(_, existing)| existing == n) {
                    return Err(self.error(format!("duplicate group name `{n}`")));
                }
                self.names.push((index, n.clone()));
            }
            let node = Box::new(self.parse_alternation()?);
            Ast::Group { index, name, node }
        } else {
            Ast::NonCapturing(Box::new(self.parse_alternation()?))
        };
        if !self.eat(')') {
            return Err(self.error("unterminated group"));
        }
        Ok(ast)
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        self.bump(); // '['
        let negated = self.eat('^');
        let mut items = Vec::new();
        // `]` immediately after `[` or `[^` is a literal.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Char(']'));
        }
        loop {
            let c = match self.peek() {
                Some(']') => {
                    self.bump();
                    break;
                }
                Some(c) => c,
                None => return Err(self.error("unterminated character class")),
            };
            self.bump();
            let lo = if c == '\\' {
                match self.class_escape()? {
                    ClassAtom::Char(ch) => ch,
                    ClassAtom::Perl(p) => {
                        items.push(ClassItem::Perl(p));
                        continue;
                    }
                }
            } else {
                c
            };
            // Possible range `lo-hi`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                if self.chars.get(self.pos + 1).is_none() {
                    return Err(self.error("unterminated character class"));
                }
                self.bump(); // '-'
                let hc = self.bump().expect("checked above");
                let hi = if hc == '\\' {
                    match self.class_escape()? {
                        ClassAtom::Char(ch) => ch,
                        ClassAtom::Perl(_) => {
                            return Err(self.error("shorthand class cannot bound a range"))
                        }
                    }
                } else {
                    hc
                };
                if hi < lo {
                    return Err(self.error("invalid character range"));
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Char(lo));
            }
        }
        Ok(Ast::Class(CharClass { negated, items }))
    }

    fn class_escape(&mut self) -> Result<ClassAtom, ParseError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error("dangling escape in character class"))?;
        Ok(match c {
            'd' => ClassAtom::Perl(PerlClass::Digit),
            'D' => ClassAtom::Perl(PerlClass::NotDigit),
            'w' => ClassAtom::Perl(PerlClass::Word),
            'W' => ClassAtom::Perl(PerlClass::NotWord),
            's' => ClassAtom::Perl(PerlClass::Space),
            'S' => ClassAtom::Perl(PerlClass::NotSpace),
            'n' => ClassAtom::Char('\n'),
            't' => ClassAtom::Char('\t'),
            'r' => ClassAtom::Char('\r'),
            other => ClassAtom::Char(other),
        })
    }

    fn parse_escape(&mut self) -> Result<Ast, ParseError> {
        self.bump(); // '\'
        let c = self.bump().ok_or_else(|| self.error("dangling escape"))?;
        Ok(match c {
            'd' => Ast::Perl(PerlClass::Digit),
            'D' => Ast::Perl(PerlClass::NotDigit),
            'w' => Ast::Perl(PerlClass::Word),
            'W' => Ast::Perl(PerlClass::NotWord),
            's' => Ast::Perl(PerlClass::Space),
            'S' => Ast::Perl(PerlClass::NotSpace),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            other => Ast::Literal(other),
        })
    }
}

enum ClassAtom {
    Char(char),
    Perl(PerlClass),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_concat() {
        let p = parse("abc").unwrap();
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn parses_alternation_and_groups() {
        let p = parse("(a|b)c").unwrap();
        assert_eq!(p.capture_count, 1);
        match &p.ast {
            Ast::Concat(items) => {
                assert!(matches!(items[0], Ast::Group { index: 1, .. }));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn parses_named_groups() {
        let p = parse(r"(?P<id>i-[0-9a-f]+)").unwrap();
        assert_eq!(p.capture_names, vec![(1, "id".to_string())]);
        let p2 = parse(r"(?<id2>\d+)").unwrap();
        assert_eq!(p2.capture_names, vec![(1, "id2".to_string())]);
    }

    #[test]
    fn rejects_duplicate_group_names() {
        assert!(parse(r"(?P<a>x)(?P<a>y)").is_err());
    }

    #[test]
    fn parses_bounded_repeats() {
        let p = parse(r"\d{4}").unwrap();
        assert_eq!(
            p.ast,
            Ast::Repeat {
                node: Box::new(Ast::Perl(PerlClass::Digit)),
                min: 4,
                max: Some(4),
                greedy: true,
            }
        );
    }

    #[test]
    fn brace_without_bound_is_literal() {
        let p = parse("a{b").unwrap();
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('b')
            ])
        );
    }

    #[test]
    fn rejects_inverted_bounds() {
        assert!(parse("a{3,2}").is_err());
        assert!(parse(&format!("a{{1,{}}}", 10_000)).is_err());
    }

    #[test]
    fn parses_classes() {
        let p = parse(r"[^a-z\d_]").unwrap();
        match p.ast {
            Ast::Class(c) => {
                assert!(c.negated);
                assert_eq!(c.items.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leading_bracket_in_class_is_literal() {
        let p = parse(r"[]a]").unwrap();
        match p.ast {
            Ast::Class(c) => assert_eq!(c.items, vec![ClassItem::Char(']'), ClassItem::Char('a')]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_dangling_operators() {
        assert!(parse("*a").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse(r"a\").is_err());
        assert!(parse("a)").is_err());
    }

    #[test]
    fn rejects_repeat_of_anchor() {
        assert!(parse("^*").is_err());
    }

    #[test]
    fn non_capturing_group_does_not_count() {
        let p = parse("(?:ab)+(c)").unwrap();
        assert_eq!(p.capture_count, 1);
    }
}
