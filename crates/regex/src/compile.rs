//! Compilation of the AST into a small backtracking-VM program.

use crate::ast::{Ast, CharClass, PerlClass};

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Match exactly this character.
    Char(char),
    /// Match any character except `\n`.
    Any,
    /// Match a bracketed class.
    Class(CharClass),
    /// Match a shorthand class.
    Perl(PerlClass),
    /// Try `first`; on failure backtrack to `second`.
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Record the current position into slot `n`.
    Save(usize),
    /// Record the current position into progress register `n` (loop guard).
    Mark(usize),
    /// If the position advanced since `Mark(reg)`, jump to `target`;
    /// otherwise fall through (breaking out of an empty-match loop).
    IfProgress {
        /// Progress register to compare against.
        reg: usize,
        /// Loop head to jump to when progress was made.
        target: usize,
    },
    /// Assert start of input.
    AssertStart,
    /// Assert end of input.
    AssertEnd,
    /// Successful match.
    Match,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction sequence.
    pub insts: Vec<Inst>,
    /// Number of capture slots (two per group, including group 0).
    pub n_slots: usize,
    /// Number of progress registers used by loop guards.
    pub n_regs: usize,
    /// Number of capturing groups excluding group 0.
    pub n_captures: u32,
}

struct Compiler {
    insts: Vec<Inst>,
    n_regs: usize,
}

/// Compiles a parsed AST (with its capture count) into a program.
pub fn compile(ast: &Ast, capture_count: u32) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        n_regs: 0,
    };
    c.insts.push(Inst::Save(0));
    c.emit(ast);
    c.insts.push(Inst::Save(1));
    c.insts.push(Inst::Match);
    Program {
        insts: c.insts,
        n_slots: 2 * (capture_count as usize + 1),
        n_regs: c.n_regs,
        n_captures: capture_count,
    }
}

impl Compiler {
    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => self.insts.push(Inst::Char(*c)),
            Ast::AnyChar => self.insts.push(Inst::Any),
            Ast::Class(c) => self.insts.push(Inst::Class(c.clone())),
            Ast::Perl(p) => self.insts.push(Inst::Perl(*p)),
            Ast::StartAnchor => self.insts.push(Inst::AssertStart),
            Ast::EndAnchor => self.insts.push(Inst::AssertEnd),
            Ast::Concat(items) => {
                for item in items {
                    self.emit(item);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.emit_repeat(node, *min, *max, *greedy),
            Ast::Group { index, node, .. } => {
                let slot = 2 * (*index as usize);
                self.insts.push(Inst::Save(slot));
                self.emit(node);
                self.insts.push(Inst::Save(slot + 1));
            }
            Ast::NonCapturing(node) => self.emit(node),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // split b1, (split b2, (... bn))
        let mut jump_ends = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(0, 0)); // patched below
                self.emit(branch);
                jump_ends.push(self.insts.len());
                self.insts.push(Inst::Jump(0)); // patched below
                let next = self.insts.len();
                self.insts[split_at] = Inst::Split(split_at + 1, next);
            } else {
                self.emit(branch);
            }
        }
        let end = self.insts.len();
        for j in jump_ends {
            self.insts[j] = Inst::Jump(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory prefix.
        for _ in 0..min {
            self.emit(node);
        }
        match max {
            Some(max) => {
                // (max - min) optional copies.
                let mut splits = Vec::new();
                for _ in min..max {
                    let split_at = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    splits.push(split_at);
                    self.emit(node);
                }
                let end = self.insts.len();
                for s in splits {
                    self.insts[s] = if greedy {
                        Inst::Split(s + 1, end)
                    } else {
                        Inst::Split(end, s + 1)
                    };
                }
            }
            None => {
                // Unbounded tail: loop with an empty-match guard.
                let reg = self.n_regs;
                self.n_regs += 1;
                let head = self.insts.len();
                self.insts.push(Inst::Split(0, 0)); // patched below
                self.insts.push(Inst::Mark(reg));
                self.emit(node);
                self.insts.push(Inst::IfProgress { reg, target: head });
                let end = self.insts.len();
                self.insts[head] = if greedy {
                    Inst::Split(head + 1, end)
                } else {
                    Inst::Split(end, head + 1)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(pattern: &str) -> Program {
        let p = parse(pattern).unwrap();
        compile(&p.ast, p.capture_count)
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        assert_eq!(
            p.insts,
            vec![
                Inst::Save(0),
                Inst::Char('a'),
                Inst::Char('b'),
                Inst::Save(1),
                Inst::Match
            ]
        );
    }

    #[test]
    fn star_uses_progress_guard() {
        let p = prog("a*");
        assert!(p.insts.iter().any(|i| matches!(i, Inst::IfProgress { .. })));
        assert_eq!(p.n_regs, 1);
    }

    #[test]
    fn bounded_repeat_expands() {
        let p = prog("a{3}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 3);
        assert_eq!(p.n_regs, 0);
    }

    #[test]
    fn groups_allocate_slots() {
        let p = prog("(a)(b)");
        assert_eq!(p.n_slots, 6);
        assert_eq!(p.n_captures, 2);
    }
}
