//! Abstract syntax tree for the supported regex dialect.

/// A single item in a character class, e.g. `a`, `a-z` or `\d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// One literal character.
    Char(char),
    /// An inclusive range `lo-hi`.
    Range(char, char),
    /// A perl-style shorthand class (`\d`, `\w`, `\s` and negations).
    Perl(PerlClass),
}

/// Perl-style shorthand character classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerlClass {
    /// `\d` — ASCII digits.
    Digit,
    /// `\D` — anything but an ASCII digit.
    NotDigit,
    /// `\w` — ASCII word characters (`[0-9A-Za-z_]`).
    Word,
    /// `\W` — anything but a word character.
    NotWord,
    /// `\s` — ASCII whitespace.
    Space,
    /// `\S` — anything but whitespace.
    NotSpace,
}

impl PerlClass {
    /// Whether `c` belongs to the class.
    pub fn matches(self, c: char) -> bool {
        match self {
            PerlClass::Digit => c.is_ascii_digit(),
            PerlClass::NotDigit => !c.is_ascii_digit(),
            PerlClass::Word => c.is_ascii_alphanumeric() || c == '_',
            PerlClass::NotWord => !(c.is_ascii_alphanumeric() || c == '_'),
            PerlClass::Space => c.is_ascii_whitespace(),
            PerlClass::NotSpace => !c.is_ascii_whitespace(),
        }
    }
}

/// A bracketed character class `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Whether the class is negated (`[^...]`).
    pub negated: bool,
    /// The items inside the brackets.
    pub items: Vec<ClassItem>,
}

impl CharClass {
    /// Whether `c` matches the class.
    pub fn matches(&self, c: char) -> bool {
        let inside = self.items.iter().any(|item| match item {
            ClassItem::Char(ch) => *ch == c,
            ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
            ClassItem::Perl(p) => p.matches(c),
        });
        inside != self.negated
    }
}

/// A parsed regular expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// The empty expression, matching the empty string.
    Empty,
    /// One literal character.
    Literal(char),
    /// `.` — any character except newline.
    AnyChar,
    /// A bracketed class.
    Class(CharClass),
    /// A shorthand class used outside brackets.
    Perl(PerlClass),
    /// `^` — start of input.
    StartAnchor,
    /// `$` — end of input.
    EndAnchor,
    /// Concatenation of subexpressions.
    Concat(Vec<Ast>),
    /// Alternation `a|b|c`.
    Alternate(Vec<Ast>),
    /// A repetition such as `a*`, `a+?`, `a{2,5}`.
    Repeat {
        /// The repeated subexpression.
        node: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions, `None` for unbounded.
        max: Option<u32>,
        /// Whether the repetition is greedy (`true` unless suffixed `?`).
        greedy: bool,
    },
    /// A capturing group `(...)` or named group `(?P<name>...)`.
    Group {
        /// 1-based capture index.
        index: u32,
        /// Optional name for `(?P<name>...)` groups.
        name: Option<String>,
        /// Group body.
        node: Box<Ast>,
    },
    /// A non-capturing group `(?:...)`.
    NonCapturing(Box<Ast>),
}
