//! A non-backtracking (Pike-style) execution engine for compiled programs.
//!
//! The backtracking VM in [`crate::vm`] clones the full capture-slot and
//! register state into a frame on every `Split` and re-runs from every start
//! offset, which makes worst-case cost exponential and even the common case
//! allocation-heavy. This engine simulates the NFA instead: it advances a
//! *thread list* through the input one character at a time, deduplicating
//! threads with a per-position visited set, so cost is bounded by
//! `O(input.len() × program.len())` with no per-step allocation (scratch
//! buffers are thread-local and reused across calls).
//!
//! Threads are kept in priority order (first = preferred), which reproduces
//! the backtracker's leftmost-first (Perl-style) semantics: when a `Match`
//! thread is reached, lower-priority threads are cut, while higher-priority
//! threads live on and may replace the recorded match with a preferred one.
//!
//! Unlike [`crate::vm::exec`], which tries a single start offset, this
//! engine scans the whole input in one pass; [`StartPolicy`] restricts
//! which offsets may begin a match (all of them, only offset zero for
//! anchored patterns, or only prefilter candidate offsets).
//!
//! Capture slots produced here are **byte offsets** into the input; the
//! backtracking path works in char indices and is converted by the caller.

use std::cell::RefCell;

use crate::compile::{Inst, Program};

/// Capture slots in byte offsets (`None` = group did not participate).
pub type ByteSlots = Vec<Option<usize>>;

/// Which byte offsets a match may start at.
#[derive(Debug, Clone, Copy)]
pub enum StartPolicy<'a> {
    /// Any position (classic unanchored search).
    All,
    /// Only position 0 (the pattern is start-anchored).
    Zero,
    /// Only the given positions (sorted, deduplicated byte offsets from a
    /// literal prefilter; all must lie on char boundaries).
    At(&'a [usize]),
}

/// One NFA thread: a program counter plus its capture slots.
struct Thread {
    pc: usize,
    slots: ByteSlots,
}

/// Reusable per-OS-thread scratch: the two thread lists, the visited set
/// (generation-stamped so clearing is O(1)), a slot-buffer pool and the
/// working slot buffer used while computing epsilon closures.
#[derive(Default)]
struct Scratch {
    clist: Vec<Thread>,
    nlist: Vec<Thread>,
    seen: Vec<u64>,
    pool: Vec<ByteSlots>,
    work: ByteSlots,
    gen: u64,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `prog` over `text`, returning the leftmost-first match's capture
/// slots (byte offsets), or `None`. Never backtracks, so there is no step
/// limit to hit.
pub(crate) fn exec(prog: &Program, text: &str, policy: StartPolicy<'_>) -> Option<ByteSlots> {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => run(prog, text, policy, &mut scratch),
        // Re-entrant call (e.g. from a panic hook or nested matching):
        // fall back to fresh buffers rather than aliasing the scratch.
        Err(_) => run(prog, text, policy, &mut Scratch::default()),
    })
}

/// Adds the epsilon closure of `pc` (at input byte `at`) to `list` in
/// priority (depth-first) order. `work` holds the capture slots of the
/// thread being extended; `Save` entries are written before recursing and
/// restored after, so sibling branches see the original values.
#[allow(clippy::too_many_arguments)]
fn add_thread(
    prog: &Program,
    pc: usize,
    at: usize,
    len: usize,
    work: &mut ByteSlots,
    list: &mut Vec<Thread>,
    seen: &mut [u64],
    gen: u64,
    pool: &mut Vec<ByteSlots>,
) {
    if seen[pc] == gen {
        return;
    }
    seen[pc] = gen;
    match &prog.insts[pc] {
        Inst::Jump(target) => add_thread(prog, *target, at, len, work, list, seen, gen, pool),
        Inst::Split(first, second) => {
            add_thread(prog, *first, at, len, work, list, seen, gen, pool);
            add_thread(prog, *second, at, len, work, list, seen, gen, pool);
        }
        Inst::Save(slot) => {
            let old = work[*slot];
            work[*slot] = Some(at);
            add_thread(prog, pc + 1, at, len, work, list, seen, gen, pool);
            work[*slot] = old;
        }
        // Progress registers exist to stop the *backtracker* re-running an
        // empty loop body forever; here the visited set already guarantees
        // each pc is expanded once per position, so `Mark` is a no-op and
        // `IfProgress` degrades to a prioritized split: try another loop
        // iteration first (`target`), else fall through to the loop exit.
        Inst::Mark(_) => add_thread(prog, pc + 1, at, len, work, list, seen, gen, pool),
        Inst::IfProgress { target, .. } => {
            add_thread(prog, *target, at, len, work, list, seen, gen, pool);
            add_thread(prog, pc + 1, at, len, work, list, seen, gen, pool);
        }
        Inst::AssertStart => {
            if at == 0 {
                add_thread(prog, pc + 1, at, len, work, list, seen, gen, pool);
            }
        }
        Inst::AssertEnd => {
            if at == len {
                add_thread(prog, pc + 1, at, len, work, list, seen, gen, pool);
            }
        }
        // Consuming instructions and Match park a thread in the list with
        // its own copy of the slots (drawn from the pool, not allocated).
        Inst::Char(_) | Inst::Any | Inst::Class(_) | Inst::Perl(_) | Inst::Match => {
            let mut slots = pool.pop().unwrap_or_default();
            slots.clone_from(work);
            list.push(Thread { pc, slots });
        }
    }
}

fn run(prog: &Program, text: &str, policy: StartPolicy<'_>, s: &mut Scratch) -> Option<ByteSlots> {
    let len = text.len();
    let n_insts = prog.insts.len();
    if s.seen.len() < n_insts {
        s.seen.resize(n_insts, 0);
    }
    let Scratch {
        clist,
        nlist,
        seen,
        pool,
        work,
        gen,
    } = s;
    clist.clear();
    nlist.clear();
    work.clear();
    work.resize(prog.n_slots, None);

    let mut matched: Option<ByteSlots> = None;
    let mut starts_idx = 0usize;
    *gen += 1;
    let mut cur_gen = *gen;
    let mut at = 0usize;
    loop {
        let ch = text[at..].chars().next();
        // Seed a new start at this offset, unless a (leftmost) match is
        // already recorded or the policy excludes it. Seeds go at the end
        // of the list: earlier starts keep higher priority.
        let seed = matched.is_none()
            && match policy {
                StartPolicy::All => true,
                StartPolicy::Zero => at == 0,
                StartPolicy::At(starts) => {
                    while starts_idx < starts.len() && starts[starts_idx] < at {
                        starts_idx += 1;
                    }
                    starts.get(starts_idx) == Some(&at)
                }
            };
        if seed {
            work.iter_mut().for_each(|v| *v = None);
            add_thread(prog, 0, at, len, work, clist, seen, cur_gen, pool);
        }

        *gen += 1;
        let next_gen = *gen;
        let width = ch.map_or(0, char::len_utf8);
        let mut idx = 0;
        while idx < clist.len() {
            let consumes = match &prog.insts[clist[idx].pc] {
                Inst::Char(c) => ch == Some(*c),
                Inst::Any => ch.is_some_and(|c| c != '\n'),
                Inst::Class(class) => ch.is_some_and(|c| class.matches(c)),
                Inst::Perl(p) => ch.is_some_and(|c| p.matches(c)),
                Inst::Match => {
                    // Record this match and cut the lower-priority threads
                    // behind it. Higher-priority threads already advanced
                    // into `nlist` and may still replace this result.
                    matched = Some(std::mem::take(&mut clist[idx].slots));
                    break;
                }
                _ => unreachable!("epsilon instruction parked in thread list"),
            };
            if consumes {
                let thread = &mut clist[idx];
                std::mem::swap(work, &mut thread.slots);
                add_thread(
                    prog,
                    thread.pc + 1,
                    at + width,
                    len,
                    work,
                    nlist,
                    seen,
                    next_gen,
                    pool,
                );
                std::mem::swap(work, &mut clist[idx].slots);
            }
            idx += 1;
        }
        // Recycle this position's slot buffers and promote the next list.
        pool.extend(clist.drain(..).map(|t| t.slots));
        std::mem::swap(clist, nlist);
        cur_gen = next_gen;

        if clist.is_empty() {
            // No live thread: done if a match is recorded or no start can
            // ever be seeded at a later offset.
            let more_starts = matched.is_none()
                && match policy {
                    StartPolicy::All => at < len,
                    StartPolicy::Zero => false,
                    StartPolicy::At(starts) => starts_idx < starts.len(),
                };
            if !more_starts {
                break;
            }
        }
        if at >= len {
            break;
        }
        at += width;
    }
    pool.extend(clist.drain(..).map(|t| t.slots));
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn find(pattern: &str, text: &str) -> Option<ByteSlots> {
        let parsed = parse(pattern).unwrap();
        let prog = compile(&parsed.ast, parsed.capture_count);
        exec(&prog, text, StartPolicy::All)
    }

    fn span(pattern: &str, text: &str) -> Option<(usize, usize)> {
        find(pattern, text).map(|s| (s[0].unwrap(), s[1].unwrap()))
    }

    #[test]
    fn literal_and_miss() {
        assert_eq!(span("abc", "xxabcy"), Some((2, 5)));
        assert_eq!(span("abc", "xxaby"), None);
    }

    #[test]
    fn leftmost_first_priority() {
        // Alternation prefers the left branch even when the right branch
        // also matches at the same offset.
        assert_eq!(span("ab|a", "ab"), Some((0, 2)));
        // Leftmost beats longest: a later, longer match does not win.
        assert_eq!(span("ab|bcd", "xabcd"), Some((1, 3)));
        assert_eq!(span("a|bb", "cbba"), Some((1, 3)));
    }

    #[test]
    fn captures_are_byte_offsets() {
        let slots = find(r"(\w+)=(\w+)", "ün k=v").unwrap();
        // `k` is char index 3 but byte offset 4 (`ü` is 2 bytes).
        assert_eq!((slots[0], slots[1]), (Some(4), Some(7)));
        assert_eq!((slots[2], slots[3]), (Some(4), Some(5)));
        assert_eq!((slots[4], slots[5]), (Some(6), Some(7)));
    }

    #[test]
    fn greedy_vs_lazy() {
        assert_eq!(span("a.*c", "abcbc"), Some((0, 5)));
        assert_eq!(span("a.*?c", "abcbc"), Some((0, 3)));
    }

    #[test]
    fn empty_loop_terminates_and_records_slots() {
        let slots = find("(a*)*", "b").unwrap();
        assert_eq!((slots[0], slots[1]), (Some(0), Some(0)));
        assert_eq!((slots[2], slots[3]), (Some(0), Some(0)));
    }

    #[test]
    fn anchored_policies() {
        let parsed = parse("ab").unwrap();
        let prog = compile(&parsed.ast, parsed.capture_count);
        assert!(exec(&prog, "xxab", StartPolicy::Zero).is_none());
        assert!(exec(&prog, "abxx", StartPolicy::Zero).is_some());
        assert_eq!(
            exec(&prog, "xxab", StartPolicy::At(&[2])).map(|s| s[0]),
            Some(Some(2))
        );
        assert!(exec(&prog, "xxab", StartPolicy::At(&[1])).is_none());
    }

    #[test]
    fn catastrophic_pattern_is_linear() {
        // The backtracker exhausts its step budget on this; the Pike VM
        // answers definitively (and quickly).
        let parsed = parse("(a+)+b").unwrap();
        let prog = compile(&parsed.ast, parsed.capture_count);
        let text = "a".repeat(64);
        assert!(exec(&prog, &text, StartPolicy::All).is_none());
        let text = format!("{}b", "a".repeat(64));
        assert!(exec(&prog, &text, StartPolicy::All).is_some());
    }

    #[test]
    fn end_anchor_and_empty_match() {
        assert_eq!(span("x*", "abc"), Some((0, 0)));
        assert_eq!(span("c$", "abc"), Some((2, 3)));
        assert_eq!(span("^$", ""), Some((0, 0)));
        assert_eq!(span("^$", "a"), None);
    }
}
