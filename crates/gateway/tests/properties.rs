//! Gateway behavior tests: routing stability (property-based), overload
//! policies with documented drop counts, batching, admission control and
//! determinism.

use std::sync::{Arc, Mutex};

use pod_core::RunSummary;
use pod_gateway::{
    shard_for, DiagnosisSink, Gateway, GatewayConfig, GatewayError, OverloadPolicy, SubmitOutcome,
};
use pod_log::LogEvent;
use pod_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A sink that records the batches it receives (message text only).
#[derive(Debug, Default)]
struct RecordingSink {
    batches: Arc<Mutex<Vec<Vec<String>>>>,
}

impl RecordingSink {
    fn new() -> (RecordingSink, Arc<Mutex<Vec<Vec<String>>>>) {
        let sink = RecordingSink::default();
        let handle = sink.batches.clone();
        (sink, handle)
    }
}

impl DiagnosisSink for RecordingSink {
    fn ingest_batch(&mut self, events: Vec<LogEvent>) {
        self.batches
            .lock()
            .unwrap()
            .push(events.into_iter().map(|e| e.message).collect());
    }

    fn finish(&mut self) -> RunSummary {
        RunSummary::default()
    }
}

fn messages(handle: &Arc<Mutex<Vec<Vec<String>>>>) -> Vec<String> {
    handle.lock().unwrap().iter().flatten().cloned().collect()
}

fn single_shard_config(capacity: usize, batch: usize, overload: OverloadPolicy) -> GatewayConfig {
    GatewayConfig {
        shards: 1,
        queue_capacity: capacity,
        batch_size: batch,
        // A wide flush window so all test lines land within one window.
        flush_interval: SimDuration::from_secs(10),
        overload,
        ..GatewayConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical (process id, instance id) pairs always land on the same
    /// shard, across calls and across gateway instances.
    #[test]
    fn routing_is_deterministic_and_in_range(
        process in "[a-z-]{1,12}",
        instance in "[a-z0-9-]{1,16}",
        shards in 1usize..32,
    ) {
        let first = shard_for(&process, &instance, shards);
        prop_assert!(first < shards);
        for _ in 0..3 {
            prop_assert_eq!(shard_for(&process, &instance, shards), first);
        }
        // A gateway with unrelated registrations routes the key identically:
        // routing depends only on (key, shard count).
        let mut gw = Gateway::new(GatewayConfig { shards, ..GatewayConfig::default() });
        let (sink, _) = RecordingSink::new();
        let _ = gw.register("other-process", "other-instance", Box::new(sink));
        prop_assert_eq!(gw.route(&process, &instance), first);
    }

    /// Rebalancing only moves keys when the shard count changes: for a
    /// fixed count the assignment is a pure function of the key.
    #[test]
    fn keys_move_only_when_shard_count_changes(
        instances in prop::collection::vec("[a-z0-9]{1,10}", 1..20),
        shards in 1usize..16,
    ) {
        let before: Vec<usize> = instances
            .iter()
            .map(|i| shard_for("rolling-upgrade", i, shards))
            .collect();
        // Same count later (any amount of other traffic in between): no key moves.
        let after: Vec<usize> = instances
            .iter()
            .map(|i| shard_for("rolling-upgrade", i, shards))
            .collect();
        prop_assert_eq!(&before, &after);
        // Different count: assignments stay in range (and only then may move).
        for i in &instances {
            prop_assert!(shard_for("rolling-upgrade", i, shards + 1) < shards + 1);
        }
    }
}

#[test]
fn shed_oldest_drops_documented_count_and_keeps_newest() {
    let mut gw = Gateway::new(single_shard_config(4, 4, OverloadPolicy::ShedOldest));
    let (sink, handle) = RecordingSink::new();
    let op = gw.register("p", "i", Box::new(sink)).unwrap();
    let mut shed = 0;
    for i in 0..10 {
        if gw.submit(op, SimTime::ZERO, &format!("line {i}")) == SubmitOutcome::ShedOldest {
            shed += 1;
        }
    }
    assert_eq!(shed, 6, "10 lines into capacity 4 shed exactly 6");
    gw.pump_until_idle();
    assert_eq!(messages(&handle), ["line 6", "line 7", "line 8", "line 9"]);
    let stats = gw.stats();
    assert_eq!(stats.shed_oldest, 6);
    assert_eq!(stats.total_shed(), 6);
    assert_eq!(stats.lines_processed, 4);
    assert_eq!(stats.shards[0].shed, 6);
    // The obs counters agree — this is what the journal serializes.
    let snap = gw.obs().snapshot();
    assert_eq!(snap.counter("gateway.shed.oldest"), 6);
    assert_eq!(snap.counter("gateway.shard.0.shed"), 6);
    assert_eq!(snap.sum_counters("gateway.shed."), 6);
}

#[test]
fn shed_newest_drops_documented_count_and_keeps_oldest() {
    let mut gw = Gateway::new(single_shard_config(4, 4, OverloadPolicy::ShedNewest));
    let (sink, handle) = RecordingSink::new();
    let op = gw.register("p", "i", Box::new(sink)).unwrap();
    let shed = (0..10)
        .filter(|i| gw.submit(op, SimTime::ZERO, &format!("line {i}")) == SubmitOutcome::ShedNewest)
        .count();
    assert_eq!(shed, 6);
    gw.pump_until_idle();
    assert_eq!(messages(&handle), ["line 0", "line 1", "line 2", "line 3"]);
    assert_eq!(gw.stats().shed_newest, 6);
    assert_eq!(gw.obs().snapshot().counter("gateway.shed.newest"), 6);
}

#[test]
fn block_stalls_producer_and_loses_nothing() {
    let mut gw = Gateway::new(single_shard_config(4, 1, OverloadPolicy::Block));
    let (sink, handle) = RecordingSink::new();
    let op = gw.register("p", "i", Box::new(sink)).unwrap();
    let blocked = (0..10)
        .filter(|i| {
            gw.submit(op, SimTime::ZERO, &format!("line {i}")) == SubmitOutcome::BlockedThenEnqueued
        })
        .count();
    assert_eq!(blocked, 6, "every over-capacity submit stalls once");
    gw.pump_until_idle();
    let got = messages(&handle);
    assert_eq!(got.len(), 10, "block never sheds");
    assert_eq!(got[0], "line 0");
    let stats = gw.stats();
    assert_eq!(stats.blocked, 6);
    assert_eq!(stats.total_shed(), 0);
    assert_eq!(stats.lines_processed, 10);
    // Producer stalls were measured on the virtual clock.
    let snap = gw.obs().snapshot();
    assert_eq!(
        snap.histogram("gateway.backpressure.stall_us")
            .unwrap()
            .count,
        6
    );
}

#[test]
fn shards_drain_in_batches_and_defer_overflow() {
    let mut gw = Gateway::new(single_shard_config(100, 4, OverloadPolicy::Block));
    let (sink, handle) = RecordingSink::new();
    let op = gw.register("p", "i", Box::new(sink)).unwrap();
    for i in 0..10 {
        gw.submit(op, SimTime::ZERO, &format!("line {i}"));
    }
    gw.pump_until_idle();
    let sizes: Vec<usize> = handle.lock().unwrap().iter().map(|b| b.len()).collect();
    assert_eq!(sizes, [4, 4, 2], "10 lines drain as batches of at most 4");
    let stats = gw.stats();
    assert_eq!(stats.batches, 3);
    // Lines 4..9 were enqueued behind a full batch: deferred.
    assert_eq!(stats.deferred, 6);
    // Every line waited roughly the flush window (10s here).
    let wait = stats.shards[0].queue_wait_us.as_ref().unwrap();
    assert_eq!(wait.count, 10);
    assert!(wait.min >= SimDuration::from_secs(10).as_micros());
}

#[test]
fn admission_control_caps_ops_per_shard() {
    let mut gw = Gateway::new(GatewayConfig {
        shards: 1,
        max_ops_per_shard: 2,
        ..GatewayConfig::default()
    });
    for i in 0..2 {
        let (sink, _) = RecordingSink::new();
        gw.register("p", format!("run-{i}"), Box::new(sink))
            .unwrap();
    }
    let (sink, _) = RecordingSink::new();
    let err = gw.register("p", "run-2", Box::new(sink)).unwrap_err();
    assert_eq!(err, GatewayError::AdmissionDenied { shard: 0, limit: 2 });
    assert_eq!(gw.stats().admission_denied, 1);
    assert_eq!(gw.obs().snapshot().counter("gateway.admission.denied"), 1);
}

#[test]
fn lines_never_leak_across_ops_on_one_shard() {
    let mut gw = Gateway::new(single_shard_config(100, 3, OverloadPolicy::Block));
    let (sink_a, handle_a) = RecordingSink::new();
    let (sink_b, handle_b) = RecordingSink::new();
    let a = gw.register("p", "op-a", Box::new(sink_a)).unwrap();
    let b = gw.register("p", "op-b", Box::new(sink_b)).unwrap();
    for i in 0..12 {
        let (op, name) = if i % 3 == 0 { (b, "b") } else { (a, "a") };
        gw.submit(op, SimTime::from_millis(i), &format!("{name} {i}"));
    }
    gw.pump_until_idle();
    let got_a = messages(&handle_a);
    let got_b = messages(&handle_b);
    assert_eq!(got_a.len() + got_b.len(), 12);
    assert!(got_a.iter().all(|m| m.starts_with("a ")), "{got_a:?}");
    assert!(got_b.iter().all(|m| m.starts_with("b ")), "{got_b:?}");
    // Per-op order is preserved even though batches interleave ops.
    let idx = |m: &String| m.split(' ').nth(1).unwrap().parse::<u64>().unwrap();
    assert!(got_a.windows(2).all(|w| idx(&w[0]) < idx(&w[1])));
    assert!(got_b.windows(2).all(|w| idx(&w[0]) < idx(&w[1])));
}

#[test]
fn same_input_produces_byte_identical_stats() {
    let run = || {
        let mut gw = Gateway::new(GatewayConfig {
            shards: 4,
            queue_capacity: 8,
            batch_size: 4,
            flush_interval: SimDuration::from_millis(50),
            overload: OverloadPolicy::ShedOldest,
            ..GatewayConfig::default()
        });
        let ops: Vec<_> = (0..6)
            .map(|i| {
                let (sink, _) = RecordingSink::new();
                gw.register("rolling-upgrade", format!("run-{i}"), Box::new(sink))
                    .unwrap()
            })
            .collect();
        for step in 0..200u64 {
            let op = ops[(step % 6) as usize];
            gw.submit(op, SimTime::from_millis(step * 3), &format!("line {step}"));
        }
        gw.pump_until_idle();
        gw.stats().to_json().to_string()
    };
    assert_eq!(run(), run(), "same interleaved input, same stats bytes");
}

#[test]
fn raw_json_lines_parse_and_plaintext_counts() {
    let mut gw = Gateway::new(single_shard_config(100, 8, OverloadPolicy::Block));
    let (sink, handle) = RecordingSink::new();
    let op = gw.register("p", "i", Box::new(sink)).unwrap();
    let event = LogEvent::new(SimTime::from_millis(7), "asgard.log", "Instance i-1 ready");
    gw.submit(op, SimTime::ZERO, &event.to_json().to_string());
    gw.submit(op, SimTime::ZERO, "plain progress line");
    gw.submit(op, SimTime::ZERO, "{\"@message\": truncated");
    gw.submit(op, SimTime::ZERO, "   ");
    gw.pump_until_idle();
    let stats = gw.stats();
    assert_eq!(stats.parsed_json, 1);
    assert_eq!(stats.parsed_plain, 1);
    assert_eq!(stats.unclassified, 2);
    let got = messages(&handle);
    assert_eq!(got.len(), 4, "unclassified lines still reach the sink");
    assert_eq!(got[0], "Instance i-1 ready");
}
