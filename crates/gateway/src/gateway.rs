//! The gateway service: registration, routing, batched draining and
//! backpressure.
//!
//! A [`Gateway`] owns its own deterministic [`Clock`] and [`Obs`] handle.
//! Operations register with a (process id, instance id) key and a
//! [`DiagnosisSink`] (normally a `pod_core::PodEngine`); the key is hashed
//! onto one of N shards, subject to per-shard admission control. Producers
//! then [`submit`](Gateway::submit) raw lines tagged with their arrival
//! time; lines wait in the shard's bounded queue until the shard's wakeup
//! fires, at which point up to `batch_size` lines are parsed
//! ([`pod_log::parse_line`]), grouped per operation and handed to the
//! sinks — amortizing per-wakeup overhead over the whole batch.
//!
//! All scheduling runs on the gateway clock: wakeups fire in (time, shard
//! id) order, batch service advances the clock by a configurable cost, and
//! queue waits are measured on the same clock. With the same interleaved
//! input the whole service is bit-reproducible.

use std::fmt;

use pod_core::{PodEngine, RunSummary};
use pod_log::{parse_line, Json, LineFormat, LogEvent};
use pod_obs::{
    Counter, Exemplar, FlightConfig, FlightRecorder, Histogram, HistogramSnapshot, LogHistogram,
    Obs, ShardCell,
};
use pod_sim::{Clock, SimDuration, SimTime};

use crate::queue::{BoundedQueue, OverloadPolicy, PushOutcome, QueuedLine};
use crate::shard::shard_for;

/// Histogram bounds for queue-wait and producer-stall times (µs): 100µs to
/// 10s of virtual time.
pub const QUEUE_WAIT_BOUNDS_US: &[u64] = &[
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
];

/// Where a gateway delivers parsed lines: one sink per registered
/// operation. `pod_core::PodEngine` is the production implementation; tests
/// substitute recording sinks.
pub trait DiagnosisSink: fmt::Debug {
    /// Ingests a batch of parsed events, in order.
    fn ingest_batch(&mut self, events: Vec<LogEvent>);

    /// Finalises the operation and returns its summary.
    fn finish(&mut self) -> RunSummary;

    /// Detections raised so far. The gateway polls this after each
    /// delivered batch to stamp its flight recorder; sinks with no
    /// detection concept keep the default.
    fn detections(&self) -> usize {
        0
    }
}

impl DiagnosisSink for PodEngine {
    fn ingest_batch(&mut self, events: Vec<LogEvent>) {
        PodEngine::ingest_batch(self, events);
    }

    fn finish(&mut self) -> RunSummary {
        PodEngine::finish(self)
    }

    fn detections(&self) -> usize {
        PodEngine::detections(self).len()
    }
}

/// Tuning knobs of a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Number of shards (each with its own queue and wakeup). Default 8.
    pub shards: usize,
    /// Bounded queue capacity per shard, in lines. Default 256.
    pub queue_capacity: usize,
    /// Maximum lines drained per wakeup. Default 16.
    pub batch_size: usize,
    /// Delay between a line arriving at an idle shard and the shard's
    /// wakeup (the batching window). Default 20ms.
    pub flush_interval: SimDuration,
    /// Virtual cost of parsing + dispatching one line. Default 150µs.
    pub per_line_cost: SimDuration,
    /// Fixed virtual cost of one wakeup, amortized over the batch.
    /// Default 2ms.
    pub per_batch_cost: SimDuration,
    /// What gives way when a shard queue is full. Default block.
    pub overload: OverloadPolicy,
    /// Admission control: maximum operations per shard. Default 32.
    pub max_ops_per_shard: usize,
    /// Incident flight recorder: periodic metric frames plus an immediate
    /// frame per detection (see [`FlightRecorder`]). `None` disables it.
    /// Default on with [`FlightConfig::default`].
    pub flight: Option<FlightConfig>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            shards: 8,
            queue_capacity: 256,
            batch_size: 16,
            flush_interval: SimDuration::from_millis(20),
            per_line_cost: SimDuration::from_micros(150),
            per_batch_cost: SimDuration::from_millis(2),
            overload: OverloadPolicy::Block,
            max_ops_per_shard: 32,
            flight: Some(FlightConfig::default()),
        }
    }
}

/// Handle to a registered operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The registration index (0-based, in registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors surfaced by the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The target shard is at its per-shard operation limit.
    AdmissionDenied {
        /// The shard that refused the registration.
        shard: usize,
        /// The configured per-shard limit.
        limit: usize,
    },
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::AdmissionDenied { shard, limit } => write!(
                f,
                "admission denied: shard {shard} already serves {limit} operations"
            ),
        }
    }
}

impl std::error::Error for GatewayError {}

/// What happened to one submitted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Enqueued with room to spare.
    Enqueued,
    /// Queue was full; the oldest queued line was shed to admit this one.
    ShedOldest,
    /// Queue was full; this line was shed.
    ShedNewest,
    /// Queue was full; the producer stalled while the shard drained one
    /// batch, then the line was enqueued.
    BlockedThenEnqueued,
}

/// The final report for one operation after [`Gateway::finish`].
#[derive(Debug)]
pub struct OpReport {
    /// The operation handle.
    pub op: OpId,
    /// Process model id the operation registered with.
    pub process_id: String,
    /// Process instance (trace) id the operation registered with.
    pub instance_id: String,
    /// The shard that served the operation.
    pub shard: usize,
    /// Lines delivered to the operation's sink.
    pub lines: u64,
    /// The sink's run summary.
    pub summary: RunSummary,
}

/// Point-in-time statistics for one shard.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Operations registered on this shard.
    pub ops: usize,
    /// Lines drained through this shard.
    pub lines: u64,
    /// Lines shed from this shard's queue.
    pub shed: u64,
    /// Batches drained.
    pub batches: u64,
    /// Queue-wait distribution (µs), when any line was drained.
    pub queue_wait_us: Option<HistogramSnapshot>,
}

/// Point-in-time statistics for the whole gateway.
#[derive(Debug, Clone)]
pub struct GatewayStats {
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
    /// Lines offered via [`Gateway::submit`].
    pub lines_submitted: u64,
    /// Lines drained and delivered to sinks.
    pub lines_processed: u64,
    /// Lines dropped under [`OverloadPolicy::ShedOldest`].
    pub shed_oldest: u64,
    /// Lines dropped under [`OverloadPolicy::ShedNewest`].
    pub shed_newest: u64,
    /// Producer stalls under [`OverloadPolicy::Block`].
    pub blocked: u64,
    /// Lines enqueued behind at least one full batch (they could not make
    /// the next wakeup).
    pub deferred: u64,
    /// Registrations refused by admission control.
    pub admission_denied: u64,
    /// Batches drained across all shards.
    pub batches: u64,
    /// Lines recognized as Logstash JSON.
    pub parsed_json: u64,
    /// Lines recognized as plaintext.
    pub parsed_plain: u64,
    /// Lines that degraded to `unclassified`.
    pub unclassified: u64,
    /// Gateway-clock time elapsed since construction.
    pub virtual_elapsed: SimDuration,
}

impl GatewayStats {
    /// Total lines shed under either shedding policy.
    pub fn total_shed(&self) -> u64 {
        self.shed_oldest + self.shed_newest
    }

    /// Drained lines per second of *virtual* time.
    pub fn lines_per_sec_virtual(&self) -> f64 {
        let secs = self.virtual_elapsed.as_secs_f64();
        if secs > 0.0 {
            self.lines_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// The stats as a JSON object (the core of `BENCH_gateway.json`).
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Number(n as f64);
        let mut o = Json::object();
        o.set("lines_submitted", num(self.lines_submitted));
        o.set("lines_processed", num(self.lines_processed));
        o.set(
            "lines_per_sec_virtual",
            Json::Number(self.lines_per_sec_virtual()),
        );
        o.set("virtual_elapsed_us", num(self.virtual_elapsed.as_micros()));
        o.set("shed_oldest", num(self.shed_oldest));
        o.set("shed_newest", num(self.shed_newest));
        o.set("blocked", num(self.blocked));
        o.set("deferred", num(self.deferred));
        o.set("admission_denied", num(self.admission_denied));
        o.set("batches", num(self.batches));
        let mut parse = Json::object();
        parse.set("json", num(self.parsed_json));
        parse.set("plain", num(self.parsed_plain));
        parse.set("unclassified", num(self.unclassified));
        o.set("parse", parse);
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let mut so = Json::object();
                so.set("shard", num(s.shard as u64));
                so.set("ops", num(s.ops as u64));
                so.set("lines", num(s.lines));
                so.set("shed", num(s.shed));
                so.set("batches", num(s.batches));
                if let Some(h) = &s.queue_wait_us {
                    let mut ho = Json::object();
                    ho.set("count", num(h.count));
                    ho.set("mean", Json::Number(h.mean()));
                    for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                        if let Some(v) = h.quantile(q) {
                            ho.set(key, num(v));
                        }
                    }
                    so.set("queue_wait_us", ho);
                }
                so
            })
            .collect();
        o.set("shards", Json::Array(shards));
        o
    }
}

/// Who rescheduled a shard after a drain: the worker loop (which keeps
/// draining backlog) or a blocked producer (which must not touch the
/// worker's flush window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reschedule {
    Immediate,
    KeepWindow,
}

#[derive(Debug)]
struct OpSlot {
    process_id: String,
    instance_id: String,
    shard: usize,
    lines: u64,
    /// Detection count last seen by the flight recorder.
    detections_seen: usize,
    sink: Box<dyn DiagnosisSink>,
}

#[derive(Debug)]
struct Shard {
    queue: BoundedQueue,
    /// When this shard should next drain a batch; `Some` iff lines are
    /// queued (or a flush window is open).
    wakeup_at: Option<SimTime>,
    ops: usize,
    lines: u64,
    shed: u64,
    batches: u64,
    shed_counter: Counter,
    /// This shard's cache-padded cell of `gateway.lines.processed`.
    processed: ShardCell,
    queue_wait: LogHistogram,
}

/// Per-gateway metric handles, cached so the hot path never locks the
/// registry.
#[derive(Debug)]
struct Metrics {
    submitted: Counter,
    batches: Counter,
    shed_oldest: Counter,
    shed_newest: Counter,
    blocked: Counter,
    deferred: Counter,
    admission_denied: Counter,
    parse_json: Counter,
    parse_plain: Counter,
    parse_unclassified: Counter,
    queue_wait: LogHistogram,
    stall: LogHistogram,
    batch_fill: Histogram,
}

/// A callback the gateway fires when a sink's detection count rises
/// during a drain: the dispatcher hookup point for recovery storms. Runs
/// after the sink ingested the batch (so any engine-side detection hooks
/// already fired) with the operation, the gateway-clock time, and the
/// number of new detections.
struct IncidentHook(Box<dyn FnMut(OpId, SimTime, usize)>);

impl fmt::Debug for IncidentHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("IncidentHook(..)")
    }
}

/// The sharded multi-tenant ingestion gateway. See the module docs.
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    clock: Clock,
    obs: Obs,
    shards: Vec<Shard>,
    ops: Vec<OpSlot>,
    tallies: Tallies,
    metrics: Metrics,
    flight: Option<FlightRecorder>,
    incident_hook: Option<IncidentHook>,
}

/// Plain mirrors of the headline counters (cheap to read for stats).
#[derive(Debug, Default)]
struct Tallies {
    submitted: u64,
    processed: u64,
    batches: u64,
    shed_oldest: u64,
    shed_newest: u64,
    blocked: u64,
    deferred: u64,
    admission_denied: u64,
    parsed_json: u64,
    parsed_plain: u64,
    unclassified: u64,
}

impl Gateway {
    /// Creates a gateway with its own clock and observability handle.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards`, `config.queue_capacity` or
    /// `config.batch_size` is zero.
    pub fn new(config: GatewayConfig) -> Gateway {
        assert!(config.shards > 0, "gateway needs at least one shard");
        assert!(config.batch_size > 0, "batch size must be non-zero");
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        obs.begin_run("gateway");
        let processed = obs.sharded_counter("gateway.lines.processed", config.shards);
        let shards = (0..config.shards)
            .map(|i| Shard {
                queue: BoundedQueue::new(config.queue_capacity),
                wakeup_at: None,
                ops: 0,
                lines: 0,
                shed: 0,
                batches: 0,
                shed_counter: obs.counter(&format!("gateway.shard.{i}.shed")),
                processed: processed.cell(i),
                queue_wait: obs.log_histogram(&format!("gateway.shard.{i}.queue_wait_us")),
            })
            .collect();
        let metrics = Metrics {
            submitted: obs.counter("gateway.lines.submitted"),
            batches: obs.counter("gateway.batches"),
            shed_oldest: obs.counter("gateway.shed.oldest"),
            shed_newest: obs.counter("gateway.shed.newest"),
            blocked: obs.counter("gateway.backpressure.blocked"),
            deferred: obs.counter("gateway.deferred"),
            admission_denied: obs.counter("gateway.admission.denied"),
            parse_json: obs.counter("gateway.parse.json"),
            parse_plain: obs.counter("gateway.parse.plain"),
            parse_unclassified: obs.counter("gateway.parse.unclassified"),
            queue_wait: obs.log_histogram("gateway.queue_wait_us"),
            stall: obs.log_histogram("gateway.backpressure.stall_us"),
            batch_fill: obs.histogram("gateway.batch_fill", &[1, 2, 4, 8, 16, 32, 64, 128]),
        };
        let flight = config
            .flight
            .map(|fc| FlightRecorder::new(clock.clone(), obs.registry().clone(), fc));
        Gateway {
            config,
            clock,
            obs,
            shards,
            ops: Vec::new(),
            tallies: Tallies::default(),
            metrics,
            flight,
            incident_hook: None,
        }
    }

    /// Installs the incident hook: called whenever a sink's detection
    /// count rises during a drain, with the operation, the gateway-clock
    /// time, and the number of new detections. This is where a shared
    /// recovery dispatcher observes incidents on the gateway timeline
    /// (e.g. to refresh its in-flight/backlog gauges before the flight
    /// recorder frames them). Replaces any previous hook.
    pub fn set_incident_hook(&mut self, hook: impl FnMut(OpId, SimTime, usize) + 'static) {
        self.incident_hook = Some(IncidentHook(Box::new(hook)));
    }

    /// The gateway's observability handle (metrics live here).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The incident flight recorder, when enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The gateway's deterministic clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shard a key would route to.
    pub fn route(&self, process_id: &str, instance_id: &str) -> usize {
        shard_for(process_id, instance_id, self.config.shards)
    }

    /// Registers an operation, subject to per-shard admission control.
    pub fn register(
        &mut self,
        process_id: impl Into<String>,
        instance_id: impl Into<String>,
        sink: Box<dyn DiagnosisSink>,
    ) -> Result<OpId, GatewayError> {
        let process_id = process_id.into();
        let instance_id = instance_id.into();
        let shard = self.route(&process_id, &instance_id);
        if self.shards[shard].ops >= self.config.max_ops_per_shard {
            self.tallies.admission_denied += 1;
            self.metrics.admission_denied.incr();
            return Err(GatewayError::AdmissionDenied {
                shard,
                limit: self.config.max_ops_per_shard,
            });
        }
        self.shards[shard].ops += 1;
        let id = OpId(self.ops.len());
        self.ops.push(OpSlot {
            process_id,
            instance_id,
            shard,
            lines: 0,
            detections_seen: 0,
            sink,
        });
        Ok(id)
    }

    /// Submits one raw line for `op`, arriving at `arrival` gateway time.
    ///
    /// Arrival times must be non-decreasing across calls (the clock never
    /// goes backwards; an earlier arrival is treated as "now"). Due shard
    /// wakeups fire before the line is enqueued, so a slow producer sees
    /// the world drained up to its own arrival time.
    pub fn submit(&mut self, op: OpId, arrival: SimTime, raw: &str) -> SubmitOutcome {
        self.clock.advance_to(arrival);
        self.run_due();
        self.tallies.submitted += 1;
        self.metrics.submitted.incr();
        let shard_idx = self.ops[op.0].shard;
        if self.shards[shard_idx].queue.len() >= self.config.batch_size {
            self.tallies.deferred += 1;
            self.metrics.deferred.incr();
        }
        let mut outcome = SubmitOutcome::Enqueued;
        let line = QueuedLine {
            op,
            raw: raw.to_string(),
            enqueued_at: self.clock.now(),
        };
        match self.shards[shard_idx]
            .queue
            .offer(line, self.config.overload)
        {
            PushOutcome::Enqueued => {}
            PushOutcome::ShedOldest(_dropped) => {
                self.tallies.shed_oldest += 1;
                self.metrics.shed_oldest.incr();
                self.shards[shard_idx].shed += 1;
                self.shards[shard_idx].shed_counter.incr();
                outcome = SubmitOutcome::ShedOldest;
            }
            PushOutcome::ShedNewest(_dropped) => {
                self.tallies.shed_newest += 1;
                self.metrics.shed_newest.incr();
                self.shards[shard_idx].shed += 1;
                self.shards[shard_idx].shed_counter.incr();
                outcome = SubmitOutcome::ShedNewest;
            }
            PushOutcome::WouldBlock(_line) => {
                // Backpressure: stall the producer while the shard drains
                // one batch synchronously, then enqueue.
                self.tallies.blocked += 1;
                self.metrics.blocked.incr();
                let stall_start = self.clock.now();
                self.drain_one_batch(shard_idx, Reschedule::KeepWindow);
                self.metrics
                    .stall
                    .record(self.clock.now().duration_since(stall_start).as_micros());
                let retry = QueuedLine {
                    op,
                    raw: raw.to_string(),
                    enqueued_at: self.clock.now(),
                };
                match self.shards[shard_idx]
                    .queue
                    .offer(retry, OverloadPolicy::Block)
                {
                    PushOutcome::Enqueued => {}
                    _ => unreachable!("queue has room after draining a batch"),
                }
                outcome = SubmitOutcome::BlockedThenEnqueued;
            }
        }
        if outcome != SubmitOutcome::ShedNewest {
            self.schedule_wakeup(shard_idx);
        }
        outcome
    }

    /// Opens the shard's flush window after an enqueue: the worker wakes
    /// one flush interval after the first line lands in an idle queue.
    fn schedule_wakeup(&mut self, shard_idx: usize) {
        let now = self.clock.now();
        let shard = &mut self.shards[shard_idx];
        if shard.wakeup_at.is_none() {
            shard.wakeup_at = Some(now + self.config.flush_interval);
        }
    }

    /// Fires every due wakeup, earliest (time, shard) first. Draining
    /// advances the clock, which can make further wakeups due.
    fn run_due(&mut self) {
        loop {
            let now = self.clock.now();
            let due = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.wakeup_at.filter(|w| *w <= now).map(|w| (w, i)))
                .min();
            match due {
                Some((_, idx)) => {
                    self.drain_one_batch(idx, Reschedule::Immediate);
                }
                None => break,
            }
        }
    }

    /// Drains up to one batch from `shard_idx`, charging the batch cost to
    /// the gateway clock and delivering parsed lines to the sinks.
    fn drain_one_batch(&mut self, shard_idx: usize, reschedule: Reschedule) {
        let batch = self.shards[shard_idx]
            .queue
            .pop_batch(self.config.batch_size);
        if batch.is_empty() {
            self.shards[shard_idx].wakeup_at = None;
            return;
        }
        let service_start = self.clock.now();
        self.clock
            .advance(self.config.per_batch_cost + self.config.per_line_cost * batch.len() as u64);
        self.metrics.batch_fill.record(batch.len() as u64);
        self.metrics.batches.incr();
        self.tallies.batches += 1;

        // Parse at the edge, then group per operation preserving each
        // operation's line order (first-appearance order across groups).
        // Each group is handed to its sink as one batch, so the whole
        // drain flows through the diagnosis engine's batch-aware path
        // (`Pipeline::push_batch`): per-line setup — step-limit sampling,
        // causal-ring resolution, timer polling — is paid once per group.
        let batch_len = batch.len();
        let mut groups: Vec<(usize, Vec<LogEvent>)> = Vec::with_capacity(4);
        // Parse-format tallies accumulate in locals and flush once per
        // batch: three counter bumps per drain instead of one per line.
        let (mut n_json, mut n_plain, mut n_unclassified) = (0u64, 0u64, 0u64);
        for line in batch {
            let wait = service_start.duration_since(line.enqueued_at).as_micros();
            self.shards[shard_idx].queue_wait.record(wait);
            // Tail waits carry an exemplar naming the operation and shard,
            // so a p99 read from the histogram links back to the run (and
            // its causal chain) that actually waited that long. The label
            // block only runs for reservoir-worthy values.
            let op_slot = &self.ops[line.op.0];
            self.metrics.queue_wait.record_with(wait, || Exemplar {
                value: wait,
                at: service_start,
                event: None,
                labels: vec![
                    ("op".to_string(), op_slot.instance_id.clone()),
                    ("shard".to_string(), shard_idx.to_string()),
                ],
            });
            let parsed = parse_line(&line.raw, line.enqueued_at);
            match parsed.format {
                LineFormat::Json => n_json += 1,
                LineFormat::Plain => n_plain += 1,
                LineFormat::Unclassified => n_unclassified += 1,
            }
            match groups.iter_mut().find(|(op, _)| *op == line.op.0) {
                Some((_, events)) => events.push(parsed.event),
                None => {
                    // Single-op batches are the common case; size the first
                    // group for the whole batch so it never reallocates.
                    let mut events = Vec::with_capacity(if groups.is_empty() {
                        batch_len
                    } else {
                        batch_len / 2
                    });
                    events.push(parsed.event);
                    groups.push((line.op.0, events));
                }
            }
        }
        if n_json > 0 {
            self.tallies.parsed_json += n_json;
            self.metrics.parse_json.add(n_json);
        }
        if n_plain > 0 {
            self.tallies.parsed_plain += n_plain;
            self.metrics.parse_plain.add(n_plain);
        }
        if n_unclassified > 0 {
            self.tallies.unclassified += n_unclassified;
            self.metrics.parse_unclassified.add(n_unclassified);
        }
        for (op, events) in groups {
            let n = events.len() as u64;
            self.ops[op].lines += n;
            self.shards[shard_idx].lines += n;
            self.tallies.processed += n;
            self.shards[shard_idx].processed.add(n);
            self.ops[op].sink.ingest_batch(events);
            if self.flight.is_some() || self.incident_hook.is_some() {
                let detections = self.ops[op].sink.detections();
                let seen = self.ops[op].detections_seen;
                if detections > seen {
                    self.ops[op].detections_seen = detections;
                    if let Some(IncidentHook(hook)) = &mut self.incident_hook {
                        hook(OpId(op), self.clock.now(), detections - seen);
                    }
                    if let Some(flight) = &self.flight {
                        flight.mark_incident(&format!("{} detection", self.ops[op].instance_id));
                    }
                }
            }
        }
        if let Some(flight) = &self.flight {
            flight.tick();
        }

        let shard = &mut self.shards[shard_idx];
        shard.batches += 1;
        match reschedule {
            Reschedule::Immediate => {
                // The shard worker keeps draining its backlog batch by
                // batch before going back to sleep.
                shard.wakeup_at = if shard.queue.is_empty() {
                    None
                } else {
                    Some(self.clock.now())
                };
            }
            Reschedule::KeepWindow => {
                // A blocked producer stole one batch from the worker; the
                // worker's own flush window stays as scheduled.
            }
        }
    }

    /// Drains every queue to empty, advancing the clock through pending
    /// flush windows.
    pub fn pump_until_idle(&mut self) {
        loop {
            self.run_due();
            let next = self
                .shards
                .iter()
                .filter(|s| !s.queue.is_empty())
                .filter_map(|s| s.wakeup_at)
                .min();
            match next {
                Some(t) => {
                    self.clock.advance_to(t);
                }
                None => break,
            }
        }
    }

    /// Drains everything, finalises every sink and returns per-operation
    /// reports in registration order.
    pub fn finish(&mut self) -> Vec<OpReport> {
        self.pump_until_idle();
        self.ops
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| OpReport {
                op: OpId(i),
                process_id: slot.process_id.clone(),
                instance_id: slot.instance_id.clone(),
                shard: slot.shard,
                lines: slot.lines,
                summary: slot.sink.finish(),
            })
            .collect()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> GatewayStats {
        let snapshot = self.obs.snapshot();
        GatewayStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardStats {
                    shard: i,
                    ops: s.ops,
                    lines: s.lines,
                    shed: s.shed,
                    batches: s.batches,
                    queue_wait_us: snapshot
                        .histogram(&format!("gateway.shard.{i}.queue_wait_us"))
                        .filter(|h| h.count > 0)
                        .cloned(),
                })
                .collect(),
            lines_submitted: self.tallies.submitted,
            lines_processed: self.tallies.processed,
            shed_oldest: self.tallies.shed_oldest,
            shed_newest: self.tallies.shed_newest,
            blocked: self.tallies.blocked,
            deferred: self.tallies.deferred,
            admission_denied: self.tallies.admission_denied,
            batches: self.tallies.batches,
            parsed_json: self.tallies.parsed_json,
            parsed_plain: self.tallies.parsed_plain,
            unclassified: self.tallies.unclassified,
            virtual_elapsed: self.clock.now().duration_since(SimTime::ZERO),
        }
    }
}
