//! The bounded per-shard work queue and its overload policies.
//!
//! Each shard owns one [`BoundedQueue`] of raw lines. When the queue is
//! full the configured [`OverloadPolicy`] decides what gives way: the
//! producer ([`OverloadPolicy::Block`]), the oldest queued line
//! ([`OverloadPolicy::ShedOldest`]) or the incoming line
//! ([`OverloadPolicy::ShedNewest`]). The queue itself never drops silently —
//! every outcome is reported to the caller so the gateway can count it.

use std::collections::VecDeque;
use std::fmt;

use pod_sim::SimTime;

use crate::gateway::OpId;

/// What to do when a shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Apply backpressure: the producer stalls while the shard drains one
    /// batch synchronously, then the line is enqueued. No line is lost.
    #[default]
    Block,
    /// Drop the oldest queued line to make room (keep the freshest data).
    ShedOldest,
    /// Drop the incoming line (keep the oldest, preserve history).
    ShedNewest,
}

impl OverloadPolicy {
    /// Stable lowercase label, used in metrics, reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedOldest => "shed-oldest",
            OverloadPolicy::ShedNewest => "shed-newest",
        }
    }
}

impl fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(OverloadPolicy::Block),
            "shed-oldest" => Ok(OverloadPolicy::ShedOldest),
            "shed-newest" => Ok(OverloadPolicy::ShedNewest),
            other => Err(format!(
                "unknown overload policy {other:?} (expected block, shed-oldest or shed-newest)"
            )),
        }
    }
}

/// One raw line waiting in a shard queue.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedLine {
    /// The operation the line belongs to.
    pub op: OpId,
    /// The raw wire text.
    pub raw: String,
    /// Gateway-clock time at which the line was accepted.
    pub enqueued_at: SimTime,
}

/// Result of offering a line to a full-capacity-aware queue.
#[derive(Debug, Clone, PartialEq)]
pub enum PushOutcome {
    /// The line was enqueued; the queue had room.
    Enqueued,
    /// The queue was full; the *oldest* line was dropped to admit this one.
    ShedOldest(QueuedLine),
    /// The queue was full; the *incoming* line was dropped.
    ShedNewest(QueuedLine),
    /// The queue was full and the policy is [`OverloadPolicy::Block`]: the
    /// line is handed back so the caller can drain a batch and re-offer.
    WouldBlock(QueuedLine),
}

/// A bounded FIFO of raw lines.
#[derive(Debug)]
pub struct BoundedQueue {
    capacity: usize,
    items: VecDeque<QueuedLine>,
}

impl BoundedQueue {
    /// Creates an empty queue holding at most `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> BoundedQueue {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Lines currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no lines.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Offers a line under `policy`. Never drops silently: shed lines are
    /// returned in the outcome so the caller can count them.
    pub fn offer(&mut self, line: QueuedLine, policy: OverloadPolicy) -> PushOutcome {
        if !self.is_full() {
            self.items.push_back(line);
            return PushOutcome::Enqueued;
        }
        match policy {
            OverloadPolicy::Block => PushOutcome::WouldBlock(line),
            OverloadPolicy::ShedOldest => {
                let dropped = self.items.pop_front().expect("full queue is non-empty");
                self.items.push_back(line);
                PushOutcome::ShedOldest(dropped)
            }
            OverloadPolicy::ShedNewest => PushOutcome::ShedNewest(line),
        }
    }

    /// Pops up to `max` lines from the front, preserving order.
    pub fn pop_batch(&mut self, max: usize) -> Vec<QueuedLine> {
        let n = max.min(self.items.len());
        self.items.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(op: usize, raw: &str) -> QueuedLine {
        QueuedLine {
            op: OpId(op),
            raw: raw.to_string(),
            enqueued_at: SimTime::ZERO,
        }
    }

    fn fill(policy: OverloadPolicy) -> (BoundedQueue, Vec<PushOutcome>) {
        let mut q = BoundedQueue::new(4);
        let outcomes = (0..10)
            .map(|i| q.offer(line(0, &format!("l{i}")), policy))
            .collect();
        (q, outcomes)
    }

    #[test]
    fn shed_oldest_drops_six_and_keeps_newest_four() {
        let (mut q, outcomes) = fill(OverloadPolicy::ShedOldest);
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, PushOutcome::ShedOldest(_)))
            .count();
        assert_eq!(shed, 6, "10 offers into capacity 4 shed exactly 6");
        let kept: Vec<String> = q.pop_batch(10).into_iter().map(|l| l.raw).collect();
        assert_eq!(kept, ["l6", "l7", "l8", "l9"]);
    }

    #[test]
    fn shed_newest_drops_six_and_keeps_oldest_four() {
        let (mut q, outcomes) = fill(OverloadPolicy::ShedNewest);
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, PushOutcome::ShedNewest(_)))
            .count();
        assert_eq!(shed, 6);
        let kept: Vec<String> = q.pop_batch(10).into_iter().map(|l| l.raw).collect();
        assert_eq!(kept, ["l0", "l1", "l2", "l3"]);
    }

    #[test]
    fn block_hands_the_line_back_without_dropping() {
        let (q, outcomes) = fill(OverloadPolicy::Block);
        let blocked = outcomes
            .iter()
            .filter(|o| matches!(o, PushOutcome::WouldBlock(_)))
            .count();
        assert_eq!(blocked, 6);
        assert_eq!(q.len(), 4, "queue keeps the first four, loses nothing");
    }

    #[test]
    fn pop_batch_preserves_fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.offer(line(i, &format!("l{i}")), OverloadPolicy::Block);
        }
        let batch = q.pop_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].raw, "l0");
        assert_eq!(batch[2].raw, "l2");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn policy_labels_parse_back() {
        for p in [
            OverloadPolicy::Block,
            OverloadPolicy::ShedOldest,
            OverloadPolicy::ShedNewest,
        ] {
            assert_eq!(p.label().parse::<OverloadPolicy>(), Ok(p));
        }
        assert!("drop-everything".parse::<OverloadPolicy>().is_err());
    }
}
