//! Shard routing: a stable hash from (process id, instance id) to a shard.
//!
//! Routing must be *deterministic* (the same key always lands on the same
//! shard, across runs and across gateway instances) and *stable* (keys only
//! move when the shard count changes). A plain FNV-1a hash over the two id
//! strings — with a separator byte so `("ab", "c")` and `("a", "bc")` hash
//! differently — modulo the shard count gives both properties without any
//! per-process randomization, unlike `std`'s `DefaultHasher`.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a hash of the routing key.
pub fn route_hash(process_id: &str, instance_id: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for byte in process_id
        .as_bytes()
        .iter()
        .chain(&[0xFFu8])
        .chain(instance_id.as_bytes())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The shard index for an operation key, in `0..shards`.
///
/// # Panics
///
/// Panics when `shards` is zero.
///
/// # Examples
///
/// ```
/// use pod_gateway::shard_for;
///
/// let s = shard_for("rolling-upgrade", "run-17", 8);
/// assert!(s < 8);
/// assert_eq!(s, shard_for("rolling-upgrade", "run-17", 8));
/// ```
pub fn shard_for(process_id: &str, instance_id: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be non-zero");
    (route_hash(process_id, instance_id) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic() {
        for i in 0..64 {
            let id = format!("run-{i}");
            assert_eq!(
                shard_for("rolling-upgrade", &id, 8),
                shard_for("rolling-upgrade", &id, 8)
            );
        }
    }

    #[test]
    fn separator_prevents_key_gluing() {
        assert_ne!(route_hash("ab", "c"), route_hash("a", "bc"));
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        let mut counts = [0usize; 8];
        for i in 0..800 {
            counts[shard_for("rolling-upgrade", &format!("run-{i}"), 8)] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!((50..=150).contains(&n), "shard {shard} got {n} of 800 keys");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_panics() {
        shard_for("p", "i", 0);
    }
}
