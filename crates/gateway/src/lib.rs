//! pod-gateway: a sharded, multi-tenant online diagnosis service.
//!
//! The paper's online half (Figure 1) monitors *one* sporadic operation per
//! call stack. This crate turns that into a service: raw log lines from
//! many concurrent operations enter one [`Gateway`], are routed by a stable
//! (process id, instance id) hash onto shards ([`shard_for`]), wait in
//! bounded per-shard queues ([`BoundedQueue`]) and drain in batches into
//! per-operation `pod_core` engines (behind the [`DiagnosisSink`] trait).
//!
//! Three properties matter at scale and all three are explicit here:
//!
//! * **Backpressure** — queues are bounded; an [`OverloadPolicy`] decides
//!   whether the producer blocks or which line is shed, and every shed or
//!   deferred line is counted in `pod-obs` metrics.
//! * **Batching** — shards wake up per flush interval (or full batch) and
//!   amortize per-wakeup cost over up to `batch_size` lines.
//! * **Determinism** — the whole service runs on one `pod_sim` clock;
//!   wakeups fire in (time, shard) order, so the same interleaved input
//!   always produces byte-identical detections.
//!
//! The gateway also owns **repair admission**: the [`AdmissionGate`] is a
//! deterministic virtual-time lane arbiter that bounds how many repairs
//! (or other expensive backend-touching tasks) run concurrently against
//! the shared cloud API, deferring anything that would queue past its wait
//! cap to a quieter fallback path. [`Gateway::set_incident_hook`] is the
//! matching dispatcher hookup: it fires on the gateway timeline whenever a
//! sink raises new detections.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod gateway;
mod queue;
mod shard;

pub use admission::{Admission, AdmissionGate};
pub use gateway::{
    DiagnosisSink, Gateway, GatewayConfig, GatewayError, GatewayStats, OpId, OpReport, ShardStats,
    SubmitOutcome, QUEUE_WAIT_BOUNDS_US,
};
pub use queue::{BoundedQueue, OverloadPolicy, PushOutcome, QueuedLine};
pub use shard::{route_hash, shard_for};
