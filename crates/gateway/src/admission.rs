//! The repair admission gate: a deterministic virtual-time lane arbiter
//! for bounded concurrent work against one shared backend.
//!
//! The gateway bounds how many repairs (or any other expensive
//! backend-touching tasks) may run concurrently: the gate models `lanes`
//! parallel service lanes, each with a busy-until time on the shared
//! clock. A request is granted the lane that frees earliest — possibly
//! after a queue wait — unless that wait exceeds the configured cap, in
//! which case the request is *deferred*: the caller must fall back to a
//! later, quieter path (the recovery storm's shed-to-sweep fallback), so
//! nothing is ever dropped, only delayed.
//!
//! Everything is pure arithmetic on [`SimTime`]: same request sequence ⇒
//! same grants, waits and in-flight counts, which is what keeps recovery
//! storms byte-deterministic.

use pod_sim::{SimDuration, SimTime};

/// The arbiter's answer to one admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted on `lane`, starting at `start` (now + `waited`).
    Granted {
        /// The lane the work was granted; pass it back to
        /// [`AdmissionGate::occupy`] when the work's duration is known.
        lane: usize,
        /// When the lane is free for this work (≥ the request time).
        start: SimTime,
        /// Queue wait until `start` (zero when a lane was idle).
        waited: SimDuration,
        /// Lanes busy at `start`, counting this work: the concurrency
        /// level the shared backend actually sees.
        in_flight: usize,
    },
    /// Every lane is busy beyond the wait cap; the caller must take its
    /// fallback path.
    Deferred {
        /// When the earliest lane would have freed up.
        earliest_start: SimTime,
    },
}

/// A deterministic virtual-time admission gate over a fixed lane pool.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    /// Busy-until time per lane.
    lanes: Vec<SimTime>,
    max_wait: SimDuration,
    admitted: u64,
    deferred: u64,
}

impl AdmissionGate {
    /// A gate with `lanes` concurrent lanes; requests that would wait
    /// longer than `max_wait` for a lane are deferred.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn new(lanes: usize, max_wait: SimDuration) -> AdmissionGate {
        assert!(lanes > 0, "admission gate needs at least one lane");
        AdmissionGate {
            lanes: vec![SimTime::ZERO; lanes],
            max_wait,
            admitted: 0,
            deferred: 0,
        }
    }

    /// Requests admission at `now`. Ties between equally free lanes break
    /// to the lowest index, so the grant sequence is a pure function of
    /// the request sequence.
    pub fn request(&mut self, now: SimTime) -> Admission {
        let (lane, free_at) = self
            .lanes
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, at)| (at, i))
            .expect("gate has at least one lane");
        let start = free_at.max(now);
        let waited = start.duration_since(now);
        if waited > self.max_wait {
            self.deferred += 1;
            return Admission::Deferred {
                earliest_start: start,
            };
        }
        let in_flight = self.lanes.iter().filter(|&&busy| busy > start).count() + 1;
        self.admitted += 1;
        Admission::Granted {
            lane,
            start,
            waited,
            in_flight,
        }
    }

    /// Marks `lane` busy until `until` (monotone: an earlier end never
    /// shortens an existing occupation). Call once per grant, after the
    /// admitted work's duration is known.
    pub fn occupy(&mut self, lane: usize, until: SimTime) {
        let busy = &mut self.lanes[lane];
        *busy = (*busy).max(until);
    }

    /// Lanes busy at `at`.
    pub fn in_flight(&self, at: SimTime) -> usize {
        self.lanes.iter().filter(|&&busy| busy > at).count()
    }

    /// Total lanes in the pool.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Requests granted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests deferred so far.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn grants_idle_lane_immediately() {
        let mut gate = AdmissionGate::new(2, SimDuration::from_secs(10));
        match gate.request(t(5)) {
            Admission::Granted {
                lane,
                start,
                waited,
                in_flight,
            } => {
                assert_eq!(lane, 0);
                assert_eq!(start, t(5));
                assert_eq!(waited, SimDuration::ZERO);
                assert_eq!(in_flight, 1);
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(gate.admitted(), 1);
    }

    #[test]
    fn queues_on_earliest_lane_and_counts_overlap() {
        let mut gate = AdmissionGate::new(2, SimDuration::from_secs(100));
        gate.occupy(0, t(30));
        gate.occupy(1, t(10));
        // Lane 1 frees first; the work queues behind it and overlaps the
        // still-busy lane 0.
        match gate.request(t(0)) {
            Admission::Granted {
                lane,
                start,
                waited,
                in_flight,
            } => {
                assert_eq!(lane, 1);
                assert_eq!(start, t(10));
                assert_eq!(waited, SimDuration::from_secs(10));
                assert_eq!(in_flight, 2, "overlaps lane 0 (busy until 30s)");
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn defers_past_the_wait_cap_without_mutating_lanes() {
        let mut gate = AdmissionGate::new(1, SimDuration::from_secs(5));
        gate.occupy(0, t(60));
        match gate.request(t(0)) {
            Admission::Deferred { earliest_start } => assert_eq!(earliest_start, t(60)),
            other => panic!("expected deferral, got {other:?}"),
        }
        assert_eq!(gate.deferred(), 1);
        // The deferral reserved nothing: a later request (within the cap)
        // still gets the lane at 60s.
        match gate.request(t(58)) {
            Admission::Granted { start, .. } => assert_eq!(start, t(60)),
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn occupy_is_monotone() {
        let mut gate = AdmissionGate::new(1, SimDuration::ZERO);
        gate.occupy(0, t(20));
        gate.occupy(0, t(10));
        assert_eq!(gate.in_flight(t(15)), 1);
        assert_eq!(gate.in_flight(t(20)), 0);
    }

    #[test]
    fn same_request_sequence_same_grants() {
        let drive = || {
            let mut gate = AdmissionGate::new(3, SimDuration::from_secs(30));
            let mut trace = Vec::new();
            for i in 0..20u64 {
                let now = t(i * 3);
                let a = gate.request(now);
                if let Admission::Granted { lane, start, .. } = a {
                    gate.occupy(lane, start + SimDuration::from_secs(25));
                }
                trace.push(format!("{a:?}"));
            }
            trace
        };
        assert_eq!(drive(), drive());
    }
}
