//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`,
//! covering the subset the workspace uses: `unbounded`, `Sender::send`,
//! `Receiver::{recv, recv_timeout, try_recv, try_iter, iter}`.

/// Multi-producer channels backed by `std::sync::mpsc`.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over the messages currently queued, without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        /// Blocking iterator that ends when every sender disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_try_iter() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
