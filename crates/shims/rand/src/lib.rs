//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen,
//! gen_range, gen_bool}` over integer/float ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — fast, well distributed, and
//! fully deterministic under a seed (the simulator's only requirement;
//! bit-compatibility with upstream `StdRng` is *not* promised).

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random `u64`s; the base trait under [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from via [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
impl_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = r.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let unit: f64 = r.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            if f < 0.1 {
                lo = true;
            }
            if f > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi);
    }
}
