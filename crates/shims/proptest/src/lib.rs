//! Offline stand-in for `proptest`.
//!
//! The workspace builds hermetically (no crates.io), so this crate
//! re-implements the slice of the proptest API the test suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `boxed` /
//! `prop_recursive`, range and regex-pattern strategies, the
//! `prop::{collection, bool, sample, option}` modules, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macros.
//!
//! Differences from upstream are deliberate and small: cases are
//! generated from a deterministic per-test seed (hash of the test
//! name), and failing cases are reported by the normal panic message
//! rather than shrunk. Determinism makes failures reproducible without
//! a persistence file.

pub mod test_runner {
    //! Deterministic case generation: the RNG and run configuration.

    /// Splitmix64 generator used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a per-test seed from the test's name (FNV-1a).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    use crate::pattern;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the strategy type; the result is cheaply cloneable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive values up to `depth` levels deep: `recurse`
        /// receives a strategy for shallower values and returns one for a
        /// value one level deeper. (`_desired_size` / `_expected_branch`
        /// are accepted for upstream signature compatibility.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let shallower = Union::new(levels.clone()).boxed();
                levels.push(recurse(shallower).boxed());
            }
            Union::new(levels).boxed()
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> BoxedStrategy<V> {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between several strategies (backs [`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Union<V> {
            Union {
                options: self.options.clone(),
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % width) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128 % width) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            pattern::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type".

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning a broad magnitude range.
            let mag = rng.unit_f64() * 1.0e12;
            if rng.next_u64() & 1 == 0 {
                mag
            } else {
                -mag
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

mod pattern {
    //! Generator for the `"[class]{m,n}"` regex-pattern subset used as
    //! string strategies.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut negated = false;
        let mut members: Vec<char> = Vec::new();
        if chars.peek() == Some(&'^') {
            negated = true;
            chars.next();
        }
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().unwrap_or('\\');
                    let lit = match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    members.push(lit);
                    prev = Some(lit);
                }
                '-' => {
                    // Range if bracketed by members; literal otherwise.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            let (lo, hi) = (lo as u32, hi as u32);
                            for u in lo..=hi {
                                if let Some(ch) = char::from_u32(u) {
                                    members.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            members.push('-');
                            prev = Some('-');
                        }
                    }
                }
                other => {
                    members.push(other);
                    prev = Some(other);
                }
            }
        }
        if negated {
            let printable: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
            members = printable
                .into_iter()
                .filter(|c| !members.contains(c))
                .collect();
        }
        if members.is_empty() {
            members.push('?');
        }
        members
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<(usize, usize)> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, "")) => {
                        let lo = lo.trim().parse().unwrap_or(0);
                        (lo, lo + 8)
                    }
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(0),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                Some((lo, hi.max(lo)))
            }
            Some('*') => {
                chars.next();
                Some((0, 8))
            }
            Some('+') => {
                chars.next();
                Some((1, 8))
            }
            Some('?') => {
                chars.next();
                Some((0, 1))
            }
            _ => None,
        }
    }

    /// Generates a string matching `pattern` (class/literal + repetition
    /// subset of regex syntax).
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '.' => Atom::Class((b' '..=b'~').map(|b| b as char).collect()),
                '\\' => {
                    let e = chars.next().unwrap_or('\\');
                    Atom::Literal(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    })
                }
                other => Atom::Literal(other),
            };
            let (lo, hi) = parse_repeat(&mut chars).unwrap_or((1, 1));
            atoms.push((atom, lo, hi));
        }
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = rng.usize_between(*lo, *hi);
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize])
                    }
                }
            }
        }
        out
    }
}

pub mod prop {
    //! The `prop::*` namespace (`collection`, `bool`, `sample`, `option`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive size bounds for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy for `Vec`s of values drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A `Vec` strategy with sizes drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_between(self.size.lo, self.size.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding either boolean with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Any boolean.
        pub const ANY: BoolAny = BoolAny;
    }

    pub mod sample {
        //! Sampling from explicit value lists.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy drawing uniformly from a fixed set of options.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Draws uniformly from `options`; must be non-empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of zero options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Option<S::Value>` (≈75% `Some`).
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S>(S);

        /// Some/None values over `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a property-condition; supports an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options = vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ];
        $crate::strategy::Union::new(options)
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    // Internal: no functions left.
    (@run ($cfg:expr)) => {};
    // Internal: one function, then recurse on the rest.
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strategy), &mut rng,
                    );
                )+
                $body
            }
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry with a block-level config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry without configuration.
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generator_respects_class_and_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = crate::pattern::generate("[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "bad len {}", s.len());
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad {s:?}");
        }
    }

    #[test]
    fn escaped_newline_class_generates_newlines_eventually() {
        let mut rng = crate::test_runner::TestRng::from_name("newline");
        let mut saw_newline = false;
        for _ in 0..200 {
            let s = crate::pattern::generate("[ -~\\n]{0,40}", &mut rng);
            saw_newline |= s.contains('\n');
        }
        assert!(saw_newline);
    }

    proptest! {
        #[test]
        fn union_and_map_compose(
            v in prop_oneof![
                (0u64..10).prop_map(|n| n as i64),
                Just(-1i64),
            ],
            flags in prop::collection::vec(prop::bool::ANY, 1..10),
        ) {
            prop_assert!((-1..10).contains(&v));
            prop_assert!(!flags.is_empty() && flags.len() < 10);
        }

        #[test]
        fn recursive_strategies_terminate(
            n in (0u64..5).prop_recursive(3, 8, 2, |inner| {
                (inner, 0u64..5).prop_map(|(a, b)| a + b)
            }),
        ) {
            prop_assert!(n <= 20);
        }
    }
}
