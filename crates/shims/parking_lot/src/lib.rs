//! Offline stand-in for `parking_lot`.
//!
//! This workspace builds in a hermetic container with no access to
//! crates.io, so the handful of external dependencies are provided as
//! local shims with the same API subset the workspace actually uses.
//!
//! Semantics match `parking_lot` where it differs from `std::sync`:
//! locks do not poison — a panic while holding the guard leaves the lock
//! usable, which the simulator relies on in multi-threaded tests.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive, `parking_lot`-style: `lock()` never
/// returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock, `parking_lot`-style: no poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
