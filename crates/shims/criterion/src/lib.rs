//! Offline stand-in for `criterion`.
//!
//! Implements the harness subset the workspace's benches use
//! (`bench_function`, `iter`, `iter_batched`, `benchmark_group`,
//! `criterion_group!` / `criterion_main!`, `black_box`) with a simple
//! calibrated timer: each bench is warmed up, the per-sample iteration
//! count is chosen so a sample takes ~2 ms, and the minimum / median /
//! maximum of the per-iteration times across samples are printed in a
//! criterion-like `time: [lo mid hi]` line. No statistics files are
//! written; results are for relative, same-machine comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; accepted for API
/// compatibility (the shim times each routine call individually, so the
/// variants behave identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Target wall-clock budget for one sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(2);
/// Hard cap on the measured samples per bench.
const MAX_SAMPLES: usize = 60;

/// The bench harness handle passed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benches with a shared name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (upstream flushes reports here; no-op).
    pub fn finish(self) {}
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration time of each sample, in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size: sample_size.clamp(2, MAX_SAMPLES),
            samples: Vec::new(),
        }
    }

    /// Times `routine` back to back.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up + calibration: how many iterations fit the budget?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = calibrate_iters(once);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = calibrate_iters(once);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                let mut total = Duration::ZERO;
                for input in inputs {
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                }
                total.as_nanos() as f64 / iters as f64
            })
            .collect();
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no measurement)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let lo = sorted[0];
        let mid = sorted[sorted.len() / 2];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(mid),
            fmt_ns(hi)
        );
    }
}

fn calibrate_iters(once: Duration) -> u64 {
    (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("shim/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
