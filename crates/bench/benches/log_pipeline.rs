//! The local log processor: per-line cost of the noise filter, annotator
//! and trigger stages, plus Logstash-style JSON serialization.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pod_log::{ImportantLineForwarder, Json, LogEvent, NoiseFilter, Pipeline, ProcessAnnotator};
use pod_orchestrator::process_def;
use pod_regex::RegexSet;
use pod_sim::SimTime;

fn pipeline() -> Pipeline {
    let mut p = Pipeline::new();
    p.add_stage(Box::new(NoiseFilter::keep(
        RegexSet::new(&process_def::relevance_patterns()).unwrap(),
    )));
    p.add_stage(Box::new(ProcessAnnotator::new(
        process_def::rolling_upgrade_rules(),
        "rolling-upgrade",
        "run-1",
    )));
    p.add_stage(Box::new(ImportantLineForwarder));
    p
}

fn op_line() -> LogEvent {
    LogEvent::new(
        SimTime::from_millis(500),
        "asgard.log",
        "Instance pm on i-7df34041 is ready for use. 3 of 4 instance relaunches done.",
    )
}

fn noise_line() -> LogEvent {
    LogEvent::new(
        SimTime::from_millis(500),
        "application.log",
        "redis: background saving finished in 104 ms",
    )
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("pipeline/operation_line", |b| {
        b.iter_batched(
            pipeline,
            |mut p| p.push(black_box(op_line())),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("pipeline/noise_line_dropped", |b| {
        b.iter_batched(
            pipeline,
            |mut p| p.push(black_box(noise_line())),
            BatchSize::SmallInput,
        )
    });
}

fn bench_json(c: &mut Criterion) {
    let event = op_line()
        .with_tag("push")
        .with_tag("step4")
        .with_field("instanceid", "i-7df34041")
        .with_field("num", "4");
    let text = event.to_json().to_string();
    c.bench_function("json/serialize_log_event", |b| {
        b.iter(|| black_box(&event).to_json().to_string())
    });
    c.bench_function("json/parse_log_event", |b| {
        b.iter(|| Json::parse(black_box(&text)).unwrap())
    });
}

criterion_group!(benches, bench_pipeline, bench_json);
criterion_main!(benches);
