//! Telemetry self-overhead: the gateway soak replayed under each
//! `TelemetryMode`, wall-clock timed.
//!
//! The observability layer is only honest if it measures itself: this
//! harness runs the same 64-tenant soak with telemetry `off` (spans and
//! events disabled — the baseline), `sampled` (everything recorded,
//! traces retained by the tail sampler) and `full` (everything retained),
//! and gates the overhead ratios. Detections must be byte-identical across
//! modes — the digest check fails the run otherwise — and in sampled mode
//! every detecting operation's trace must be kept (no incident-relevant
//! telemetry is ever sampled away).
//!
//! Phase A (stream collection) is re-run per replay so every mode starts
//! from identical virtual-clock state, but only the replay is timed.
//!
//! Usage (args pass through `cargo bench --bench obs_overhead -- ...`):
//!   --smoke   fewer tenants and rounds, for CI
//!   --json    write BENCH_obs.json at the workspace root
//!
//! Gates: full overhead < 10% of the off baseline, sampled overhead < 3%.
//! The gated statistic is a *trimmed geometric mean of per-round ratios*:
//! every round times the three modes back-to-back (same ambient
//! conditions, so the within-round ratio cancels machine drift), the mode
//! order rotates per round (so the position bias a replay inherits from
//! its predecessor's heap cancels across a rotation cycle), and the
//! extreme ratios are dropped (so a single preempted replay cannot swing
//! the verdict). A breach triggers one fresh measurement block before the
//! gate fails — a true regression reproduces, a contended window doesn't.

use std::time::Instant;

use pod_eval::{collect_streams, replay_telemetry, SoakConfig, SoakReport};
use pod_gateway::GatewayConfig;
use pod_log::Json;
use pod_obs::TelemetryMode;

const FULL_MAX_OVERHEAD: f64 = 0.10;
const SAMPLED_MAX_OVERHEAD: f64 = 0.03;

/// The replay is deterministic, so timing noise (scheduler, page cache,
/// allocator state) is strictly additive: the minimum over rounds is the
/// most robust estimate of one mode's true cost — reported for reading.
fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Nanoseconds this process has spent on-CPU (Linux `/proc/self/schedstat`,
/// maintained by the scheduler at nanosecond resolution). Unlike wall
/// clock, this is immune to preemption on a shared machine — essential for
/// resolving single-digit-percent overheads. `None` off Linux.
///
/// The scheduler only folds the *running* timeslice into
/// `sum_exec_runtime` when the task deschedules or on a tick, so a naive
/// read undercounts by up to one tick (1–4 ms — larger than the whole
/// effect being measured). The short sleep forces a deschedule first,
/// flushing the current slice and making the read microsecond-accurate.
fn cpu_ns() -> Option<u64> {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let text = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// Times one closure call: on-CPU seconds when available, else wall.
fn time_one<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let cpu_before = cpu_ns();
    let wall = Instant::now();
    let out = f();
    let secs = match (cpu_before, cpu_ns()) {
        (Some(a), Some(b)) => (b - a) as f64 / 1e9,
        _ => wall.elapsed().as_secs_f64(),
    };
    (out, secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write_json = args.iter().any(|a| a == "--json");

    let ops = if smoke { 16 } else { 64 };
    // A multiple of the mode count, so the order rotation below gives
    // every mode every triplet position equally often. Rounds are cheap
    // (~0.4 s each): buying more of them is how single-digit-percent
    // overheads stay resolvable on a shared, noisy machine.
    let rounds = if smoke { 9 } else { 45 };
    // A mostly-healthy fleet (1 faulty tenant in 8): that is the traffic
    // shape where tail sampling earns its budget — healthy traces are
    // discarded, incident-relevant ones are all kept.
    let soak = SoakConfig {
        ops,
        fault_every: 8,
        ..SoakConfig::default()
    };
    let gateway = GatewayConfig::default();
    let modes = [
        TelemetryMode::Off,
        TelemetryMode::Sampled,
        TelemetryMode::Full,
    ];
    println!(
        "obs_overhead: {ops} tenants, {rounds} rounds per mode{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut last: Vec<Option<SoakReport>> = vec![None, None, None];
    let mut reference_digest: Option<String> = None;
    // Untimed warm-up replays so lazily-built state (regex programs, page
    // mappings, allocator arenas) is paid before any timing.
    for _ in 0..2 {
        drop(replay_telemetry(
            &collect_streams(&soak),
            &gateway,
            TelemetryMode::Full,
        ));
    }

    // Measures one block of `rounds` rounds and returns per-mode times.
    let measure = |last: &mut Vec<Option<SoakReport>>,
                   reference_digest: &mut Option<String>|
     -> Vec<Vec<f64>> {
        let mut times: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
        for round in 0..rounds {
            // Phase A is untimed: it reconstructs identical virtual-clock
            // state for every mode; only the replays below are measured.
            // All three collections happen *before* any timing so the
            // timed triplet runs back-to-back within a few hundred
            // milliseconds — ambient drift (noisy neighbours, frequency
            // scaling) on that timescale hits every mode alike and
            // cancels in the ratio.
            //
            // The order of modes within the triplet rotates each round: a
            // replay's position in the triplet carries a measurable bias
            // (later replays inherit a warmer but more fragmented heap —
            // three *identical* workloads measure several percent apart
            // by position alone), and rotating means each mode occupies
            // each position equally often, so the bias cancels in the
            // geometric mean of per-round ratios over a rotation cycle.
            let per_mode_streams: Vec<_> = modes.iter().map(|_| collect_streams(&soak)).collect();
            // Streams are taken by *slot*, not by mode: the heap layout
            // of a stream set depends on its collection order, and tying
            // that to a fixed mode would be yet another per-mode bias.
            for (slot, streams) in per_mode_streams.iter().enumerate() {
                let m = (slot + round) % modes.len();
                let mode = modes[m];
                let (report, secs) = time_one(|| replay_telemetry(streams, &gateway, mode));
                times[m].push(secs);
                let digest = report.digest();
                match &*reference_digest {
                    None => *reference_digest = Some(digest),
                    Some(reference) => assert_eq!(
                        *reference, digest,
                        "mode {mode} round {round}: detections diverged from the baseline"
                    ),
                }
                last[m] = Some(report);
            }
        }
        times
    };

    // Per-round ratios vs the same round's off baseline, combined as a
    // trimmed geometric mean: within a round the three modes see the same
    // ambient conditions (so the ratio isolates telemetry cost from
    // machine drift), the order rotation makes the triplet-position bias
    // multiply into the ratios symmetrically (cancelling in the geometric
    // mean over each rotation cycle), and trimming the extremes keeps
    // ms-scale contention bursts that land on a single replay from
    // swinging the verdict.
    let ratio = |times: &[Vec<f64>], m: usize| -> f64 {
        let mut ratios: Vec<f64> = times[m]
            .iter()
            .zip(&times[0])
            .map(|(t, off)| t / off.max(1e-9))
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let trim = (ratios.len() / 8).max(1);
        let trimmed = if ratios.len() > 2 * trim {
            &ratios[trim..ratios.len() - trim]
        } else {
            &ratios[..]
        };
        let log_sum: f64 = trimmed.iter().map(|r| r.ln()).sum();
        (log_sum / trimmed.len() as f64).exp()
    };

    // A breach must reproduce in a fresh measurement block before the
    // gate fails: a single block can land in a contended window on a
    // shared machine, and a true regression breaches both blocks anyway.
    let mut attempts = 1;
    let mut times = measure(&mut last, &mut reference_digest);
    let mut sampled_overhead = ratio(&times, 1) - 1.0;
    let mut full_overhead = ratio(&times, 2) - 1.0;
    if sampled_overhead >= SAMPLED_MAX_OVERHEAD || full_overhead >= FULL_MAX_OVERHEAD {
        println!(
            "gate breach at sampled {:+.2}% / full {:+.2}% — re-measuring to rule out a contended window",
            sampled_overhead * 100.0,
            full_overhead * 100.0
        );
        attempts = 2;
        times = measure(&mut last, &mut reference_digest);
        sampled_overhead = ratio(&times, 1) - 1.0;
        full_overhead = ratio(&times, 2) - 1.0;
    }

    // Sampled mode must keep every incident-relevant trace.
    let sampled = last[1].as_ref().unwrap();
    for op in &sampled.ops {
        if op.detections > 0 {
            let verdict = op.verdict.expect("sampled mode decides every op");
            assert!(
                verdict.keep(),
                "{}: a detecting operation's trace was discarded",
                op.trace_id
            );
        }
    }

    let bests: Vec<f64> = times.iter().map(|t| best(t)).collect();
    for (m, &mode) in modes.iter().enumerate() {
        let report = last[m].as_ref().unwrap();
        println!(
            "{:<8} best {:>8.3}s  overhead {:>+7.2}%  kept {:>3}/{} traces, {} incident chains",
            mode.to_string(),
            bests[m],
            (ratio(&times, m) - 1.0) * 100.0,
            report.kept_traces,
            report.ops.len(),
            report.incidents,
        );
    }

    if write_json {
        let mut doc = Json::object();
        doc.set("bench", Json::str("obs-overhead"));
        doc.set("ops", Json::Number(ops as f64));
        doc.set("rounds", Json::Number(rounds as f64));
        doc.set("attempts", Json::Number(attempts as f64));
        doc.set("lines_total", Json::Number(sampled.lines_total as f64));
        doc.set("digest_identical", Json::Bool(true));
        let mut mode_rows = Json::object();
        for (m, &mode) in modes.iter().enumerate() {
            let report = last[m].as_ref().unwrap();
            let mut row = Json::object();
            row.set("wall_secs_best", Json::Number(bests[m]));
            row.set(
                "wall_secs_rounds",
                Json::Array(times[m].iter().map(|&t| Json::Number(t)).collect()),
            );
            row.set("overhead_vs_off", Json::Number(ratio(&times, m) - 1.0));
            row.set("kept_traces", Json::Number(report.kept_traces as f64));
            row.set(
                "discarded_traces",
                Json::Number(report.discarded_traces as f64),
            );
            row.set("incidents", Json::Number(report.incidents as f64));
            if let Some(flight) = &report.flight {
                row.set("flight_frames", Json::Number(flight.frames.len() as f64));
                row.set(
                    "flight_incidents",
                    Json::Number(flight.incidents.len() as f64),
                );
            }
            mode_rows.set(mode.to_string(), row);
        }
        doc.set("modes", mode_rows);
        let mut gates = Json::object();
        gates.set("full_max_overhead", Json::Number(FULL_MAX_OVERHEAD));
        gates.set("sampled_max_overhead", Json::Number(SAMPLED_MAX_OVERHEAD));
        gates.set("full_overhead", Json::Number(full_overhead));
        gates.set("sampled_overhead", Json::Number(sampled_overhead));
        gates.set(
            "pass",
            Json::Bool(
                full_overhead < FULL_MAX_OVERHEAD && sampled_overhead < SAMPLED_MAX_OVERHEAD,
            ),
        );
        doc.set("gates", gates);
        let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        std::fs::write(out_path, format!("{doc}\n")).expect("write BENCH_obs.json");
        println!("wrote {out_path}");
    }

    println!(
        "overhead gate: sampled {:+.2}% (max {:.0}%), full {:+.2}% (max {:.0}%)",
        sampled_overhead * 100.0,
        SAMPLED_MAX_OVERHEAD * 100.0,
        full_overhead * 100.0,
        FULL_MAX_OVERHEAD * 100.0
    );
    if sampled_overhead >= SAMPLED_MAX_OVERHEAD || full_overhead >= FULL_MAX_OVERHEAD {
        eprintln!("OVERHEAD GATE BREACH: telemetry costs more than its budget");
        std::process::exit(1);
    }
}
