//! Micro-benchmarks of the hand-rolled regex engine on the patterns the
//! log pipeline actually runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pod_regex::{Regex, RegexSet};

const READY_LINE: &str =
    "Instance pm on i-7df34041 is ready for use. 3 of 20 instance relaunches done.";
const NOISE_LINE: &str = "elasticsearch: [gc][120] overhead, spent collecting in last second";

fn bench_compile(c: &mut Criterion) {
    c.bench_function("regex/compile_ready_pattern", |b| {
        b.iter(|| {
            Regex::new(black_box(
                r"Instance \w+ on (?P<instanceid>i-[0-9a-f]+) is ready for use. (?P<done>\d+) of (?P<total>\d+) instance relaunches done",
            ))
            .unwrap()
        })
    });
}

fn bench_match(c: &mut Criterion) {
    let re = Regex::new(
        r"Instance \w+ on (?P<instanceid>i-[0-9a-f]+) is ready for use. (?P<done>\d+) of (?P<total>\d+) instance relaunches done",
    )
    .unwrap();
    c.bench_function("regex/captures_hit", |b| {
        b.iter(|| re.captures(black_box(READY_LINE)))
    });
    c.bench_function("regex/is_match_miss", |b| {
        b.iter(|| re.is_match(black_box(NOISE_LINE)))
    });
}

fn bench_set(c: &mut Criterion) {
    let set = RegexSet::new(&pod_orchestrator::process_def::relevance_patterns()).unwrap();
    c.bench_function("regex/noise_filter_set_hit", |b| {
        b.iter(|| set.first_match(black_box(READY_LINE)))
    });
    c.bench_function("regex/noise_filter_set_miss", |b| {
        b.iter(|| set.first_match(black_box(NOISE_LINE)))
    });
}

fn bench_rulebook(c: &mut Criterion) {
    let rules = pod_orchestrator::process_def::rolling_upgrade_rules();
    c.bench_function("regex/rulebook_classify_line", |b| {
        b.iter(|| rules.match_line(black_box(READY_LINE)))
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_match,
    bench_set,
    bench_rulebook
);
criterion_main!(benches);
