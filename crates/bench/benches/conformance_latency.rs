//! Experiment E5 (performance half): the conformance-checking service.
//!
//! The paper reports that "when called locally, the conformance checking
//! service responded on average in about 10 ms" — a figure dominated by the
//! HTTP/service stack. These benches measure the algorithmic core (token
//! replay per event) and the whole checker lifecycle, which must sit far
//! below that envelope.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pod_orchestrator::process_def::rolling_upgrade_model;
use pod_process::{ConformanceChecker, PetriNet};

fn fit_trace(loops: usize) -> Vec<&'static str> {
    use pod_faulttree::steps;
    let mut t = vec![steps::START, steps::UPDATE_LC, steps::SORT];
    for _ in 0..loops {
        t.extend([
            steps::DEREGISTER,
            steps::TERMINATE,
            steps::WAIT_ASG,
            steps::READY,
        ]);
    }
    t.push(steps::COMPLETED);
    t
}

fn bench_compile(c: &mut Criterion) {
    let model = rolling_upgrade_model();
    c.bench_function("conformance/compile_petri_net", |b| {
        b.iter(|| PetriNet::compile(black_box(&model)))
    });
}

fn bench_replay_event(c: &mut Criterion) {
    let model = rolling_upgrade_model();
    c.bench_function("conformance/replay_one_fit_event", |b| {
        b.iter_batched(
            || {
                let mut ch = ConformanceChecker::new(&model);
                ch.replay("t", pod_faulttree::steps::START);
                ch.replay("t", pod_faulttree::steps::UPDATE_LC);
                ch
            },
            |mut ch| ch.replay("t", black_box(pod_faulttree::steps::SORT)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("conformance/replay_one_unfit_event", |b| {
        b.iter_batched(
            || {
                let mut ch = ConformanceChecker::new(&model);
                ch.replay("t", pod_faulttree::steps::START);
                ch
            },
            // READY out of turn: the checker must compute expected +
            // hypothesised skips.
            |mut ch| ch.replay("t", black_box(pod_faulttree::steps::READY)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_trace(c: &mut Criterion) {
    let model = rolling_upgrade_model();
    for loops in [4usize, 20] {
        let trace = fit_trace(loops);
        c.bench_function(
            &format!("conformance/replay_full_trace_{loops}_loops"),
            |b| {
                b.iter_batched(
                    || ConformanceChecker::new(&model),
                    |mut ch| {
                        for act in &trace {
                            ch.replay("t", act);
                        }
                        ch.is_complete("t")
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn bench_fitness(c: &mut Criterion) {
    let model = rolling_upgrade_model();
    let traces: Vec<Vec<String>> = (0..10)
        .map(|i| fit_trace(2 + i % 4).iter().map(|s| s.to_string()).collect())
        .collect();
    c.bench_function("conformance/token_replay_fitness_10_traces", |b| {
        b.iter(|| pod_process::replay_fitness(black_box(&model), black_box(&traces)))
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_replay_event,
    bench_full_trace,
    bench_fitness
);
criterion_main!(benches);
