//! Experiment E1 (performance): the offline mining pipeline that
//! regenerates the Figure-2 model from operation logs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pod_log::LogEvent;
use pod_mining::{cluster_lines, mine_process, ClusterConfig, Dfg, MiningConfig};
use pod_sim::SimTime;

/// Synthesises `runs` healthy upgrade logs (loop count varies per run).
fn training_log(runs: usize) -> Vec<LogEvent> {
    let mut events = Vec::new();
    for run in 0..runs {
        let mut msgs = vec![
            format!("Started rolling upgrade task run-{run} pushing ami-750c9e4f into group pm--asg for app pm"),
            "Created launch configuration lc-v2 with image ami-750c9e4f and updated group pm--asg".to_string(),
            "Sorted 4 instances of group pm--asg for replacement".to_string(),
        ];
        for i in 0..(2 + run % 4) {
            msgs.push(format!(
                "Deregistered instance i-{i:08x} from load balancer front"
            ));
            msgs.push(format!("Terminated old instance i-{i:08x}"));
            msgs.push("Waiting for ASG pm--asg to start a new instance of pm".to_string());
            msgs.push(format!(
                "Instance pm on i-{:08x} is ready for use. {} of 4 instance relaunches done.",
                i + 256,
                i + 1
            ));
        }
        msgs.push(format!("Rolling upgrade task run-{run} completed"));
        for (i, m) in msgs.into_iter().enumerate() {
            events.push(
                LogEvent::new(
                    SimTime::from_millis((run * 10_000 + i) as u64),
                    "asgard.log",
                    m,
                )
                .with_field("taskid", format!("run-{run}")),
            );
        }
    }
    events
}

fn bench_clustering(c: &mut Criterion) {
    let events = training_log(10);
    let lines: Vec<&str> = events.iter().map(|e| e.message.as_str()).collect();
    c.bench_function("mining/cluster_10_runs", |b| {
        b.iter(|| cluster_lines(black_box(&lines), &ClusterConfig::default()))
    });
}

fn bench_discovery(c: &mut Criterion) {
    let traces: Vec<Vec<String>> = (0..10)
        .map(|i| {
            let mut t = vec!["start".to_string(), "lc".to_string(), "sort".to_string()];
            for _ in 0..(2 + i % 4) {
                t.extend(["dereg", "term", "wait", "ready"].map(String::from));
            }
            t.push("done".to_string());
            t
        })
        .collect();
    let dfg = Dfg::from_traces(&traces);
    c.bench_function("mining/discover_model_from_dfg", |b| {
        b.iter(|| pod_mining::discover_model("bench", black_box(&dfg)).unwrap())
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    for runs in [5usize, 20] {
        let events = training_log(runs);
        c.bench_function(&format!("mining/end_to_end_{runs}_runs"), |b| {
            b.iter(|| {
                mine_process(
                    black_box(&events),
                    |e| e.field("taskid").map(str::to_string),
                    &MiningConfig::default(),
                )
                .unwrap()
            })
        });
    }
}

criterion_group!(benches, bench_clustering, bench_discovery, bench_end_to_end);
criterion_main!(benches);
