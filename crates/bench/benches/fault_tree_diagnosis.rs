//! Experiment E3 (performance) and the design-choice ablations on the
//! diagnosis engine: fault-tree walks by probability vs cost order, with
//! and without memoisation, with and without the consistent-API layer.
//!
//! Criterion measures *wall-clock* cost of a diagnosis walk (the virtual
//! diagnosis times of Figure 6 are produced by the campaign example and
//! recorded in EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pod_assert::{ConsistentApi, RetryPolicy};
use pod_bench::bench_cloud;
use pod_faulttree::{version_count_tree, DiagnosisContext, DiagnosisEngine, TestOrder};
use pod_log::LogStorage;
use pod_sim::SimTime;

fn context(env: pod_assert::ExpectedEnv) -> DiagnosisContext {
    DiagnosisContext {
        env,
        step: None,
        instance: None,
        operation_started: SimTime::ZERO,
    }
}

fn engine(cloud: &pod_cloud::Cloud) -> DiagnosisEngine {
    DiagnosisEngine::new(
        ConsistentApi::new(cloud.clone(), RetryPolicy::default()),
        LogStorage::new(),
    )
}

fn bench_walk_healthy(c: &mut Criterion) {
    // Healthy system: the walk excludes every fault (worst case for test
    // count since nothing prunes early).
    let tree = version_count_tree(true);
    c.bench_function("diagnosis/walk_healthy_master_tree", |b| {
        b.iter_batched(
            || {
                let (cloud, env) = bench_cloud(1);
                (engine(&cloud), context(env))
            },
            |(engine, ctx)| engine.diagnose(black_box(&tree), &ctx),
            BatchSize::SmallInput,
        )
    });
}

fn bench_walk_with_fault(c: &mut Criterion) {
    let tree = version_count_tree(true);
    c.bench_function("diagnosis/walk_wrong_ami_fault", |b| {
        b.iter_batched(
            || {
                let (cloud, env) = bench_cloud(2);
                let rogue = cloud.admin_create_ami("rogue", "9.9");
                cloud.admin_update_launch_config(
                    &env.launch_config,
                    pod_cloud::LaunchConfigUpdate {
                        ami: Some(rogue),
                        ..pod_cloud::LaunchConfigUpdate::default()
                    },
                );
                (engine(&cloud), context(env))
            },
            |(engine, ctx)| engine.diagnose(black_box(&tree), &ctx),
            BatchSize::SmallInput,
        )
    });
}

fn bench_ablation_order(c: &mut Criterion) {
    let tree = version_count_tree(true);
    for (name, order) in [
        ("by_probability", TestOrder::ByProbability),
        ("by_cost", TestOrder::ByCost),
    ] {
        c.bench_function(&format!("diagnosis/ablation_order_{name}"), |b| {
            b.iter_batched(
                || {
                    let (cloud, env) = bench_cloud(3);
                    (engine(&cloud).with_order(order), context(env))
                },
                |(engine, ctx)| engine.diagnose(black_box(&tree), &ctx),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_ablation_memoisation(c: &mut Criterion) {
    let tree = version_count_tree(true);
    for memo in [true, false] {
        let name = if memo { "memoised" } else { "unmemoised" };
        c.bench_function(&format!("diagnosis/ablation_{name}"), |b| {
            b.iter_batched(
                || {
                    let (cloud, env) = bench_cloud(4);
                    let e = if memo {
                        engine(&cloud)
                    } else {
                        engine(&cloud).without_memoisation()
                    };
                    (e, context(env))
                },
                |(engine, ctx)| engine.diagnose(black_box(&tree), &ctx),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_ablation_consistent_api(c: &mut Criterion) {
    let tree = version_count_tree(true);
    for retries in [true, false] {
        let name = if retries {
            "with_retry_layer"
        } else {
            "raw_api"
        };
        c.bench_function(&format!("diagnosis/ablation_{name}"), |b| {
            b.iter_batched(
                || {
                    let (cloud, env) = bench_cloud(5);
                    let api = ConsistentApi::new(cloud.clone(), RetryPolicy::default());
                    let api = if retries { api } else { api.without_retries() };
                    (DiagnosisEngine::new(api, LogStorage::new()), context(env))
                },
                |(engine, ctx)| engine.diagnose(black_box(&tree), &ctx),
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(
    benches,
    bench_walk_healthy,
    bench_walk_with_fault,
    bench_ablation_order,
    bench_ablation_memoisation,
    bench_ablation_consistent_api
);
criterion_main!(benches);
