//! Line-matching throughput: the prefiltered fast paths against the
//! backtracking baselines, over the E1 rolling-upgrade log.
//!
//! Unlike the criterion-style micro benches this is a throughput harness
//! with a machine-readable result: it writes `BENCH_match.json` at the
//! workspace root (`--json`) and can gate against a committed baseline
//! (`--baseline <path>`): because absolute lines/sec depends on the
//! machine, the gate compares *speedup ratios* (fast vs naive measured in
//! the same run), failing when the fresh annotator speedup drops below
//! 0.8x the baseline's.
//!
//! Usage (args pass through `cargo bench --bench line_match -- ...`):
//!   --smoke            fewer rounds, for CI
//!   --json             write BENCH_match.json
//!   --baseline <path>  regression-gate against a previous BENCH_match.json

use std::time::Instant;

use pod_log::Json;
use pod_regex::{Engine, Regex, RegexSet};

const READY_PATTERN: &str = r"Instance \w+ on (?P<instanceid>i-[0-9a-f]+) is ready for use. (?P<done>\d+) of (?P<total>\d+) instance relaunches done";

/// Measures `f` over every line, `rounds` times; returns lines/sec.
fn lines_per_sec<F: FnMut(&str)>(lines: &[String], rounds: usize, mut f: F) -> f64 {
    // One untimed warm-up pass so lazily-built scratch is allocated.
    for line in lines {
        f(line);
    }
    let start = Instant::now();
    for _ in 0..rounds {
        for line in lines {
            f(line);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (rounds * lines.len()) as f64 / elapsed
}

/// One fast-vs-naive comparison, rendered as a JSON object.
fn section(name: &str, fast: f64, naive: f64) -> (String, Json) {
    let mut obj = Json::object();
    obj.set("lines_per_sec", Json::Number(fast.round()));
    obj.set("baseline_lines_per_sec", Json::Number(naive.round()));
    obj.set(
        "speedup",
        Json::Number((fast / naive * 100.0).round() / 100.0),
    );
    println!(
        "{name:<24} fast: {fast:>12.0} lines/s   naive: {naive:>12.0} lines/s   speedup: {:.2}x",
        fast / naive
    );
    (name.to_string(), obj)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cargo bench` forwards its own `--bench` flag; ignore it.
    let smoke = args.iter().any(|a| a == "--smoke");
    let write_json = args.iter().any(|a| a == "--json");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let rounds = if smoke { 10 } else { 60 };
    let lines = pod_bench::upgrade_log_lines(7, 4, 8);
    println!(
        "line_match: {} lines ({} rounds{})",
        lines.len(),
        rounds,
        if smoke { ", smoke" } else { "" }
    );

    // 1. Annotator: rule-level literal index vs per-rule backtracking.
    let rules = pod_orchestrator::process_def::rolling_upgrade_rules();
    let annotator_fast = lines_per_sec(&lines, rounds, |l| {
        std::hint::black_box(rules.match_line(l));
    });
    let annotator_naive = lines_per_sec(&lines, rounds, |l| {
        std::hint::black_box(rules.match_line_naive(l));
    });

    // 2. RegexSet relevance filter: shared prefilter vs per-pattern loop.
    let patterns = pod_orchestrator::process_def::relevance_patterns();
    let set = RegexSet::new(&patterns).unwrap();
    let regexes: Vec<Regex> = patterns.iter().map(|p| Regex::new(p).unwrap()).collect();
    let set_fast = lines_per_sec(&lines, rounds, |l| {
        std::hint::black_box(set.first_match(l));
    });
    let set_naive = lines_per_sec(&lines, rounds, |l| {
        std::hint::black_box(regexes.iter().position(|re| {
            re.try_captures_with(l, Engine::Backtracking)
                .ok()
                .flatten()
                .is_some()
        }));
    });

    // 3. Single unanchored pattern: prefiltered Pike VM vs backtracker.
    let re = Regex::new(READY_PATTERN).unwrap();
    let single_fast = lines_per_sec(&lines, rounds, |l| {
        std::hint::black_box(re.captures(l));
    });
    let single_naive = lines_per_sec(&lines, rounds, |l| {
        std::hint::black_box(re.try_captures_with(l, Engine::Backtracking).ok().flatten());
    });

    let mut report = Json::object();
    report.set("bench", Json::str("line_match"));
    report.set("lines", Json::Number(lines.len() as f64));
    report.set("rounds", Json::Number(rounds as f64));
    for (name, obj) in [
        section("annotator", annotator_fast, annotator_naive),
        section("regex_set", set_fast, set_naive),
        section("single_pattern", single_fast, single_naive),
    ] {
        report.set(name, obj);
    }

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_match.json");
    if write_json {
        std::fs::write(out_path, format!("{report}\n")).expect("write BENCH_match.json");
        println!("wrote {out_path}");
    }

    if let Some(path) = baseline_path {
        // Relative paths are resolved against the workspace root, matching
        // where `--json` writes (cargo runs benches from the package dir).
        let path = if std::path::Path::new(&path).is_relative() {
            format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
        } else {
            path
        };
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = Json::parse(&text).expect("baseline is valid JSON");
        let committed = baseline
            .get("annotator")
            .and_then(|s| s.get("speedup"))
            .and_then(|v| v.as_f64())
            .expect("baseline has annotator.speedup");
        let fresh = annotator_fast / annotator_naive;
        println!(
            "regression gate: fresh annotator speedup {fresh:.2}x vs committed {committed:.2}x"
        );
        if fresh < 0.8 * committed {
            eprintln!(
                "REGRESSION: annotator speedup {fresh:.2}x fell below 0.8x the committed {committed:.2}x"
            );
            std::process::exit(1);
        }
    }
}
