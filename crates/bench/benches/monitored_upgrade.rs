//! Experiments E2/E3 (performance): end-to-end monitored upgrades — one
//! full rolling upgrade under POD-Diagnosis, healthy and with an injected
//! fault — and the cloud-simulator substrate itself.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pod_eval::{execute_run, Campaign, CampaignConfig};
use pod_orchestrator::FaultType;

fn plan_for(fault_index: usize) -> pod_eval::RunPlan {
    let campaign = Campaign::new(CampaignConfig {
        runs_per_fault: 1,
        large_cluster_every: 0,
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        ..CampaignConfig::default()
    });
    campaign.plans().remove(fault_index)
}

fn bench_monitored_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    let wrong_ami = plan_for(0);
    assert_eq!(wrong_ami.fault, FaultType::AmiChangedDuringUpgrade);
    group.bench_function("monitored_upgrade_with_wrong_ami", |b| {
        b.iter(|| execute_run(black_box(&wrong_ami)))
    });
    let elb = plan_for(7);
    assert_eq!(elb.fault, FaultType::ElbUnavailable);
    group.bench_function("monitored_upgrade_with_elb_outage", |b| {
        b.iter(|| execute_run(black_box(&elb)))
    });
    group.finish();
}

fn bench_cloud_substrate(c: &mut Criterion) {
    c.bench_function("cloud/describe_asg_call", |b| {
        b.iter_batched(
            || pod_bench::bench_cloud(9),
            |(cloud, env)| cloud.describe_asg(black_box(&env.asg)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("cloud/terminate_and_reconcile_to_steady_state", |b| {
        b.iter_batched(
            || pod_bench::bench_cloud(10),
            |(cloud, env)| {
                let victim = cloud.admin_describe_asg(&env.asg).unwrap().instances[0].clone();
                cloud.terminate_instance(&victim, false).unwrap();
                cloud.sleep(pod_sim::SimDuration::from_secs(180));
                cloud.admin_asg_active_instances(&env.asg).len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    // One run per fault type: the unit of Table I / Figure 7 regeneration.
    group.bench_function("campaign_8_runs_table1", |b| {
        b.iter(|| {
            Campaign::new(CampaignConfig {
                runs_per_fault: 1,
                seed: 2014,
                large_cluster_every: 0,
                ..CampaignConfig::default()
            })
            .run()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_monitored_run,
    bench_cloud_substrate,
    bench_campaign
);
criterion_main!(benches);
