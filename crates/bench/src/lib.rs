//! Shared fixtures for the POD-Diagnosis benchmarks.
//!
//! The benches live in `benches/`; this library only provides the common
//! scenario builders so every bench measures the same workloads.

#![warn(missing_docs)]

use pod_cloud::{Cloud, CloudConfig};
use pod_orchestrator::{CollectingObserver, NoiseGenerator, RollingUpgrade, UpgradeConfig};
use pod_sim::{Clock, SimRng, SimTime};

/// A ready-to-use 4-instance cluster with a consistent-API handle.
pub fn bench_cloud(seed: u64) -> (Cloud, pod_assert::ExpectedEnv) {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig {
            stale_read_prob: 0.0,
            ..CloudConfig::default()
        },
    );
    let ami = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc =
        cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
    let asg = cloud.admin_create_asg("pm--asg", lc.clone(), 1, 10, 4, Some(elb.clone()));
    let env = pod_assert::ExpectedEnv {
        asg,
        elb,
        launch_config: lc,
        expected_ami: ami,
        expected_version: "2.0".into(),
        expected_key_pair: kp,
        expected_security_group: sg,
        expected_instance_type: "m1.small".into(),
        expected_count: 4,
    };
    (cloud, env)
}

/// A v1 cluster plus the config to roll it to v2 — the E1 rolling-upgrade
/// scenario from the paper, ready to hand to [`RollingUpgrade`].
pub fn upgrade_fixture(seed: u64, instances: u32) -> (Cloud, UpgradeConfig) {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig {
            stale_read_prob: 0.0,
            ..CloudConfig::default()
        },
    );
    let ami_v1 = cloud.admin_create_ami("app", "1.0");
    let ami_v2 = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc = cloud.admin_create_launch_config("lc-v1", ami_v1, "m1.small", kp, sg);
    let asg = cloud.admin_create_asg("pm--asg", lc, 1, 30, instances, Some(elb.clone()));
    let config = UpgradeConfig::new("pm", asg, elb, ami_v2, "2.0");
    (cloud, config)
}

/// The full operation log of a clean E1 rolling upgrade interleaved with
/// deterministic application noise: `noise_per_line` noise lines are
/// inserted after every operation line. This is the shared workload for
/// the line-matching benches and the annotator golden test — every
/// consumer sees byte-identical lines for the same arguments.
pub fn upgrade_log_lines(seed: u64, instances: u32, noise_per_line: usize) -> Vec<String> {
    let (cloud, config) = upgrade_fixture(seed, instances);
    let mut upgrade = RollingUpgrade::new(cloud, config, "task-e1");
    let mut observer = CollectingObserver::default();
    let report = upgrade.run(&mut observer);
    assert!(
        report.outcome.is_success(),
        "bench fixture upgrade must succeed: {:?}",
        report.outcome
    );
    let mut noise = NoiseGenerator::new(SimRng::seed_from(seed ^ 0x9e37_79b9), 1.0);
    let mut lines = Vec::with_capacity(observer.events.len() * (1 + noise_per_line));
    for event in &observer.events {
        lines.push(event.message.clone());
        for _ in 0..noise_per_line {
            lines.push(noise.emit(SimTime::ZERO).message);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upgrade_log_is_deterministic_and_mixed() {
        let a = upgrade_log_lines(7, 4, 2);
        let b = upgrade_log_lines(7, 4, 2);
        assert_eq!(a, b);
        assert!(a.iter().any(|l| l.contains("Started rolling upgrade")));
        assert!(a.iter().any(|l| l.contains("is ready for use")));
        // Two noise lines ride along after every operation line.
        let ops = a.len() / 3;
        assert_eq!(a.len(), ops * 3);
    }
}
