//! Shared fixtures for the POD-Diagnosis benchmarks.
//!
//! The benches live in `benches/`; this library only provides the common
//! scenario builders so every bench measures the same workloads.

#![warn(missing_docs)]

use pod_cloud::{Cloud, CloudConfig};
use pod_sim::{Clock, SimRng};

/// A ready-to-use 4-instance cluster with a consistent-API handle.
pub fn bench_cloud(seed: u64) -> (Cloud, pod_assert::ExpectedEnv) {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig {
            stale_read_prob: 0.0,
            ..CloudConfig::default()
        },
    );
    let ami = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc =
        cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
    let asg = cloud.admin_create_asg("pm--asg", lc.clone(), 1, 10, 4, Some(elb.clone()));
    let env = pod_assert::ExpectedEnv {
        asg,
        elb,
        launch_config: lc,
        expected_ami: ami,
        expected_version: "2.0".into(),
        expected_key_pair: kp,
        expected_security_group: sg,
        expected_instance_type: "m1.small".into(),
        expected_count: 4,
    };
    (cloud, env)
}
