//! POD-Diagnosis: the paper's primary contribution, assembled.
//!
//! This crate wires the substrates into the online engine of Figure 1:
//! operation-log lines flow through the local log processor (noise filter →
//! timer setter → process annotator → forwarder); annotated lines trigger
//! token-replay **conformance checking** and post-step **assertion
//! evaluation**; one-off and periodic **timers** cover silent steps and the
//! whole operation; any detected error selects the **fault tree** for the
//! failed assertion, instantiates and prunes it with the process context,
//! and runs on-demand diagnostic tests until root causes are confirmed.
//!
//! The engine is non-intrusive: it consumes log lines and cloud APIs only.
//!
//! Key types: [`PodEngine`] (one per operation execution), [`PodConfig`]
//! (the offline artefacts: model, rules, bindings, trees, patterns),
//! [`SharedEnv`] (the mutable expected environment), [`Detection`] and
//! [`RunSummary`] (what the operator gets).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod detection;
mod engine;
pub mod offline;

pub use config::{PodConfig, SharedEnv};
pub use detection::{Detection, DetectionSource, EngineNotice, RunSummary};
pub use engine::PodEngine;
