//! Offline analysis of stored operation logs.
//!
//! "The data in the log storage can be used for future process discovery,
//! e.g. when a process has changed, or offline diagnosis." This module is
//! that second use: given the operation logs accumulated in central
//! storage, it replays every trace against the process model after the
//! fact — no cloud access, no timers — and reports per-trace conformance:
//! which runs completed, where each deviating run left the process, and
//! which lines were errors or unclassifiable.

use std::collections::BTreeMap;

use pod_log::{LogEvent, RuleBook};
use pod_process::{Conformance, ConformanceChecker, ProcessModel};
use pod_regex::RegexSet;

/// Per-trace results of an offline conformance pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// The process-instance id.
    pub trace_id: String,
    /// Total lines attributed to the trace.
    pub events: usize,
    /// Lines that replayed in order.
    pub fit: usize,
    /// Known activities out of order.
    pub unfit: usize,
    /// Lines matching known-error patterns.
    pub known_errors: usize,
    /// Lines that could not be classified at all.
    pub unclassified: usize,
    /// Whether the trace reached the process end event.
    pub complete: bool,
    /// The last activity that replayed successfully.
    pub last_activity: Option<String>,
    /// What the model expected next at the end of the log.
    pub expected_next: Vec<String>,
}

impl TraceAnalysis {
    /// Whether the trace shows any non-conformance.
    pub fn is_clean(&self) -> bool {
        self.unfit == 0 && self.known_errors == 0 && self.unclassified == 0 && self.complete
    }
}

/// The result of analysing a whole log store.
#[derive(Debug, Clone, Default)]
pub struct OfflineReport {
    /// Per-trace analyses, ordered by trace id.
    pub traces: Vec<TraceAnalysis>,
}

impl OfflineReport {
    /// Traces with any deviation.
    pub fn deviating(&self) -> impl Iterator<Item = &TraceAnalysis> {
        self.traces.iter().filter(|t| !t.is_clean())
    }

    /// Lookup by trace id.
    pub fn trace(&self, id: &str) -> Option<&TraceAnalysis> {
        self.traces.iter().find(|t| t.trace_id == id)
    }
}

/// Replays stored operation logs against the model, offline.
///
/// Events are grouped into traces by `trace_of` (events yielding `None` are
/// skipped); each trace is replayed through a fresh conformance instance.
///
/// # Errors
///
/// Fails only if a known-error pattern does not compile.
///
/// # Examples
///
/// ```
/// use pod_core::offline::analyse;
/// use pod_log::LogEvent;
/// use pod_orchestrator::process_def;
/// use pod_sim::SimTime;
///
/// let events = vec![
///     LogEvent::new(SimTime::ZERO, "asgard.log",
///         "Started rolling upgrade task run-1 pushing ami-01 into group g for app pm")
///         .with_field("taskid", "run-1"),
/// ];
/// let report = analyse(
///     &events,
///     &process_def::rolling_upgrade_model(),
///     &process_def::rolling_upgrade_rules(),
///     &process_def::known_error_patterns(),
///     |e| e.field("taskid").map(str::to_string),
/// ).unwrap();
/// let t = report.trace("run-1").unwrap();
/// assert_eq!(t.fit, 1);
/// assert!(!t.complete, "one line does not finish the process");
/// ```
pub fn analyse<S: AsRef<str>>(
    events: &[LogEvent],
    model: &ProcessModel,
    rules: &RuleBook,
    known_error_patterns: &[S],
    trace_of: impl Fn(&LogEvent) -> Option<String>,
) -> Result<OfflineReport, pod_regex::ParseError> {
    let known_errors = RegexSet::new(known_error_patterns)?;
    let mut checker = ConformanceChecker::new(model);
    let mut stats: BTreeMap<String, TraceAnalysis> = BTreeMap::new();
    for event in events {
        let Some(trace_id) = trace_of(event) else {
            continue;
        };
        let entry = stats
            .entry(trace_id.clone())
            .or_insert_with(|| TraceAnalysis {
                trace_id: trace_id.clone(),
                events: 0,
                fit: 0,
                unfit: 0,
                known_errors: 0,
                unclassified: 0,
                complete: false,
                last_activity: None,
                expected_next: Vec::new(),
            });
        entry.events += 1;
        match rules.match_line(&event.message) {
            Some(m) => match checker.replay(&trace_id, &m.activity) {
                Conformance::Fit => entry.fit += 1,
                Conformance::Unfit { .. } => entry.unfit += 1,
                _ => unreachable!("replay only returns fit/unfit"),
            },
            None => {
                if known_errors.first_match(&event.message).is_some() {
                    checker.record_error(&trace_id, true);
                    entry.known_errors += 1;
                } else {
                    checker.record_error(&trace_id, false);
                    entry.unclassified += 1;
                }
            }
        }
    }
    for analysis in stats.values_mut() {
        analysis.complete = checker.is_complete(&analysis.trace_id);
        analysis.last_activity = checker
            .last_activity(&analysis.trace_id)
            .map(str::to_string);
        analysis.expected_next = checker.expected(&analysis.trace_id);
    }
    Ok(OfflineReport {
        traces: stats.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_log::{Boundary, LineRule};
    use pod_process::ProcessModelBuilder;
    use pod_sim::SimTime;

    fn model() -> ProcessModel {
        let mut b = ProcessModelBuilder::new("m");
        let s = b.start();
        let a = b.task("a");
        let t = b.task("b");
        let e = b.end();
        b.flow(s, a);
        b.flow(a, t);
        b.flow(t, e);
        b.build().unwrap()
    }

    fn rules() -> RuleBook {
        let mut r = RuleBook::new();
        r.push(LineRule::new("a", Boundary::End, &["step A done"]).unwrap());
        r.push(LineRule::new("b", Boundary::End, &["step B done"]).unwrap());
        r
    }

    fn event(trace: &str, msg: &str) -> LogEvent {
        LogEvent::new(SimTime::ZERO, "op.log", msg).with_field("trace", trace)
    }

    #[test]
    fn clean_and_deviating_traces_are_separated() {
        let events = vec![
            event("good", "step A done"),
            event("good", "step B done"),
            event("bad", "step B done"), // out of order
            event("bad", "ERROR: something broke"),
        ];
        let report = analyse(&events, &model(), &rules(), &["ERROR"], |e| {
            e.field("trace").map(str::to_string)
        })
        .unwrap();
        let good = report.trace("good").unwrap();
        assert!(good.is_clean());
        assert_eq!(good.fit, 2);
        assert!(good.complete);
        let bad = report.trace("bad").unwrap();
        assert!(!bad.is_clean());
        assert_eq!(bad.unfit, 1);
        assert_eq!(bad.known_errors, 1);
        assert_eq!(bad.expected_next, vec!["a".to_string()]);
        assert_eq!(report.deviating().count(), 1);
    }

    #[test]
    fn unclassified_lines_are_counted() {
        let events = vec![event("t", "step A done"), event("t", "mystery output")];
        let report = analyse(&events, &model(), &rules(), &["ERROR"], |e| {
            e.field("trace").map(str::to_string)
        })
        .unwrap();
        let t = report.trace("t").unwrap();
        assert_eq!(t.unclassified, 1);
        assert_eq!(t.last_activity.as_deref(), Some("a"));
        assert!(!t.complete);
    }

    #[test]
    fn events_without_trace_are_skipped() {
        let events = vec![LogEvent::new(SimTime::ZERO, "x", "step A done")];
        let report = analyse(&events, &model(), &rules(), &["ERROR"], |e| {
            e.field("trace").map(str::to_string)
        })
        .unwrap();
        assert!(report.traces.is_empty());
    }
}
