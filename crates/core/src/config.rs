//! Engine configuration and the shared expected-environment handle.

use std::sync::Arc;

use parking_lot::Mutex;
use pod_assert::{AssertionLibrary, CloudAssertion, ExpectedEnv, RetryPolicy};
use pod_faulttree::{FaultTreeRepository, TestOrder};
use pod_log::RuleBook;
use pod_process::ProcessModel;
use pod_sim::{LatencyModel, SimDuration};

/// The expected environment, shared between the engine and the operator /
/// experiment harness. Legitimate concurrent operations (a deliberate
/// scale-in) update it; an assertion evaluation that snapshotted the old
/// expectation mid-flight reproduces the paper's second false-positive
/// class.
#[derive(Debug, Clone)]
pub struct SharedEnv {
    inner: Arc<Mutex<ExpectedEnv>>,
}

impl SharedEnv {
    /// Wraps an initial expectation.
    pub fn new(env: ExpectedEnv) -> SharedEnv {
        SharedEnv {
            inner: Arc::new(Mutex::new(env)),
        }
    }

    /// A copy of the current expectation.
    pub fn snapshot(&self) -> ExpectedEnv {
        self.inner.lock().clone()
    }

    /// Applies a mutation (e.g. the operator acknowledging a scale-in).
    pub fn update(&self, f: impl FnOnce(&mut ExpectedEnv)) {
        f(&mut self.inner.lock());
    }
}

/// Static configuration of a [`crate::PodEngine`].
#[derive(Debug)]
pub struct PodConfig {
    /// The process model conformance checks against.
    pub model: ProcessModel,
    /// Transformation rules annotating log lines with process context.
    pub rules: RuleBook,
    /// Noise-filter keep patterns.
    pub relevance_patterns: Vec<String>,
    /// Patterns of known-error log lines.
    pub known_error_patterns: Vec<String>,
    /// Pattern marking operation start (starts the periodic timer).
    pub operation_start_pattern: String,
    /// Pattern marking operation end (stops the timers).
    pub operation_end_pattern: String,
    /// Assertion bindings per activity.
    pub bindings: AssertionLibrary,
    /// Fault trees per assertion key.
    pub trees: FaultTreeRepository,
    /// Retry/timeout policy of the consistent API layer (post-step
    /// assertion evaluation).
    pub retry_policy: RetryPolicy,
    /// Retry/timeout policy of on-demand diagnostic tests (diagnosis wants
    /// quick answers, so this is tighter than the assertion policy).
    pub diagnosis_retry_policy: RetryPolicy,
    /// Fixed service overhead per diagnosis: selecting and instantiating
    /// the tree, pruning, fetching the recent log context.
    pub diagnosis_overhead: LatencyModel,
    /// Seed for the engine's own randomness (diagnosis overhead sampling).
    pub engine_seed: u64,
    /// Visiting order of fault-tree siblings.
    pub test_order: TestOrder,
    /// The activity that starts a silent wait (arms the step timer).
    pub wait_activity: Option<String>,
    /// The activity whose log line completes the wait (cancels the timer).
    pub completion_activity: Option<String>,
    /// Activities during which one in-flight replacement is expected (the
    /// process-aware floor of the periodic capacity check).
    pub in_flight_activities: Vec<String>,
    /// Timeout for the step timer — "set based on experiments, at the 95%
    /// percentile" of historical step durations.
    pub step_timeout: SimDuration,
    /// Period of the operation-wide periodic health check.
    pub periodic_interval: SimDuration,
    /// Virtual cost of one conformance-checking call (the paper measured
    /// ≈ 10 ms per local call).
    pub conformance_latency: SimDuration,
    /// Minimum spacing between two diagnoses for the same tree key; a
    /// detection inside the window is recorded without re-diagnosing.
    pub diagnosis_cooldown: SimDuration,
    /// Delay between a detection and the start of its diagnosis (the
    /// central log processor picks failures up from storage). Transient
    /// faults reverted inside this window reproduce the paper's third
    /// wrong-diagnosis class.
    pub diagnosis_dispatch_delay: SimDuration,
    /// Extra assertions evaluated at every periodic tick, besides the
    /// process-aware capacity checks — the paper's "regression test"
    /// assertions (e.g. resource availability).
    pub periodic_assertions: Vec<CloudAssertion>,
    /// How many instances are replaced at a time (the upgrade's `k`).
    pub batch_size: u32,
}

impl PodConfig {
    /// A configuration with engine defaults; the caller supplies the
    /// process artefacts (model, rules, bindings, trees, patterns).
    pub fn new(
        model: ProcessModel,
        rules: RuleBook,
        bindings: AssertionLibrary,
        trees: FaultTreeRepository,
    ) -> PodConfig {
        PodConfig {
            model,
            rules,
            relevance_patterns: Vec::new(),
            known_error_patterns: Vec::new(),
            operation_start_pattern: "^$".to_string(),
            operation_end_pattern: "^$".to_string(),
            bindings,
            trees,
            retry_policy: RetryPolicy::default(),
            diagnosis_retry_policy: RetryPolicy {
                max_retries: 2,
                base_backoff: SimDuration::from_millis(250),
                multiplier: 2.0,
                timeout: SimDuration::from_secs(12),
            },
            diagnosis_overhead: LatencyModel::Shifted {
                offset: SimDuration::from_millis(600),
                base: Box::new(LatencyModel::lognormal_median_millis(500.0, 0.8)),
            },
            engine_seed: 0,
            test_order: TestOrder::ByProbability,
            wait_activity: None,
            completion_activity: None,
            in_flight_activities: Vec::new(),
            step_timeout: SimDuration::from_secs(150),
            periodic_interval: SimDuration::from_secs(60),
            conformance_latency: SimDuration::from_millis(10),
            diagnosis_cooldown: SimDuration::from_secs(45),
            diagnosis_dispatch_delay: SimDuration::from_secs(5),
            periodic_assertions: Vec::new(),
            batch_size: 1,
        }
    }
}
