//! Detections: what the engine reports to the operator.

use pod_cloud::InstanceId;
use pod_faulttree::DiagnosisReport;
use pod_sim::SimTime;

/// Which mechanism detected the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionSource {
    /// Token replay: a known activity executed out of turn.
    ConformanceUnfit,
    /// A log line matching a known-error pattern.
    ConformanceKnownError,
    /// A log line that could not be classified at all.
    ConformanceUnclassified,
    /// A log-triggered assertion evaluation failed.
    AssertionLog,
    /// A one-off (step-timeout) timer-triggered assertion failed.
    AssertionOneOffTimer,
    /// The periodic health-check assertion failed.
    AssertionPeriodicTimer,
}

impl DetectionSource {
    /// Whether the detection came from conformance checking rather than
    /// assertion evaluation (the §V.D split).
    pub fn is_conformance(self) -> bool {
        matches!(
            self,
            DetectionSource::ConformanceUnfit
                | DetectionSource::ConformanceKnownError
                | DetectionSource::ConformanceUnclassified
        )
    }

    /// The stable tag used for causal events and journal records.
    pub fn tag(self) -> &'static str {
        match self {
            DetectionSource::ConformanceUnfit => "conformance-unfit",
            DetectionSource::ConformanceKnownError => "conformance-known-error",
            DetectionSource::ConformanceUnclassified => "conformance-unclassified",
            DetectionSource::AssertionLog => "assertion-log",
            DetectionSource::AssertionOneOffTimer => "assertion-oneoff-timer",
            DetectionSource::AssertionPeriodicTimer => "assertion-periodic-timer",
        }
    }
}

/// One detected error, with its (possibly skipped) diagnosis.
#[derive(Debug, Clone)]
pub struct Detection {
    /// When the error was detected.
    pub at: SimTime,
    /// The detecting mechanism.
    pub source: DetectionSource,
    /// Human-readable description (assertion text or offending log line).
    pub description: String,
    /// The process step the error is associated with, if known.
    pub step: Option<String>,
    /// The assertion key that selects the fault tree for this detection
    /// (the master-tree key when the detection did not name an assertion).
    pub key: String,
    /// The cloud instance implicated, if known.
    pub instance: Option<InstanceId>,
    /// The diagnosis report; `None` when diagnosis was suppressed by the
    /// per-key cooldown (an identical diagnosis just ran).
    pub diagnosis: Option<DiagnosisReport>,
    /// The `detection` causal event recorded for this error, anchoring the
    /// incident timeline (see `pod_obs::incidents`).
    pub event: Option<pod_obs::EventId>,
}

impl Detection {
    /// A canonical one-line rendering of this detection.
    ///
    /// The fingerprint covers everything semantically observable — time,
    /// source, description, step, instance, and the diagnosis verdict with
    /// its identified root causes — so two runs are byte-identical exactly
    /// when they detected and diagnosed the same things at the same virtual
    /// times. Transient details (event ids, span ids) are excluded.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;

        let mut out = String::new();
        let _ = write!(
            out,
            "{}|{}|{}|step={}|instance={}",
            self.at.as_micros(),
            self.source.tag(),
            self.description,
            self.step.as_deref().unwrap_or("-"),
            self.instance.as_ref().map(|i| i.as_str()).unwrap_or("-"),
        );
        match &self.diagnosis {
            None => out.push_str("|diagnosis=skipped"),
            Some(report) => {
                let mut causes: Vec<&str> = report
                    .root_causes
                    .iter()
                    .map(|c| c.node_id.as_str())
                    .collect();
                causes.sort_unstable();
                let _ = write!(
                    out,
                    "|diagnosis={:?}:{}",
                    report.verdict(),
                    causes.join(",")
                );
            }
        }
        out
    }
}

/// A notice fired synchronously by the engine's optional detection hook
/// (see `PodEngine::set_detection_hook`) the moment something happens, so a
/// recovery dispatcher can react eagerly instead of sweeping detections at
/// the end of the run.
#[derive(Debug, Clone)]
pub enum EngineNotice {
    /// An error was just detected (and, when `dispatched`, a diagnosis was
    /// scheduled). `candidates` lists the still-plausible root-cause node
    /// ids of the selected fault tree, most probable first — the speculation
    /// set for plan pre-staging.
    Detected {
        /// Index of the detection in `RunSummary::detections`.
        detection_index: usize,
        /// Detection time.
        at: SimTime,
        /// The detecting mechanism.
        source: DetectionSource,
        /// The fault-tree selection key.
        key: String,
        /// The process step, if known.
        step: Option<String>,
        /// The implicated instance, if known.
        instance: Option<InstanceId>,
        /// Whether a diagnosis was scheduled (false when suppressed by the
        /// per-key cooldown).
        dispatched: bool,
        /// Plausible root causes, ordered by prior probability descending.
        candidates: Vec<String>,
    },
    /// A scheduled diagnosis just completed; `detection` carries the filled
    /// report.
    Diagnosed {
        /// Index of the detection in `RunSummary::detections`.
        detection_index: usize,
        /// The detection, including its completed `diagnosis`.
        detection: Detection,
    },
}

/// Summary statistics of one monitored operation run.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// All detections, in order.
    pub detections: Vec<Detection>,
    /// Log events submitted to conformance checking.
    pub conformance_events: usize,
    /// Conformance events classified as errors (unfit/error/unclassified).
    pub conformance_errors: usize,
    /// Assertion evaluations performed (all triggers).
    pub assertions_evaluated: usize,
    /// Whether the trace reached the process end event.
    pub trace_complete: bool,
}

impl RunSummary {
    /// Detections that ran a full diagnosis.
    pub fn diagnosed(&self) -> impl Iterator<Item = &Detection> {
        self.detections.iter().filter(|d| d.diagnosis.is_some())
    }

    /// Whether any detection came from conformance checking.
    pub fn any_conformance_detection(&self) -> bool {
        self.detections.iter().any(|d| d.source.is_conformance())
    }

    /// A canonical multi-line rendering of every detection, in order.
    ///
    /// Two runs of the same operation produced byte-identical digests iff
    /// they behaved identically — the reproducibility property the gateway
    /// soak test asserts.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for d in &self.detections {
            out.push_str(&d.fingerprint());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_classification() {
        assert!(DetectionSource::ConformanceUnfit.is_conformance());
        assert!(DetectionSource::ConformanceKnownError.is_conformance());
        assert!(!DetectionSource::AssertionLog.is_conformance());
        assert!(!DetectionSource::AssertionPeriodicTimer.is_conformance());
    }

    #[test]
    fn fingerprint_is_canonical_and_digest_joins() {
        let d = Detection {
            at: SimTime::from_millis(82_500),
            source: DetectionSource::AssertionLog,
            description: "instance failed health check".into(),
            step: Some("step4".into()),
            key: "instance-health".into(),
            instance: Some(InstanceId::new("i-7df34041")),
            diagnosis: None,
            event: None,
        };
        assert_eq!(
            d.fingerprint(),
            "82500000|assertion-log|instance failed health check\
             |step=step4|instance=i-7df34041|diagnosis=skipped"
        );
        let summary = RunSummary {
            detections: vec![d.clone(), d],
            ..RunSummary::default()
        };
        assert_eq!(summary.digest().lines().count(), 2);
        // Identical inputs produce byte-identical digests.
        assert_eq!(summary.digest(), summary.digest());
    }
}
