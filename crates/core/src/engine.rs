//! The POD-Diagnosis engine: local log processor wiring, conformance
//! service, assertion triggering, timers and error diagnosis — the online
//! half of Figure 1 of the paper.

use std::collections::HashMap;

use pod_assert::{
    AssertionEvaluator, AssertionLibrary, AssertionTrigger, CloudAssertion, ConsistentApi, TimerId,
    TimerService,
};
use pod_cloud::{Cloud, InstanceId};
use pod_faulttree::{
    DiagnosisContext, DiagnosisEngine, DiagnosisReport, DiagnosisVerdict, FaultTreeRepository,
};
use pod_log::{
    ImportantLineForwarder, LogEvent, LogStorage, NoiseFilter, Pipeline, PipelineOutput,
    ProcessAnnotator, ProcessContext, Severity, TimerSetter, Trigger,
};
use pod_obs::{Counter, Exemplar, LogHistogram, Obs};
use pod_process::{Conformance, ConformanceChecker};
use pod_regex::{Regex, RegexSet};
use pod_sim::{LatencyModel, SimDuration, SimRng, SimTime};

use crate::config::{PodConfig, SharedEnv};
use crate::detection::{Detection, DetectionSource, EngineNotice, RunSummary};

/// The assertion key of the master fault tree, used as a fallback for
/// detections without a more specific tree.
const MASTER_TREE_KEY: &str = "asg-has-n-instances-with-version";

/// Cached handles for the engine's own metrics.
#[derive(Debug)]
struct EngineMetrics {
    detections: Counter,
    diagnoses: Counter,
    /// Log-scale so one layout covers both the ≈10 ms common case and the
    /// multi-second diagnosis-coupled tail; tail observations carry an
    /// exemplar naming the run and causal event.
    replay_latency_us: LogHistogram,
}

impl EngineMetrics {
    fn new(obs: &Obs) -> EngineMetrics {
        EngineMetrics {
            detections: obs.counter("engine.detections"),
            diagnoses: obs.counter("engine.diagnoses"),
            replay_latency_us: obs.log_histogram("conformance.replay_latency_us"),
        }
    }
}

/// The optional synchronous detection hook (fast-path recovery dispatch).
/// Wrapped so `PodEngine` can keep deriving `Debug`.
type DetectionHookFn = Box<dyn FnMut(&EngineNotice)>;

#[derive(Default)]
struct DetectionHook(Option<DetectionHookFn>);

impl std::fmt::Debug for DetectionHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "DetectionHook(installed)"
        } else {
            "DetectionHook(none)"
        })
    }
}

#[derive(Debug, Clone)]
enum TimerPayload {
    /// A silent step did not complete in time.
    StepCompletion {
        /// Expected number of completed relaunches by now.
        expected_done: u32,
        /// The log line that armed the timer, so timer-triggered work still
        /// chains back to concrete log evidence.
        cause: Option<pod_obs::EventId>,
    },
    /// The operation-wide periodic health check.
    Periodic {
        /// The operation-start log line that started the timer.
        cause: Option<pod_obs::EventId>,
    },
    /// A dispatched diagnosis for an earlier detection.
    Diagnose {
        /// Index of the detection in the summary.
        detection_index: usize,
        /// Fault-tree key.
        key: String,
        /// Process step of the error context.
        step: Option<String>,
        /// Implicated instance.
        instance: Option<InstanceId>,
        /// The detection event the diagnosis answers.
        cause: Option<pod_obs::EventId>,
    },
}

/// The online POD-Diagnosis engine for one operation execution (one process
/// instance / trace).
///
/// Feed it every operation-log line with [`PodEngine::ingest`]; call
/// [`PodEngine::poll`] at idle moments so timers can fire; collect the
/// [`RunSummary`] with [`PodEngine::finish`].
#[derive(Debug)]
pub struct PodEngine {
    cloud: Cloud,
    storage: LogStorage,
    env: SharedEnv,
    trace_id: String,
    process_id: String,
    pipeline: Pipeline,
    conformance: ConformanceChecker,
    known_errors: RegexSet,
    evaluator: AssertionEvaluator,
    diag: DiagnosisEngine,
    timers: TimerService<TimerPayload>,
    bindings: AssertionLibrary,
    trees: FaultTreeRepository,
    wait_activity: Option<String>,
    completion_activity: Option<String>,
    in_flight_activities: Vec<String>,
    step_timeout: SimDuration,
    periodic_interval: SimDuration,
    conformance_latency: SimDuration,
    diagnosis_cooldown: SimDuration,
    diagnosis_dispatch_delay: SimDuration,
    diagnosis_overhead: LatencyModel,
    rng: SimRng,
    periodic_assertions: Vec<CloudAssertion>,
    batch_size: u32,
    op_started: Option<SimTime>,
    periodic_timer: Option<TimerId>,
    step_timer: Option<TimerId>,
    last_done: u32,
    last_diagnosis_at: HashMap<String, SimTime>,
    summary: RunSummary,
    metrics: EngineMetrics,
    hook: DetectionHook,
}

impl PodEngine {
    /// Builds an engine for one trace.
    ///
    /// # Errors
    ///
    /// Fails if any configured pattern does not compile.
    pub fn new(
        cloud: Cloud,
        storage: LogStorage,
        env: SharedEnv,
        config: PodConfig,
        trace_id: impl Into<String>,
    ) -> Result<PodEngine, pod_regex::ParseError> {
        let trace_id = trace_id.into();
        let process_id = config.model.name().to_string();
        let mut pipeline = Pipeline::new();
        if !config.relevance_patterns.is_empty() {
            pipeline.add_stage(Box::new(NoiseFilter::keep(RegexSet::new(
                &config.relevance_patterns,
            )?)));
        }
        pipeline.add_stage(Box::new(TimerSetter::new(
            Regex::new(&config.operation_start_pattern)?,
            Regex::new(&config.operation_end_pattern)?,
            trace_id.clone(),
        )));
        pipeline.add_stage(Box::new(ProcessAnnotator::new(
            config.rules.clone(),
            process_id.clone(),
            trace_id.clone(),
        )));
        pipeline.add_stage(Box::new(ImportantLineForwarder));
        // All components share the cloud's observability context, so the
        // whole run lands in one trace and one metrics registry.
        pipeline.set_obs(cloud.obs());

        let api = ConsistentApi::new(cloud.clone(), config.retry_policy.clone());
        let evaluator = AssertionEvaluator::new(api, storage.clone());
        let diag_api = ConsistentApi::new(cloud.clone(), config.diagnosis_retry_policy.clone());
        let diag = DiagnosisEngine::new(diag_api, storage.clone()).with_order(config.test_order);
        Ok(PodEngine {
            metrics: EngineMetrics::new(cloud.obs()),
            conformance: ConformanceChecker::new(&config.model).with_obs(cloud.obs()),
            known_errors: RegexSet::new(&config.known_error_patterns)?,
            pipeline,
            evaluator,
            diag,
            timers: TimerService::new(),
            bindings: config.bindings,
            trees: config.trees,
            wait_activity: config.wait_activity,
            completion_activity: config.completion_activity,
            in_flight_activities: config.in_flight_activities,
            step_timeout: config.step_timeout,
            periodic_interval: config.periodic_interval,
            conformance_latency: config.conformance_latency,
            diagnosis_cooldown: config.diagnosis_cooldown,
            diagnosis_dispatch_delay: config.diagnosis_dispatch_delay,
            diagnosis_overhead: config.diagnosis_overhead,
            rng: SimRng::seed_from(config.engine_seed ^ 0x90D_D1A6),
            periodic_assertions: config.periodic_assertions,
            batch_size: config.batch_size,
            cloud,
            storage,
            env,
            trace_id,
            process_id,
            op_started: None,
            periodic_timer: None,
            step_timer: None,
            last_done: 0,
            last_diagnosis_at: HashMap::new(),
            summary: RunSummary::default(),
            hook: DetectionHook::default(),
        })
    }

    /// Installs the fast-path detection hook: a closure called synchronously
    /// with an [`EngineNotice`] the moment an error is detected and again
    /// the moment its diagnosis completes, so a recovery dispatcher can
    /// pre-stage plans and dispatch repairs eagerly instead of sweeping
    /// `RunSummary::detections` after the operation ends. The hook runs on
    /// the engine's thread and may advance the shared sim clock (e.g. to
    /// execute a repair); it must not re-enter the engine.
    pub fn set_detection_hook(&mut self, hook: impl FnMut(&EngineNotice) + 'static) {
        self.hook = DetectionHook(Some(Box::new(hook)));
    }

    fn notify(&mut self, notice: EngineNotice) {
        if let Some(mut hook) = self.hook.0.take() {
            hook(&notice);
            if self.hook.0.is_none() {
                self.hook.0 = Some(hook);
            }
        }
    }

    /// The trace (process-instance) id this engine monitors.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Detections so far.
    pub fn detections(&self) -> &[Detection] {
        &self.summary.detections
    }

    /// The process model id this engine monitors (e.g. `rolling-upgrade`).
    pub fn process_id(&self) -> &str {
        &self.process_id
    }

    /// Ingests one raw operation-log line.
    pub fn ingest(&mut self, event: LogEvent) {
        self.ingest_line(event);
        self.fire_due_timers();
    }

    /// Ingests a batch of raw lines, firing due timers once at the end.
    ///
    /// This is the gateway's amortized entry point: the whole batch runs
    /// through the pipeline's batch-aware API (one step-limit sample per
    /// batch), the causal-event ring handle is resolved once instead of per
    /// line, and the timer wheel is only consulted once per batch.
    pub fn ingest_batch(&mut self, events: impl IntoIterator<Item = LogEvent>) {
        let outs = self.pipeline.push_batch(events.into_iter().collect());
        let ring = self.cloud.obs().events().clone();
        for out in outs {
            self.handle_pipeline_output(out, &ring);
        }
        self.fire_due_timers();
    }

    fn ingest_line(&mut self, event: LogEvent) {
        let out = self.pipeline.push(event);
        let ring = self.cloud.obs().events().clone();
        self.handle_pipeline_output(out, &ring);
    }

    /// Applies one line's pipeline output: forwarded events go to central
    /// storage and triggers run scoped under the line's *pending* `log.line`
    /// causal root, so conformance verdicts, assertion results and timer
    /// arming all chain back to the line that caused them. The root only
    /// materialises in the event ring when something actually emits under
    /// it — healthy lines (fit verdicts, passing assertions) record nothing.
    fn handle_pipeline_output(&mut self, out: PipelineOutput, ring: &pod_obs::EventLog) {
        self.storage.extend(out.forwarded);
        let _scope = match out.cause {
            Some(c) => self.cloud.obs().scope_cause("log.line", c.source, c.attrs),
            None => ring.scope(None),
        };
        for trigger in out.triggers {
            match trigger {
                Trigger::Conformance(e) => self.on_conformance(e),
                Trigger::Assertion { activity, event } => self.on_assertion(activity, event),
                Trigger::PeriodicStart { .. } => self.on_operation_start(),
                Trigger::PeriodicStop { .. } => self.on_operation_end(),
            }
        }
    }

    /// Lets due timers fire; call at idle moments (e.g. orchestrator poll
    /// points).
    pub fn poll(&mut self) {
        self.fire_due_timers();
    }

    /// Finalises the run and returns the summary. Pending dispatched
    /// diagnoses are executed before returning.
    pub fn finish(&mut self) -> RunSummary {
        if let Some(id) = self.periodic_timer.take() {
            self.timers.cancel(id);
        }
        if let Some(id) = self.step_timer.take() {
            self.timers.cancel(id);
        }
        // Let any dispatched-but-not-yet-started diagnosis run.
        self.cloud
            .clock()
            .advance(self.diagnosis_dispatch_delay + SimDuration::from_millis(1));
        self.fire_due_timers();
        self.summary.trace_complete = self.conformance.is_complete(&self.trace_id);
        self.summary.clone()
    }

    // -----------------------------------------------------------------
    // Conformance
    // -----------------------------------------------------------------

    fn on_conformance(&mut self, event: LogEvent) {
        let replay_started = self.cloud.clock().now();
        // The conformance service call costs ≈ 10 ms.
        self.cloud.clock().advance(self.conformance_latency);
        self.summary.conformance_events += 1;
        let activity = event.context.as_ref().and_then(|c| c.step_id.clone());
        let verdict = match &activity {
            Some(act) => self.conformance.replay(&self.trace_id, act),
            None => {
                let known = self.known_errors.first_match(&event.message).is_some();
                self.conformance.record_error(&self.trace_id, known)
            }
        };
        // Outcome-conditional tracing: fit replays are counted by the
        // checker and measured by `replay_latency_us` (with exemplars);
        // only non-fit replays materialise a `conformance.replay` span,
        // retroactively covering the whole service call.
        if verdict.is_error() {
            let mut attrs = Vec::with_capacity(2);
            if let Some(act) = &activity {
                attrs.push(("activity", act.to_string()));
            }
            attrs.push(("verdict", verdict.tag().to_string()));
            self.cloud
                .obs()
                .record_span("conformance.replay", replay_started, attrs);
        }
        let replay_done = self.cloud.clock().now();
        let replay_us = replay_done.duration_since(replay_started).as_micros();
        self.metrics
            .replay_latency_us
            .record_with(replay_us, || Exemplar {
                value: replay_us,
                at: replay_done,
                event: self.conformance.last_verdict_event().map(|id| id.get()),
                labels: vec![
                    ("op".to_string(), self.trace_id.clone()),
                    ("verdict".to_string(), verdict.tag().to_string()),
                ],
            });
        self.log_conformance(&event, &verdict);
        if verdict.is_error() {
            self.summary.conformance_errors += 1;
            let source = match &verdict {
                Conformance::Unfit { .. } => DetectionSource::ConformanceUnfit,
                Conformance::Error => DetectionSource::ConformanceKnownError,
                _ => DetectionSource::ConformanceUnclassified,
            };
            let instance = extract_instance(&event);
            let step = activity.clone().or_else(|| {
                self.conformance
                    .last_activity(&self.trace_id)
                    .map(str::to_string)
            });
            let description = format!("{} [{}]", event.message, verdict.tag());
            let cause = self.conformance.last_verdict_event();
            self.detect(source, None, description, step, instance, cause);
        }
        // Step-timer management from process context.
        if let Some(act) = &activity {
            if self.wait_activity.as_deref() == Some(act.as_str()) {
                self.arm_step_timer();
            }
            if self.completion_activity.as_deref() == Some(act.as_str()) {
                if let Some(id) = self.step_timer.take() {
                    self.timers.cancel(id);
                }
            }
        }
    }

    fn log_conformance(&self, event: &LogEvent, verdict: &Conformance) {
        let severity = if verdict.is_error() {
            Severity::Error
        } else {
            Severity::Info
        };
        let extra = match verdict {
            Conformance::Unfit { expected, skipped } => format!(
                " expected=[{}] hypothesised-skips=[{}]",
                expected.join(","),
                skipped.join(",")
            ),
            _ => String::new(),
        };
        self.storage.append(
            LogEvent::new(
                self.cloud.clock().now(),
                "conformance.log",
                format!(
                    "[conformance] [{}] [{}]{extra} {}",
                    self.trace_id,
                    verdict.tag(),
                    event.message
                ),
            )
            .with_type("conformance")
            .with_tag(verdict.tag())
            .with_severity(severity),
        );
    }

    // -----------------------------------------------------------------
    // Assertions
    // -----------------------------------------------------------------

    fn on_assertion(&mut self, activity: String, event: LogEvent) {
        if let Some(done) = event.field("done").and_then(|d| d.parse::<u32>().ok()) {
            self.last_done = done;
        }
        let bound = self.bindings.for_activity(&activity).to_vec();
        for binding in bound {
            let env = self.env.snapshot();
            let Some(assertion) = binding.resolve(Some(&event), env.expected_count) else {
                continue;
            };
            let ctx = event.context.clone().unwrap_or_else(|| {
                ProcessContext::new(self.process_id.clone(), self.trace_id.clone())
            });
            let record =
                self.evaluator
                    .evaluate(&assertion, &env, AssertionTrigger::Log, Some(&ctx));
            self.summary.assertions_evaluated += 1;
            if record.is_failure() {
                let instance = extract_instance(&event);
                self.detect(
                    DetectionSource::AssertionLog,
                    Some(assertion.key()),
                    format!("assertion failed: {}", record.description),
                    Some(activity.clone()),
                    instance,
                    record.event,
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // Timers
    // -----------------------------------------------------------------

    fn on_operation_start(&mut self) {
        let now = self.cloud.clock().now();
        self.op_started = Some(now);
        // Periodic checks chain back to the operation-start log line.
        let cause = self.cloud.obs().events().current_cause();
        let id = self.timers.schedule_periodic(
            now + self.periodic_interval,
            self.periodic_interval,
            TimerPayload::Periodic { cause },
        );
        self.periodic_timer = Some(id);
    }

    fn on_operation_end(&mut self) {
        if let Some(id) = self.periodic_timer.take() {
            self.timers.cancel(id);
        }
        if let Some(id) = self.step_timer.take() {
            self.timers.cancel(id);
        }
    }

    fn arm_step_timer(&mut self) {
        if let Some(id) = self.step_timer.take() {
            self.timers.cancel(id);
        }
        let at = self.cloud.clock().now() + self.step_timeout;
        // A timeout firing later still chains to the wait-activity line
        // that armed it.
        let cause = self.cloud.obs().events().current_cause();
        let id = self.timers.schedule_once(
            at,
            TimerPayload::StepCompletion {
                expected_done: self.last_done + self.batch_size,
                cause,
            },
        );
        self.step_timer = Some(id);
    }

    fn fire_due_timers(&mut self) {
        let now = self.cloud.clock().now();
        let due = self.timers.due(now);
        for (_id, _at, payload) in due {
            match payload {
                TimerPayload::StepCompletion {
                    expected_done,
                    cause,
                } => {
                    self.step_timer = None;
                    self.on_step_timeout(expected_done, cause);
                }
                TimerPayload::Periodic { cause } => self.on_periodic_check(cause),
                TimerPayload::Diagnose {
                    detection_index,
                    key,
                    step,
                    instance,
                    cause,
                } => {
                    let obs = self.cloud.obs().clone();
                    let dispatch = match cause {
                        Some(c) => obs.event_under(c, "diagnosis.dispatch", &key),
                        None => obs.event("diagnosis.dispatch", &key),
                    };
                    // Fault-tree tests, causes and the verdict chain under
                    // the dispatch event.
                    let report = {
                        let _scope = obs.events().scope(Some(dispatch.id()));
                        self.run_diagnosis(&key, step, instance)
                    };
                    if let Some(d) = self.summary.detections.get_mut(detection_index) {
                        d.diagnosis = Some(report);
                    }
                    if self.hook.0.is_some() {
                        if let Some(detection) =
                            self.summary.detections.get(detection_index).cloned()
                        {
                            self.notify(EngineNotice::Diagnosed {
                                detection_index,
                                detection,
                            });
                        }
                    }
                }
            }
        }
    }

    /// A silent step exceeded its 95th-percentile duration: evaluate the
    /// post-step assertion anyway. Late-but-successful runs make this the
    /// paper's first false-positive class.
    fn on_step_timeout(&mut self, expected_done: u32, cause: Option<pod_obs::EventId>) {
        let env = self.env.snapshot();
        let assertion = CloudAssertion::AsgHasInstancesWithVersion {
            count: expected_done,
        };
        let step = self.completion_activity.clone();
        let ctx = {
            let mut c = ProcessContext::new(self.process_id.clone(), self.trace_id.clone());
            if let Some(s) = &step {
                c = c.with_step(s.clone());
            }
            c
        };
        let record = {
            let events = self.cloud.obs().events().clone();
            let _scope = events.scope(cause);
            self.evaluator
                .evaluate(&assertion, &env, AssertionTrigger::OneOffTimer, Some(&ctx))
        };
        self.summary.assertions_evaluated += 1;
        if record.is_failure() {
            // Timer-based: no instance id in the context (limited
            // information — the paper's first wrong-diagnosis class).
            self.detect(
                DetectionSource::AssertionOneOffTimer,
                Some(assertion.key()),
                format!("step timeout: {}", record.description),
                step,
                None,
                record.event,
            );
        }
    }

    /// The periodic, process-aware health check: desired capacity must
    /// match the expectation and the active count may only dip by the
    /// in-flight replacement batch.
    fn on_periodic_check(&mut self, cause: Option<pod_obs::EventId>) {
        let env = self.env.snapshot();
        let in_flight = self
            .conformance
            .last_activity(&self.trace_id)
            .is_some_and(|act| self.in_flight_activities.iter().any(|a| a == act));
        let floor = if in_flight {
            env.expected_count.saturating_sub(self.batch_size)
        } else {
            env.expected_count
        };
        let mut checks = vec![
            CloudAssertion::AsgDesiredCapacity {
                count: env.expected_count,
            },
            CloudAssertion::AsgActiveCountAtLeast { count: floor },
        ];
        checks.extend(self.periodic_assertions.iter().cloned());
        let ctx = ProcessContext::new(self.process_id.clone(), self.trace_id.clone());
        for assertion in checks {
            let record = {
                let events = self.cloud.obs().events().clone();
                let _scope = events.scope(cause);
                self.evaluator.evaluate(
                    &assertion,
                    &env,
                    AssertionTrigger::PeriodicTimer,
                    Some(&ctx),
                )
            };
            self.summary.assertions_evaluated += 1;
            if record.is_failure() {
                self.detect(
                    DetectionSource::AssertionPeriodicTimer,
                    Some(assertion.key()),
                    format!("periodic check failed: {}", record.description),
                    None,
                    None,
                    record.event,
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // Detection & diagnosis
    // -----------------------------------------------------------------

    fn detect(
        &mut self,
        source: DetectionSource,
        assertion_key: Option<&str>,
        description: String,
        step: Option<String>,
        instance: Option<InstanceId>,
        cause: Option<pod_obs::EventId>,
    ) {
        let at = self.cloud.clock().now();
        self.metrics.detections.incr();
        let obs = self.cloud.obs();
        let emitted = match cause {
            Some(c) => obs.event_under(c, "detection", source.tag()),
            None => obs.event("detection", source.tag()),
        };
        emitted.attr("description", &description);
        if let Some(step) = &step {
            emitted.attr("step", step);
        }
        if let Some(instance) = &instance {
            emitted.attr("instance", instance);
        }
        // Assertion failures select the tree for the failed assertion;
        // conformance detections use the master tree.
        let key = assertion_key.unwrap_or(MASTER_TREE_KEY).to_string();
        let detection_index = self.summary.detections.len();
        self.summary.detections.push(Detection {
            at,
            source,
            description,
            step: step.clone(),
            key: key.clone(),
            instance: instance.clone(),
            diagnosis: None,
            event: Some(emitted.id()),
        });
        // Respect the per-key cooldown, then dispatch the diagnosis with the
        // central-processor delay.
        let cooled_down = self
            .last_diagnosis_at
            .get(&key)
            .is_none_or(|last| at.duration_since(*last) >= self.diagnosis_cooldown);
        if cooled_down {
            self.last_diagnosis_at.insert(key.clone(), at);
            self.timers.schedule_once(
                at + self.diagnosis_dispatch_delay,
                TimerPayload::Diagnose {
                    detection_index,
                    key: key.clone(),
                    step: step.clone(),
                    instance: instance.clone(),
                    cause: Some(emitted.id()),
                },
            );
        }
        if self.hook.0.is_some() {
            // Speculation set for plan pre-staging: every root-cause leaf
            // of the selected tree surviving step pruning, most likely
            // first.
            let candidates = if cooled_down {
                self.plausible_causes(&key, step.as_deref())
            } else {
                Vec::new()
            };
            self.notify(EngineNotice::Detected {
                detection_index,
                at,
                source,
                key,
                step,
                instance,
                dispatched: cooled_down,
                candidates,
            });
        }
    }

    fn plausible_causes(&self, key: &str, step: Option<&str>) -> Vec<String> {
        self.trees
            .select(key)
            .or_else(|| self.trees.select(MASTER_TREE_KEY))
            .map(|tree| {
                tree.plausible_root_causes(step)
                    .into_iter()
                    .map(|n| n.id.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn run_diagnosis(
        &mut self,
        key: &str,
        step: Option<String>,
        instance: Option<InstanceId>,
    ) -> DiagnosisReport {
        let tree = self
            .trees
            .select(key)
            .or_else(|| self.trees.select(MASTER_TREE_KEY))
            .expect("repository provides the master tree");
        let ctx = DiagnosisContext {
            env: self.env.snapshot(),
            step,
            instance,
            operation_started: self.op_started.unwrap_or(SimTime::ZERO),
        };
        let span = self.cloud.obs().span("engine.diagnosis");
        span.attr("tree", key);
        self.metrics.diagnoses.incr();
        // Service overhead: tree selection, instantiation, pruning, log
        // context collection.
        let overhead = self.diagnosis_overhead.sample(&mut self.rng);
        let started = self.cloud.clock().now();
        self.cloud.clock().advance(overhead);
        let mut report = self.diag.diagnose(tree, &ctx);
        report.started_at = started;
        report.duration += overhead;
        span.attr(
            "verdict",
            match report.verdict() {
                DiagnosisVerdict::RootCauseIdentified => "root-cause-identified",
                DiagnosisVerdict::ErrorConfirmedCauseUnknown => "cause-unknown",
                DiagnosisVerdict::NoRootCauseIdentified => "no-root-cause",
            },
        );
        self.last_diagnosis_at
            .insert(key.to_string(), self.cloud.clock().now());
        report
    }
}

/// Extracts the implicated instance id from an annotated event.
fn extract_instance(event: &LogEvent) -> Option<InstanceId> {
    event
        .context
        .as_ref()
        .and_then(|c| c.cloud_instance_id.clone())
        .or_else(|| event.field("instanceid").map(str::to_string))
        .map(InstanceId::new)
}
