//! Tests documenting the paper's false-positive and wrong-diagnosis
//! classes (§VI.A) as engine-level behaviours.

use pod_assert::RetryPolicy;
use pod_cloud::{Cloud, CloudConfig};
use pod_core::{DetectionSource, PodConfig, PodEngine, RunSummary, SharedEnv};
use pod_faulttree::{rolling_upgrade_repository, steps, DiagnosisVerdict};
use pod_log::{LogEvent, LogStorage};
use pod_orchestrator::{process_def, RollingUpgrade, UpgradeConfig, UpgradeObserver};
use pod_sim::{Clock, SimDuration, SimRng, SimTime};

struct World {
    cloud: Cloud,
    config: UpgradeConfig,
    env: SharedEnv,
    storage: LogStorage,
}

fn build_world(seed: u64) -> World {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig::default(),
    );
    let ami_v1 = cloud.admin_create_ami("app", "1.0");
    let ami_v2 = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc = cloud.admin_create_launch_config("lc-v1", ami_v1, "m1.small", kp.clone(), sg.clone());
    let asg = cloud.admin_create_asg("pm--asg", lc, 1, 30, 4, Some(elb.clone()));
    let config = UpgradeConfig::new("pm", asg.clone(), elb.clone(), ami_v2.clone(), "2.0");
    let env = SharedEnv::new(pod_assert::ExpectedEnv {
        asg,
        elb,
        launch_config: pod_cloud::LaunchConfigName::new(format!(
            "{}-run-1",
            config.new_launch_config
        )),
        expected_ami: ami_v2,
        expected_version: "2.0".into(),
        expected_key_pair: kp,
        expected_security_group: sg,
        expected_instance_type: "m1.small".into(),
        expected_count: 4,
    });
    World {
        cloud,
        config,
        env,
        storage: LogStorage::new(),
    }
}

fn pod_config(step_timeout: SimDuration) -> PodConfig {
    let mut config = PodConfig::new(
        process_def::rolling_upgrade_model(),
        process_def::rolling_upgrade_rules(),
        process_def::rolling_upgrade_assertions(),
        rolling_upgrade_repository(true),
    );
    config.relevance_patterns = process_def::relevance_patterns()
        .into_iter()
        .map(str::to_string)
        .collect();
    config.known_error_patterns = process_def::known_error_patterns()
        .into_iter()
        .map(str::to_string)
        .collect();
    config.operation_start_pattern = process_def::operation_start_pattern().to_string();
    config.operation_end_pattern = process_def::operation_end_pattern().to_string();
    config.wait_activity = Some(steps::WAIT_ASG.to_string());
    config.completion_activity = Some(steps::READY.to_string());
    config.in_flight_activities = vec![
        steps::DEREGISTER.to_string(),
        steps::TERMINATE.to_string(),
        steps::WAIT_ASG.to_string(),
    ];
    config.step_timeout = step_timeout;
    config.retry_policy = RetryPolicy {
        max_retries: 3,
        timeout: SimDuration::from_secs(15),
        ..RetryPolicy::default()
    };
    config
}

/// Runs a healthy upgrade while an optional action fires at a given time.
fn run_with_action(
    world: &World,
    engine: PodEngine,
    action_at: Option<SimTime>,
    action: impl FnMut(&Cloud, &SharedEnv),
) -> RunSummary {
    struct Obs<'e, F: FnMut(&Cloud, &SharedEnv)> {
        engine: PodEngine,
        env: &'e SharedEnv,
        pending: Option<SimTime>,
        action: F,
    }
    impl<F: FnMut(&Cloud, &SharedEnv)> UpgradeObserver for Obs<'_, F> {
        fn on_log(&mut self, event: LogEvent) {
            self.engine.ingest(event);
        }
        fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
            if let Some(at) = self.pending {
                if now >= at {
                    self.pending = None;
                    (self.action)(cloud, self.env);
                }
            }
            self.engine.poll();
        }
    }
    let mut upgrade = RollingUpgrade::new(world.cloud.clone(), world.config.clone(), "run-1");
    let mut obs = Obs {
        engine,
        env: &world.env,
        pending: action_at,
        action,
    };
    upgrade.run(&mut obs);
    obs.engine.finish()
}

/// FP class 1: "error detection triggered due to timeout. … an operation is
/// running successfully, with late log appearance, which causes the
/// assertion evaluation to fail. However, in all such cases, our diagnosis
/// returned 'No root cause identified'."
#[test]
fn timeout_false_positives_diagnose_to_no_root_cause() {
    let world = build_world(201);
    // A step timeout far below the real replacement duration: every wait
    // "times out" although the upgrade is perfectly healthy.
    let engine = PodEngine::new(
        world.cloud.clone(),
        world.storage.clone(),
        world.env.clone(),
        pod_config(SimDuration::from_secs(20)),
        "run-1",
    )
    .unwrap();
    let summary = run_with_action(&world, engine, None, |_, _| {});
    let timer_detections: Vec<_> = summary
        .detections
        .iter()
        .filter(|d| d.source == DetectionSource::AssertionOneOffTimer)
        .collect();
    assert!(
        !timer_detections.is_empty(),
        "the tight timeout must fire during healthy waits"
    );
    for d in &timer_detections {
        if let Some(diag) = &d.diagnosis {
            assert_eq!(
                diag.verdict(),
                DiagnosisVerdict::NoRootCauseIdentified,
                "healthy-system timeout FPs must diagnose to no root cause: {d:#?}"
            );
        }
    }
}

/// FP class 2: "when the assertion evaluation asserts the number of
/// instances, the 'should-be' number is changed by another [operation]" —
/// a legitimate scale-in not yet reflected in the expected environment.
#[test]
fn expectation_race_is_detected_and_attributed_to_the_concurrent_operation() {
    let world = build_world(202);
    let engine = PodEngine::new(
        world.cloud.clone(),
        world.storage.clone(),
        world.env.clone(),
        pod_config(SimDuration::from_secs(300)),
        "run-1",
    )
    .unwrap();
    let asg = world.config.asg.clone();
    let summary = run_with_action(
        &world,
        engine,
        Some(SimTime::from_secs(100)),
        move |cloud, _env| {
            // A legitimate scale-in by another team; the configuration
            // repository (expected env) is NOT updated.
            let _ = cloud.update_asg(
                &asg,
                pod_cloud::AsgUpdate {
                    desired_capacity: Some(3),
                    ..pod_cloud::AsgUpdate::default()
                },
            );
        },
    );
    // The periodic process-aware check catches the mismatch...
    let periodic: Vec<_> = summary
        .detections
        .iter()
        .filter(|d| d.source == DetectionSource::AssertionPeriodicTimer)
        .collect();
    assert!(!periodic.is_empty(), "{:#?}", summary.detections);
    // ...and diagnosis attributes it to the concurrent capacity change.
    let attributed = summary
        .detections
        .iter()
        .filter_map(|d| d.diagnosis.as_ref())
        .flat_map(|r| r.root_causes.iter())
        .any(|c| c.node_id == "concurrent-capacity-change" || c.node_id == "concurrent-scale-in");
    assert!(attributed, "{:#?}", summary.detections);
}

/// Acknowledging the legitimate change stops further detections: once the
/// expected environment is updated, the periodic check is quiet again.
#[test]
fn acknowledged_scaling_stops_the_alarms() {
    let world = build_world(203);
    let engine = PodEngine::new(
        world.cloud.clone(),
        world.storage.clone(),
        world.env.clone(),
        pod_config(SimDuration::from_secs(300)),
        "run-1",
    )
    .unwrap();
    let asg = world.config.asg.clone();
    let summary = run_with_action(
        &world,
        engine,
        Some(SimTime::from_secs(80)),
        move |cloud, env| {
            let _ = cloud.update_asg(
                &asg,
                pod_cloud::AsgUpdate {
                    desired_capacity: Some(3),
                    ..pod_cloud::AsgUpdate::default()
                },
            );
            // Immediate operator acknowledgement.
            env.update(|e| e.expected_count = 3);
        },
    );
    let periodic_failures = summary
        .detections
        .iter()
        .filter(|d| d.source == DetectionSource::AssertionPeriodicTimer)
        .count();
    assert_eq!(
        periodic_failures, 0,
        "acknowledged changes must not alarm: {:#?}",
        summary.detections
    );
}
