//! End-to-end tests: the POD engine monitoring real rolling upgrades on the
//! simulated cloud.

use pod_assert::RetryPolicy;
use pod_cloud::{Cloud, CloudConfig};
use pod_core::{DetectionSource, PodConfig, PodEngine, RunSummary, SharedEnv};
use pod_faulttree::rolling_upgrade_repository;
use pod_log::{LogEvent, LogStorage};
use pod_orchestrator::{
    process_def, FaultInjector, FaultType, RollingUpgrade, UpgradeConfig, UpgradeObserver,
};
use pod_sim::{Clock, SimDuration, SimRng, SimTime};

struct World {
    cloud: Cloud,
    config: UpgradeConfig,
    env: SharedEnv,
    storage: LogStorage,
}

fn build_world(seed: u64, n: u32) -> World {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig::default(),
    );
    let ami_v1 = cloud.admin_create_ami("app", "1.0");
    let ami_v2 = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc = cloud.admin_create_launch_config("lc-v1", ami_v1, "m1.small", kp.clone(), sg.clone());
    let asg = cloud.admin_create_asg("pm--asg", lc, 1, 30, n, Some(elb.clone()));
    let config = UpgradeConfig::new("pm", asg.clone(), elb.clone(), ami_v2.clone(), "2.0");
    let env = SharedEnv::new(pod_assert::ExpectedEnv {
        asg,
        elb,
        launch_config: pod_cloud::LaunchConfigName::new(format!(
            "{}-run-1",
            config.new_launch_config
        )),
        expected_ami: ami_v2,
        expected_version: "2.0".into(),
        expected_key_pair: kp,
        expected_security_group: sg,
        expected_instance_type: "m1.small".into(),
        expected_count: n,
    });
    World {
        cloud,
        config,
        env,
        storage: LogStorage::new(),
    }
}

fn pod_config() -> PodConfig {
    let mut config = PodConfig::new(
        process_def::rolling_upgrade_model(),
        process_def::rolling_upgrade_rules(),
        process_def::rolling_upgrade_assertions(),
        rolling_upgrade_repository(true),
    );
    config.relevance_patterns = process_def::relevance_patterns()
        .into_iter()
        .map(str::to_string)
        .collect();
    config.known_error_patterns = process_def::known_error_patterns()
        .into_iter()
        .map(str::to_string)
        .collect();
    config.operation_start_pattern = process_def::operation_start_pattern().to_string();
    config.operation_end_pattern = process_def::operation_end_pattern().to_string();
    config.wait_activity = Some(pod_faulttree::steps::WAIT_ASG.to_string());
    config.completion_activity = Some(pod_faulttree::steps::READY.to_string());
    config.in_flight_activities = vec![
        pod_faulttree::steps::DEREGISTER.to_string(),
        pod_faulttree::steps::TERMINATE.to_string(),
        pod_faulttree::steps::WAIT_ASG.to_string(),
    ];
    config.retry_policy = RetryPolicy {
        max_retries: 4,
        timeout: SimDuration::from_secs(20),
        ..RetryPolicy::default()
    };
    config
}

fn run_upgrade(world: &World, engine: PodEngine) -> (RunSummary, pod_orchestrator::UpgradeReport) {
    run_upgrade_with(world, engine, None)
}

fn run_upgrade_with(
    world: &World,
    engine: PodEngine,
    inject: Option<(SimTime, FaultType)>,
) -> (RunSummary, pod_orchestrator::UpgradeReport) {
    struct Obs<'w> {
        engine: PodEngine,
        world: &'w World,
        inject: Option<(SimTime, FaultInjector)>,
        rng: SimRng,
    }
    impl UpgradeObserver for Obs<'_> {
        fn on_log(&mut self, event: LogEvent) {
            self.engine.ingest(event);
        }
        fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
            if let Some((at, _)) = &self.inject {
                if now >= *at {
                    let (_, mut injector) = self.inject.take().expect("checked above");
                    let lc = format!("{}-run-1", self.world.config.new_launch_config);
                    injector.inject(cloud, &self.world.config, &lc, &mut self.rng);
                }
            }
            self.engine.poll();
        }
    }
    let mut upgrade = RollingUpgrade::new(world.cloud.clone(), world.config.clone(), "run-1");
    let mut obs = Obs {
        engine,
        world,
        inject: inject.map(|(at, fault)| (at, FaultInjector::new(fault))),
        rng: SimRng::seed_from(777),
    };
    let report = upgrade.run(&mut obs);
    (obs.engine.finish(), report)
}

fn engine_for(world: &World) -> PodEngine {
    PodEngine::new(
        world.cloud.clone(),
        world.storage.clone(),
        world.env.clone(),
        pod_config(),
        "run-1",
    )
    .expect("patterns compile")
}

#[test]
fn healthy_upgrade_produces_no_detections() {
    let world = build_world(101, 4);
    let engine = engine_for(&world);
    let (summary, report) = run_upgrade(&world, engine);
    assert!(report.outcome.is_success());
    assert!(summary.trace_complete, "trace must replay to completion");
    assert!(
        summary.detections.is_empty(),
        "unexpected detections: {:#?}",
        summary
            .detections
            .iter()
            .map(|d| (&d.source, &d.description))
            .collect::<Vec<_>>()
    );
    assert!(summary.conformance_events > 10);
    assert_eq!(summary.conformance_errors, 0);
    assert!(summary.assertions_evaluated >= 12);
}

#[test]
fn wrong_ami_fault_is_detected_and_diagnosed() {
    let world = build_world(102, 4);
    let engine = engine_for(&world);
    // Inject fault type 1 shortly after the upgrade starts (after the LC
    // has been created).
    let inject_at = world.cloud.clock().now() + SimDuration::from_secs(120);
    let (summary, _report) = run_upgrade_with(
        &world,
        engine,
        Some((inject_at, FaultType::AmiChangedDuringUpgrade)),
    );
    assert!(
        !summary.detections.is_empty(),
        "the wrong-AMI fault must be detected"
    );
    // At least one diagnosis identifies the wrong-AMI root cause.
    let diagnosed: Vec<&str> = summary
        .detections
        .iter()
        .filter_map(|d| d.diagnosis.as_ref())
        .flat_map(|r| r.root_causes.iter().map(|c| c.node_id.as_str()))
        .collect();
    assert!(
        diagnosed.contains(&"lc-wrong-ami"),
        "diagnosed causes: {diagnosed:?}"
    );
}

#[test]
fn unavailable_ami_fault_triggers_conformance_and_assertion_detection() {
    let world = build_world(103, 4);
    let mut upgrade_config = world.config.clone();
    upgrade_config.max_wait_per_instance = SimDuration::from_secs(300);
    let world = World {
        config: upgrade_config,
        ..world
    };
    let engine = engine_for(&world);
    let inject_at = world.cloud.clock().now() + SimDuration::from_secs(100);
    let (summary, report) =
        run_upgrade_with(&world, engine, Some((inject_at, FaultType::AmiUnavailable)));
    assert!(!report.outcome.is_success(), "upgrade should stall");
    assert!(!summary.detections.is_empty());
    // The orchestrator surfaces cloud launch failures → conformance flags
    // known-error lines.
    assert!(
        summary.any_conformance_detection(),
        "sources: {:?}",
        summary
            .detections
            .iter()
            .map(|d| d.source)
            .collect::<Vec<_>>()
    );
    let diagnosed: Vec<&str> = summary
        .detections
        .iter()
        .filter_map(|d| d.diagnosis.as_ref())
        .flat_map(|r| r.root_causes.iter().map(|c| c.node_id.as_str()))
        .collect();
    assert!(
        diagnosed.contains(&"ami-unavailable"),
        "diagnosed causes: {diagnosed:?}"
    );
}

#[test]
fn diagnosis_times_are_seconds_scale() {
    let world = build_world(104, 4);
    let engine = engine_for(&world);
    let inject_at = world.cloud.clock().now() + SimDuration::from_secs(120);
    let (summary, _) = run_upgrade_with(
        &world,
        engine,
        Some((inject_at, FaultType::KeyPairManagementFault)),
    );
    let durations: Vec<f64> = summary
        .detections
        .iter()
        .filter_map(|d| d.diagnosis.as_ref())
        .map(|r| r.duration.as_secs_f64())
        .collect();
    assert!(!durations.is_empty());
    for d in &durations {
        assert!(*d > 0.1 && *d < 30.0, "diagnosis took {d}s");
    }
}

#[test]
fn detection_timestamps_are_monotonic() {
    let world = build_world(105, 4);
    let engine = engine_for(&world);
    let inject_at = world.cloud.clock().now() + SimDuration::from_secs(60);
    let (summary, _) = run_upgrade_with(
        &world,
        engine,
        Some((inject_at, FaultType::SecurityGroupConfigurationFault)),
    );
    let mut last = SimTime::ZERO;
    for d in &summary.detections {
        assert!(d.at >= last);
        last = d.at;
    }
}

#[test]
fn configuration_faults_are_invisible_to_conformance() {
    // Fault types 1-4 keep the log output normal; only assertions see them.
    let world = build_world(106, 4);
    let engine = engine_for(&world);
    let inject_at = world.cloud.clock().now() + SimDuration::from_secs(120);
    let (summary, _) = run_upgrade_with(
        &world,
        engine,
        Some((inject_at, FaultType::InstanceTypeChangedDuringUpgrade)),
    );
    assert!(!summary.detections.is_empty(), "fault must be detected");
    assert!(
        summary
            .detections
            .iter()
            .all(|d| !d.source.is_conformance()),
        "configuration faults must not be flagged by conformance: {:?}",
        summary
            .detections
            .iter()
            .map(|d| d.source)
            .collect::<Vec<_>>()
    );
    assert!(summary
        .detections
        .iter()
        .any(|d| d.source == DetectionSource::AssertionLog));
}
