//! End-to-end reproduction of the paper's wrong-diagnosis classes (§VI.A)
//! at campaign level.

use pod_eval::{execute_run, Campaign, CampaignConfig, RunPlan};
use pod_orchestrator::FaultType;
use pod_sim::SimDuration;

fn base_plans(mutate: impl FnOnce(&mut CampaignConfig)) -> Vec<RunPlan> {
    let mut config = CampaignConfig {
        runs_per_fault: 1,
        seed: 97,
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        large_cluster_every: 0,
        ..CampaignConfig::default()
    };
    mutate(&mut config);
    Campaign::new(config).plans()
}

/// Class 3: a transient fault — injected, then corrected racing the
/// dispatched diagnosis — is still *detected* (recall holds) but its
/// diagnosis comes back empty-handed.
#[test]
fn transient_fault_is_detected_but_wrongly_diagnosed() {
    let mut plan = base_plans(|_| {})
        .into_iter()
        .find(|p| p.fault == FaultType::KeyPairManagementFault)
        .unwrap();
    plan.transient_after = Some(SimDuration::from_secs(50));
    let record = execute_run(&plan);
    assert!(record.truth.reverted_at.is_some(), "the revert must happen");
    assert!(record.outcome.fault_detected, "{record:#?}");
    assert!(
        !record.outcome.fault_diagnosed_correctly,
        "the on-demand test runs after the revert and finds nothing: {record:#?}"
    );
}

/// The same fault, non-transient, diagnoses correctly — the control for the
/// test above.
#[test]
fn persistent_fault_is_diagnosed_correctly() {
    let plan = base_plans(|_| {})
        .into_iter()
        .find(|p| p.fault == FaultType::KeyPairManagementFault)
        .unwrap();
    let record = execute_run(&plan);
    assert!(record.truth.reverted_at.is_none());
    assert!(record.outcome.fault_detected);
    assert!(record.outcome.fault_diagnosed_correctly, "{record:#?}");
}

/// Class 2: the AMI changes *again* during the diagnosis window. The fault
/// stays detected; the diagnosis still points at a wrong AMI (both rogue
/// AMIs differ from the expected one), so accuracy is preserved — matching
/// the paper's observation that results differ *across* diagnosis rounds.
#[test]
fn ami_changed_again_keeps_detection() {
    let mut plan = base_plans(|_| {})
        .into_iter()
        .find(|p| p.fault == FaultType::AmiChangedDuringUpgrade)
        .unwrap();
    plan.reinject_after = Some(SimDuration::from_secs(40));
    let record = execute_run(&plan);
    assert!(record.outcome.fault_detected, "{record:#?}");
}

/// Class 4 end-to-end: with the un-amended trees and the shared account at
/// its limit, diagnosis stops at "launch failing" — detected interference,
/// wrong (uncredited) diagnosis; the amended trees name the limit.
#[test]
fn unamended_trees_miss_the_limit_cause() {
    let run = |amended: bool| {
        let mut plan = base_plans(move |c| c.amended_trees = amended)
            .into_iter()
            .find(|p| p.fault == FaultType::AmiChangedDuringUpgrade)
            .unwrap();
        plan.interferences = vec![(
            pod_sim::SimTime::from_secs(40),
            pod_orchestrator::Interference::OtherTeamCapacityPressure,
        )];
        execute_run(&plan)
    };
    let unamended = run(false);
    let amended = run(true);
    assert!(
        unamended.outcome.interference_detections >= 1,
        "{unamended:#?}"
    );
    assert!(amended.outcome.interference_detections >= 1, "{amended:#?}");
    // Only the amended trees credit the limit with a *correct* diagnosis.
    assert!(amended.outcome.interference_diagnosed_correctly >= 1);
    assert_eq!(
        unamended.outcome.interference_diagnosed_correctly, 0,
        "{unamended:#?}"
    );
}
