//! Timeout calibration: the engine's step timeout must be derivable from
//! historical timing profiles the way the paper derives it — "set based on
//! experiments, at the 95% percentile".

use pod_eval::{build_scenario, pod_config, ScenarioConfig};
use pod_mining::ActivityTimings;
use pod_orchestrator::{process_def, CollectingObserver, RollingUpgrade};

/// Collects the operation logs of `n` healthy training upgrades.
fn training_logs(n: u64) -> Vec<pod_log::LogEvent> {
    let mut events = Vec::new();
    for seed in 1000..1000 + n {
        let config = ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        };
        let scenario = build_scenario(&config);
        let mut upgrade = RollingUpgrade::new(
            scenario.cloud.clone(),
            scenario.upgrade.clone(),
            scenario.trace_id.clone(),
        );
        let mut obs = CollectingObserver::default();
        assert!(upgrade.run(&mut obs).outcome.is_success());
        events.extend(obs.events);
    }
    events
}

#[test]
fn step_timeout_is_consistent_with_the_mined_timing_profile() {
    let events = training_logs(25);
    let timings = ActivityTimings::measure(&events, &process_def::rolling_upgrade_rules(), |e| {
        e.field("taskid").map(str::to_string)
    });
    // The step the timer guards is the replacement wait, completed by READY.
    let ready = pod_faulttree::steps::READY;
    assert!(timings.sample_count(ready) >= 80, "enough training samples");
    let recommended = timings
        .recommended_timeout(ready)
        .expect("READY was observed");
    let configured = pod_config(&ScenarioConfig::default()).step_timeout;
    // The configured timeout sits in the calibration band around the mined
    // recommendation: late enough to pass the bulk of healthy waits, tight
    // enough that the heavy tail produces the paper's timeout FPs.
    let ratio = configured.as_secs_f64() / recommended.as_secs_f64();
    assert!(
        (0.7..=1.3).contains(&ratio),
        "configured {configured} vs mined recommendation {recommended} (ratio {ratio:.2})"
    );
}

#[test]
fn timing_profile_orders_steps_sensibly() {
    let events = training_logs(10);
    let timings = ActivityTimings::measure(&events, &process_def::rolling_upgrade_rules(), |e| {
        e.field("taskid").map(str::to_string)
    });
    use pod_faulttree::steps;
    // The replacement wait dominates every other step by far.
    let ready_mean = timings.mean(steps::READY).unwrap();
    for quick in [
        steps::UPDATE_LC,
        steps::SORT,
        steps::DEREGISTER,
        steps::TERMINATE,
    ] {
        let m = timings.mean(quick).unwrap();
        assert!(
            ready_mean.as_secs_f64() > 5.0 * m.as_secs_f64(),
            "{quick} mean {m} vs READY mean {ready_mean}"
        );
    }
}
