//! Property-based tests on the evaluation metrics and timing statistics.

use pod_eval::{MetricSet, RunOutcome, TimingStats};
use pod_sim::SimDuration;
use proptest::prelude::*;

fn arb_outcome() -> impl Strategy<Value = RunOutcome> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        0usize..4,
        0usize..4,
        0usize..4,
    )
        .prop_map(
            |(detected, correct, interference, fps, fp_none)| RunOutcome {
                fault_detected: detected,
                fault_diagnosed_correctly: detected && correct,
                interference_detections: interference,
                interference_diagnosed_correctly: interference, // all correct here
                false_positives: fps.max(fp_none),
                fp_diagnosed_as_none: fp_none.min(fps.max(fp_none)),
                raw_detections: 0,
                conformance_first: false,
                conformance_any: false,
                diagnosis_times: Vec::new(),
                first_cause_latencies: Vec::new(),
            },
        )
}

proptest! {
    /// All four Table-I metrics stay within [0, 1] for any outcome mix.
    #[test]
    fn metrics_are_bounded(outcomes in prop::collection::vec(arb_outcome(), 0..40)) {
        let mut m = MetricSet::default();
        for o in &outcomes {
            m.add(o);
        }
        for v in [
            m.detection_precision(),
            m.detection_recall(),
            m.diagnosis_accuracy_over_detected(),
            m.accuracy_rate(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
        prop_assert_eq!(m.runs, outcomes.len());
    }

    /// Merging metric sets equals accumulating the union of their runs.
    #[test]
    fn merge_equals_union(
        left in prop::collection::vec(arb_outcome(), 0..20),
        right in prop::collection::vec(arb_outcome(), 0..20),
    ) {
        let mut a = MetricSet::default();
        for o in &left {
            a.add(o);
        }
        let mut b = MetricSet::default();
        for o in &right {
            b.add(o);
        }
        a.merge(&b);
        let mut whole = MetricSet::default();
        for o in left.iter().chain(&right) {
            whole.add(o);
        }
        prop_assert_eq!(a, whole);
    }

    /// Recall is exactly detected/(detected+missed), and adding a detected
    /// run never lowers it.
    #[test]
    fn recall_is_monotone_in_detections(outcomes in prop::collection::vec(arb_outcome(), 1..30)) {
        let mut m = MetricSet::default();
        for o in &outcomes {
            m.add(o);
        }
        let before = m.detection_recall();
        m.add(&RunOutcome {
            fault_detected: true,
            ..RunOutcome::default()
        });
        prop_assert!(m.detection_recall() >= before - 1e-12);
    }

    /// TimingStats: percentile is monotone and bracketed by min/max, and
    /// the histogram always partitions the full sample.
    #[test]
    fn timing_stats_invariants(
        samples in prop::collection::vec(1u64..100_000, 1..60),
        q in 0.01f64..0.99,
        buckets in 1usize..12,
    ) {
        let stats = TimingStats::new(
            samples.iter().map(|ms| SimDuration::from_millis(*ms)).collect(),
        );
        let p = stats.percentile(q);
        prop_assert!(stats.min() <= p && p <= stats.max());
        prop_assert!(stats.min() <= stats.mean() && stats.mean() <= stats.max());
        let hist = stats.histogram(buckets);
        let total: usize = hist.iter().map(|(_, _, c)| c).sum();
        prop_assert_eq!(total, samples.len());
        // Bins are contiguous and ordered.
        for pair in hist.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0);
        }
    }

    /// Higher quantiles never decrease.
    #[test]
    fn percentile_monotone_in_q(samples in prop::collection::vec(1u64..10_000, 1..50)) {
        let stats = TimingStats::new(
            samples.iter().map(|ms| SimDuration::from_millis(*ms)).collect(),
        );
        let mut last = SimDuration::ZERO;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let p = stats.percentile(q);
            prop_assert!(p >= last);
            last = p;
        }
    }
}
