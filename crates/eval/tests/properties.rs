//! Property-based tests on the evaluation metrics and timing statistics.

use pod_eval::{MetricSet, RunOutcome, TimingStats};
use pod_sim::SimDuration;
use proptest::prelude::*;

fn arb_outcome() -> impl Strategy<Value = RunOutcome> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        0usize..4,
        0usize..4,
        0usize..4,
    )
        .prop_map(
            |(detected, correct, interference, fps, fp_none)| RunOutcome {
                fault_detected: detected,
                fault_diagnosed_correctly: detected && correct,
                interference_detections: interference,
                interference_diagnosed_correctly: interference, // all correct here
                false_positives: fps.max(fp_none),
                fp_diagnosed_as_none: fp_none.min(fps.max(fp_none)),
                raw_detections: 0,
                conformance_first: false,
                conformance_any: false,
                diagnosis_times: Vec::new(),
                first_cause_latencies: Vec::new(),
            },
        )
}

proptest! {
    /// All four Table-I metrics stay within [0, 1] for any outcome mix.
    #[test]
    fn metrics_are_bounded(outcomes in prop::collection::vec(arb_outcome(), 0..40)) {
        let mut m = MetricSet::default();
        for o in &outcomes {
            m.add(o);
        }
        for v in [
            m.detection_precision(),
            m.detection_recall(),
            m.diagnosis_accuracy_over_detected(),
            m.accuracy_rate(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
        prop_assert_eq!(m.runs, outcomes.len());
    }

    /// Merging metric sets equals accumulating the union of their runs.
    #[test]
    fn merge_equals_union(
        left in prop::collection::vec(arb_outcome(), 0..20),
        right in prop::collection::vec(arb_outcome(), 0..20),
    ) {
        let mut a = MetricSet::default();
        for o in &left {
            a.add(o);
        }
        let mut b = MetricSet::default();
        for o in &right {
            b.add(o);
        }
        a.merge(&b);
        let mut whole = MetricSet::default();
        for o in left.iter().chain(&right) {
            whole.add(o);
        }
        prop_assert_eq!(a, whole);
    }

    /// Recall is exactly detected/(detected+missed), and adding a detected
    /// run never lowers it.
    #[test]
    fn recall_is_monotone_in_detections(outcomes in prop::collection::vec(arb_outcome(), 1..30)) {
        let mut m = MetricSet::default();
        for o in &outcomes {
            m.add(o);
        }
        let before = m.detection_recall();
        m.add(&RunOutcome {
            fault_detected: true,
            ..RunOutcome::default()
        });
        prop_assert!(m.detection_recall() >= before - 1e-12);
    }

    /// TimingStats: percentile is monotone and bracketed by min/max, and
    /// the histogram always partitions the full sample.
    #[test]
    fn timing_stats_invariants(
        samples in prop::collection::vec(1u64..100_000, 1..60),
        q in 0.01f64..0.99,
        buckets in 1usize..12,
    ) {
        let stats = TimingStats::new(
            samples.iter().map(|ms| SimDuration::from_millis(*ms)).collect(),
        );
        let p = stats.percentile(q);
        prop_assert!(stats.min() <= p && p <= stats.max());
        prop_assert!(stats.min() <= stats.mean() && stats.mean() <= stats.max());
        let hist = stats.histogram(buckets);
        let total: usize = hist.iter().map(|(_, _, c)| c).sum();
        prop_assert_eq!(total, samples.len());
        // Bins are contiguous and ordered.
        for pair in hist.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0);
        }
    }

    /// Higher quantiles never decrease.
    #[test]
    fn percentile_monotone_in_q(samples in prop::collection::vec(1u64..10_000, 1..50)) {
        let stats = TimingStats::new(
            samples.iter().map(|ms| SimDuration::from_millis(*ms)).collect(),
        );
        let mut last = SimDuration::ZERO;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let p = stats.percentile(q);
            prop_assert!(p >= last);
            last = p;
        }
    }
}

mod fastpath {
    use pod_eval::{execute_run, Campaign, CampaignConfig, RunRecord};
    use proptest::prelude::*;

    /// What an incident's recovery looked like, timing excluded.
    fn recovery_shape(
        record: &RunRecord,
        cause: &str,
    ) -> Option<(String, Vec<String>, &'static str)> {
        record
            .recoveries
            .iter()
            .find(|rec| rec.run.root_cause == cause)
            .map(|rec| {
                (
                    rec.run.root_cause.clone(),
                    rec.run.plans_tried.clone(),
                    rec.run.outcome.tag(),
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The eager fast path and the end-of-run sweep are semantically
        /// equivalent: for every injected fault type, the first recovery
        /// of the expected root cause identifies the same cause, tries the
        /// same plan ladder, and reaches the same outcome in both modes —
        /// only the timestamps (and therefore MTTR) differ.
        #[test]
        fn eager_and_sweep_recoveries_are_equivalent(fault_idx in 0usize..8) {
            let base = CampaignConfig {
                runs_per_fault: 1,
                interference_fraction: 0.0,
                transient_fraction: 0.0,
                reinject_fraction: 0.0,
                large_cluster_every: 0,
                recovery: true,
                ..CampaignConfig::default()
            };
            let eager_plan = &Campaign::new(CampaignConfig {
                eager_recovery: true,
                ..base.clone()
            })
            .plans()[fault_idx];
            let sweep_plan = &Campaign::new(CampaignConfig {
                eager_recovery: false,
                ..base
            })
            .plans()[fault_idx];
            let eager = execute_run(eager_plan);
            let sweep = execute_run(sweep_plan);
            let cause = eager_plan.fault.expected_root_cause();
            let eager_shape = recovery_shape(&eager, cause);
            let sweep_shape = recovery_shape(&sweep, cause);
            prop_assert!(
                eager_shape.is_some(),
                "no eager recovery diagnosed {cause} for {:?}",
                eager_plan.fault
            );
            prop_assert_eq!(eager_shape, sweep_shape);
        }
    }
}

mod storm {
    use pod_eval::{collect_streams, replay_with_recovery, SoakConfig, SoakReport};
    use pod_gateway::GatewayConfig;
    use pod_recovery::StormConfig;
    use pod_sim::SimDuration;
    use proptest::prelude::*;

    fn run_storm(ops: usize, seed: u64, storm: &StormConfig) -> SoakReport {
        let config = SoakConfig {
            ops,
            seed,
            ..SoakConfig::default()
        };
        // Repairs mutate the per-tenant clouds, so every replay starts
        // from freshly collected (same-seed, deterministic) streams.
        replay_with_recovery(
            &collect_streams(&config),
            &GatewayConfig::default(),
            storm.clone(),
        )
    }

    fn arb_storm() -> impl Strategy<Value = StormConfig> {
        (1usize..4, 0u64..40, 0usize..3, 0u64..5).prop_map(
            |(lanes, max_wait_secs, throttle_at, penalty_secs)| StormConfig {
                lanes,
                max_lane_wait: SimDuration::from_secs(max_wait_secs),
                throttle_at,
                throttle_penalty: SimDuration::from_secs(penalty_secs),
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Recovery-storm determinism: the same seed and the same notice
        /// interleaving produce byte-identical recovery transcripts (and
        /// an identical full-report digest) across two independent
        /// replays, whatever the contention knobs.
        #[test]
        fn same_seed_storms_replay_byte_identically(
            ops in 3usize..6,
            seed in 1u64..10_000,
            storm in arb_storm(),
        ) {
            let a = run_storm(ops, seed, &storm);
            let b = run_storm(ops, seed, &storm);
            let rec_a = a.recovery.as_ref().expect("recovery ran");
            let rec_b = b.recovery.as_ref().expect("recovery ran");
            prop_assert_eq!(rec_a.transcript(), rec_b.transcript());
            prop_assert_eq!(a.digest(), b.digest());
        }

        /// Contention accounting is exact: every repair is counted once
        /// on exactly one path, the admission ledger balances, the
        /// `recovery.storm.*` metric mirror matches the stats, and the
        /// consistent-layer retries stay within their call counts.
        #[test]
        fn storm_accounting_is_exact(
            ops in 3usize..6,
            seed in 1u64..10_000,
            storm in arb_storm(),
        ) {
            let config = SoakConfig {
                ops,
                seed,
                ..SoakConfig::default()
            };
            let streams = collect_streams(&config);
            let report = replay_with_recovery(
                &streams,
                &GatewayConfig::default(),
                storm,
            );
            let rec = report.recovery.as_ref().expect("recovery ran");

            // No incident dropped, each on exactly one path.
            prop_assert!(rec.none_dropped(), "{rec:#?}");
            prop_assert_eq!(rec.recovered + rec.escalated, rec.attempted);
            prop_assert_eq!(
                rec.recovered_direct + rec.escalated_direct + rec.deferred_swept,
                rec.attempted
            );
            let per_tenant: usize = rec.tenants.iter().map(|t| t.attempted).sum();
            prop_assert_eq!(per_tenant, rec.attempted);

            // The admission ledger balances and throttles are counted
            // exactly once (never more than the admissions they ride on).
            let s = rec.stats;
            prop_assert_eq!(s.admitted + s.deferred, s.requests);
            prop_assert_eq!(s.swept, s.deferred);
            prop_assert!(s.throttled <= s.admitted);
            prop_assert_eq!(rec.throttled as u64, s.throttled);
            prop_assert_eq!(rec.deferred_swept as u64, s.swept);

            // The gateway-snapshot metric mirror matches the exact stats.
            let counter = |n: &str| report.snapshot.counter(&format!("recovery.storm.{n}"));
            prop_assert_eq!(counter("requests"), s.requests);
            prop_assert_eq!(counter("admitted"), s.admitted);
            prop_assert_eq!(counter("throttled"), s.throttled);
            prop_assert_eq!(counter("deferred"), s.deferred);
            prop_assert_eq!(counter("swept"), s.swept);
            // All shed backlogs were swept: the queue-depth gauge is back
            // to zero after the last sweep.
            prop_assert_eq!(
                report.snapshot.gauges.get("recovery.storm.queue_depth"),
                Some(&0)
            );

            // Consistent-layer accounting per tenant: retries and
            // timeouts never exceed the calls that produced them.
            for stream in &streams.ops {
                let snap = stream.scenario.cloud.obs().snapshot();
                let calls = snap.counter("consistent.calls");
                prop_assert!(snap.counter("consistent.retries") <= calls);
                prop_assert!(snap.counter("consistent.timeouts") <= calls);
            }
        }
    }
}
