//! The JSON-lines run journal: pod-obs snapshots, spans and Table-I
//! metrics as machine-readable records.
//!
//! `pod-obs` sits *below* `pod-log` in the dependency order (the log
//! pipeline itself is instrumented), so the JSON encoding of observability
//! data cannot live in `pod-obs` — it lives here, reusing [`pod_log::Json`].
//! One record per line; every record carries a `record` discriminator and
//! the `run` id it belongs to.

use pod_log::Json;
use pod_obs::{EventRecord, FlightDump, IncidentChain, Snapshot, SpanRecord};

use crate::campaign::{FaultRecoveryStats, PhaseStats, RecoveryStats};
use crate::metrics::MetricSet;
use crate::timing::TimingStats;

fn num(n: u64) -> Json {
    Json::Number(n as f64)
}

/// One record per counter, gauge and histogram in `snapshot`.
pub fn snapshot_lines(run: &str, snapshot: &Snapshot) -> Vec<Json> {
    let mut out = Vec::new();
    for (name, value) in &snapshot.counters {
        let mut o = Json::object();
        o.set("record", Json::str("counter"));
        o.set("run", Json::str(run));
        o.set("name", Json::str(name.clone()));
        o.set("value", num(*value));
        out.push(o);
    }
    for (name, value) in &snapshot.gauges {
        let mut o = Json::object();
        o.set("record", Json::str("gauge"));
        o.set("run", Json::str(run));
        o.set("name", Json::str(name.clone()));
        o.set("value", Json::Number(*value as f64));
        out.push(o);
    }
    for (name, h) in &snapshot.histograms {
        let mut o = Json::object();
        o.set("record", Json::str("histogram"));
        o.set("run", Json::str(run));
        o.set("name", Json::str(name.clone()));
        o.set("count", num(h.count));
        o.set("sum", num(h.sum));
        if h.count > 0 {
            o.set("min", num(h.min));
            o.set("max", num(h.max));
            o.set("mean", Json::Number(h.mean()));
            if let Some(p50) = h.quantile(0.5) {
                o.set("p50", num(p50));
            }
            if let Some(p95) = h.quantile(0.95) {
                o.set("p95", num(p95));
            }
            if let Some(p99) = h.quantile(0.99) {
                o.set("p99", num(p99));
            }
        }
        out.push(o);
    }
    out
}

/// One record per retained tail exemplar in `snapshot`: the concrete
/// observation (value, virtual time, causal event, labels) a histogram's
/// tail quantiles link back to.
pub fn exemplar_lines(run: &str, snapshot: &Snapshot) -> Vec<Json> {
    let mut out = Vec::new();
    for (name, exemplars) in &snapshot.exemplars {
        for e in exemplars {
            let mut o = Json::object();
            o.set("record", Json::str("exemplar"));
            o.set("run", Json::str(run));
            o.set("name", Json::str(name.clone()));
            o.set("value", num(e.value));
            o.set("at_us", num(e.at.as_micros()));
            if let Some(event) = e.event {
                o.set("event", num(event));
            }
            if !e.labels.is_empty() {
                let mut labels = Json::object();
                for (k, v) in &e.labels {
                    labels.set(k.clone(), Json::str(v.clone()));
                }
                o.set("labels", labels);
            }
            out.push(o);
        }
    }
    out
}

/// The `FLIGHT_<op>.json` document: the flight recorder's black box as one
/// JSON object — every frame with its counters, gauges and histogram
/// quantile summaries, plus the incident marks and eviction accounting.
pub fn flight_json(run: &str, dump: &FlightDump) -> Json {
    let mut doc = Json::object();
    doc.set("record", Json::str("flight"));
    doc.set("run", Json::str(run));
    doc.set("evicted_frames", num(dump.evicted_frames));
    doc.set("dropped_incidents", num(dump.dropped_incidents));
    let frames = dump
        .frames
        .iter()
        .map(|f| {
            let mut frame = Json::object();
            frame.set("at_us", num(f.at.as_micros()));
            let mut counters = Json::object();
            for (name, value) in &f.snapshot.counters {
                counters.set(name.clone(), num(*value));
            }
            frame.set("counters", counters);
            if !f.snapshot.gauges.is_empty() {
                let mut gauges = Json::object();
                for (name, value) in &f.snapshot.gauges {
                    gauges.set(name.clone(), Json::Number(*value as f64));
                }
                frame.set("gauges", gauges);
            }
            if !f.snapshot.histograms.is_empty() {
                let mut hists = Json::object();
                for (name, h) in &f.snapshot.histograms {
                    let mut ho = Json::object();
                    ho.set("count", num(h.count));
                    if h.count > 0 {
                        for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                            if let Some(v) = h.quantile(q) {
                                ho.set(key, num(v));
                            }
                        }
                    }
                    hists.set(name.clone(), ho);
                }
                frame.set("histograms", hists);
            }
            frame
        })
        .collect();
    doc.set("frames", Json::Array(frames));
    let incidents = dump
        .incidents
        .iter()
        .map(|inc| {
            let mut o = Json::object();
            o.set("at_us", num(inc.at.as_micros()));
            o.set("label", Json::str(inc.label.clone()));
            o
        })
        .collect();
    doc.set("incidents", Json::Array(incidents));
    doc
}

/// One record per finished span.
pub fn span_lines(run: &str, spans: &[SpanRecord]) -> Vec<Json> {
    spans
        .iter()
        .map(|s| {
            let mut o = Json::object();
            o.set("record", Json::str("span"));
            o.set("run", Json::str(run));
            o.set("id", num(s.id));
            if let Some(parent) = s.parent {
                o.set("parent", num(parent));
            }
            o.set("name", Json::str(s.name));
            o.set("start_us", num(s.start.as_micros()));
            o.set("end_us", num(s.end.as_micros()));
            if !s.attrs.is_empty() {
                let mut attrs = Json::object();
                for (k, v) in &s.attrs {
                    attrs.set(*k, Json::str(v.clone()));
                }
                o.set("attrs", attrs);
            }
            o
        })
        .collect()
}

/// One record per causal event.
pub fn event_lines(run: &str, events: &[EventRecord]) -> Vec<Json> {
    events
        .iter()
        .map(|e| {
            let mut o = Json::object();
            o.set("record", Json::str("event"));
            o.set("run", Json::str(run));
            o.set("id", num(e.id));
            if let Some(parent) = e.parent {
                o.set("cause", num(parent));
            }
            if let Some(span) = e.span {
                o.set("span", num(span));
            }
            o.set("kind", Json::str(e.kind));
            o.set("name", Json::str(e.name.clone()));
            o.set("at_us", num(e.at.as_micros()));
            if !e.attrs.is_empty() {
                let mut attrs = Json::object();
                for (k, v) in &e.attrs {
                    attrs.set(*k, Json::str(v.clone()));
                }
                o.set("attrs", attrs);
            }
            o
        })
        .collect()
}

/// One record per reconstructed incident chain: the ordered hop kinds,
/// whether the chain is unbroken, and first-evidence-to-verdict latency.
pub fn incident_lines(run: &str, chains: &[IncidentChain]) -> Vec<Json> {
    chains
        .iter()
        .map(|c| {
            let mut o = Json::object();
            o.set("record", Json::str("incident"));
            o.set("run", Json::str(run));
            o.set("detection", Json::str(c.detection.name.clone()));
            o.set("detection_event", num(c.detection.id));
            o.set(
                "hops",
                Json::Array(c.hops.iter().map(|h| Json::str(h.kind)).collect()),
            );
            o.set("anchored", Json::Bool(c.anchored));
            o.set("diagnosed", Json::Bool(c.diagnosed));
            o.set("complete", Json::Bool(c.complete()));
            o.set("elapsed_us", num(c.elapsed().as_micros()));
            if !c.root_causes.is_empty() {
                o.set(
                    "root_causes",
                    Json::Array(
                        c.root_causes
                            .iter()
                            .map(|r| Json::str(r.name.clone()))
                            .collect(),
                    ),
                );
            }
            o
        })
        .collect()
}

/// One "gateway" summary record plus one "gateway-shard" record per shard:
/// the machine-readable form of [`pod_gateway::GatewayStats`], including
/// every shed/deferred/blocked line and the per-shard queue-wait quantiles.
pub fn gateway_lines(run: &str, stats: &pod_gateway::GatewayStats) -> Vec<Json> {
    let mut out = Vec::new();
    let mut o = Json::object();
    o.set("record", Json::str("gateway"));
    o.set("run", Json::str(run));
    o.set("lines_submitted", num(stats.lines_submitted));
    o.set("lines_processed", num(stats.lines_processed));
    o.set("shed_oldest", num(stats.shed_oldest));
    o.set("shed_newest", num(stats.shed_newest));
    o.set("blocked", num(stats.blocked));
    o.set("deferred", num(stats.deferred));
    o.set("admission_denied", num(stats.admission_denied));
    o.set("batches", num(stats.batches));
    o.set("virtual_elapsed_us", num(stats.virtual_elapsed.as_micros()));
    o.set(
        "lines_per_sec_virtual",
        Json::Number(stats.lines_per_sec_virtual()),
    );
    out.push(o);
    for shard in &stats.shards {
        let mut o = Json::object();
        o.set("record", Json::str("gateway-shard"));
        o.set("run", Json::str(run));
        o.set("shard", num(shard.shard as u64));
        o.set("ops", num(shard.ops as u64));
        o.set("lines", num(shard.lines));
        o.set("shed", num(shard.shed));
        o.set("batches", num(shard.batches));
        if let Some(h) = &shard.queue_wait_us {
            o.set("queue_wait_count", num(h.count));
            o.set("queue_wait_mean_us", Json::Number(h.mean()));
            for (key, q) in [
                ("queue_wait_p50_us", 0.5),
                ("queue_wait_p95_us", 0.95),
                ("queue_wait_p99_us", 0.99),
            ] {
                if let Some(v) = h.quantile(q) {
                    o.set(key, num(v));
                }
            }
        }
        out.push(o);
    }
    out
}

fn set_recovery_counts(
    o: &mut Json,
    attempted: usize,
    recovered: usize,
    escalated: usize,
    conformance_fit: usize,
    mttr: &TimingStats,
) {
    o.set("attempted", num(attempted as u64));
    o.set("recovered", num(recovered as u64));
    o.set("escalated", num(escalated as u64));
    o.set("conformance_fit", num(conformance_fit as u64));
    if attempted > 0 {
        o.set(
            "success_rate",
            Json::Number(recovered as f64 / attempted as f64),
        );
        o.set(
            "escalation_rate",
            Json::Number(escalated as f64 / attempted as f64),
        );
    }
    if !mttr.is_empty() {
        o.set("mttr_count", num(mttr.len() as u64));
        o.set("mttr_mean_us", num(mttr.mean().as_micros()));
        o.set("mttr_p50_us", num(mttr.percentile(0.5).as_micros()));
        o.set("mttr_p95_us", num(mttr.percentile(0.95).as_micros()));
        o.set("mttr_max_us", num(mttr.max().as_micros()));
    }
}

/// The MTTR phase breakdown (p50/p95 per phase) of recovered runs: where
/// the seconds go between first failing signal and verified repair.
fn set_phase_quantiles(o: &mut Json, phases: &PhaseStats) {
    let named: [(&str, &TimingStats); 5] = [
        ("detection", &phases.detection),
        ("diagnosis", &phases.diagnosis),
        ("staging", &phases.staging),
        ("repair", &phases.repair),
        ("verification", &phases.verification),
    ];
    for (name, stats) in named {
        if stats.is_empty() {
            continue;
        }
        o.set(
            format!("phase_{name}_p50_us"),
            num(stats.percentile(0.5).as_micros()),
        );
        o.set(
            format!("phase_{name}_p95_us"),
            num(stats.percentile(0.95).as_micros()),
        );
    }
}

/// One "recovery" summary record plus one "recovery-fault" record per fault
/// type: success/escalation rates and the MTTR distribution (detection →
/// verified repair) — the `BENCH_recovery.json` content.
pub fn recovery_lines(run: &str, stats: &RecoveryStats) -> Vec<Json> {
    let mut out = Vec::new();
    let mut o = Json::object();
    o.set("record", Json::str("recovery"));
    o.set("run", Json::str(run));
    set_recovery_counts(
        &mut o,
        stats.attempted,
        stats.recovered,
        stats.escalated,
        stats.conformance_fit,
        &stats.mttr,
    );
    set_phase_quantiles(&mut o, &stats.phases);
    out.push(o);
    for (fault, f) in &stats.per_fault {
        let FaultRecoveryStats {
            attempted,
            recovered,
            escalated,
            conformance_fit,
            mttr,
        } = f;
        if *attempted == 0 {
            continue;
        }
        let mut o = Json::object();
        o.set("record", Json::str("recovery-fault"));
        o.set("run", Json::str(run));
        o.set("fault", Json::str(fault.to_string()));
        set_recovery_counts(
            &mut o,
            *attempted,
            *recovered,
            *escalated,
            *conformance_fit,
            mttr,
        );
        out.push(o);
    }
    out
}

/// One "recovery-storm" summary record plus one "recovery-tenant" record
/// per tenant: the storm's admission ledger and the per-tenant
/// MTTR-under-load quantiles — the `BENCH_recovery_soak.json` content
/// (and the CI regression gate's input: `mttr_p50_us` on the summary).
pub fn recovery_soak_lines(run: &str, rec: &crate::soak::SoakRecoveryReport) -> Vec<Json> {
    let mut out = Vec::new();
    let mut o = Json::object();
    o.set("record", Json::str("recovery-storm"));
    o.set("run", Json::str(run));
    o.set("tenants", num(rec.tenants.len() as u64));
    o.set("lanes", num(rec.config.lanes as u64));
    o.set("throttle_at", num(rec.config.throttle_at as u64));
    o.set("attempted", num(rec.attempted as u64));
    o.set("recovered", num(rec.recovered as u64));
    o.set("escalated", num(rec.escalated as u64));
    o.set("deferred_swept", num(rec.deferred_swept as u64));
    o.set("throttled", num(rec.throttled as u64));
    o.set("requests", num(rec.stats.requests));
    o.set("admitted", num(rec.stats.admitted));
    o.set("deferred", num(rec.stats.deferred));
    o.set("swept", num(rec.stats.swept));
    o.set("peak_concurrent", num(rec.stats.peak_concurrent as u64));
    o.set("none_dropped", Json::Bool(rec.none_dropped()));
    if rec.attempted > 0 {
        o.set(
            "success_rate",
            Json::Number(rec.recovered as f64 / rec.attempted as f64),
        );
    }
    if !rec.mttr.is_empty() {
        o.set("mttr_count", num(rec.mttr.len() as u64));
        o.set("mttr_mean_us", num(rec.mttr.mean().as_micros()));
        o.set("mttr_p50_us", num(rec.mttr.percentile(0.5).as_micros()));
        o.set("mttr_p95_us", num(rec.mttr.percentile(0.95).as_micros()));
        o.set("mttr_max_us", num(rec.mttr.max().as_micros()));
    }
    out.push(o);
    for t in &rec.tenants {
        let mut o = Json::object();
        o.set("record", Json::str("recovery-tenant"));
        o.set("run", Json::str(run));
        o.set("trace_id", Json::str(t.trace_id.clone()));
        if let Some(fault) = t.fault {
            o.set("fault", Json::str(fault.to_string()));
        }
        o.set("attempted", num(t.attempted as u64));
        o.set("recovered", num(t.recovered as u64));
        o.set("escalated", num(t.escalated as u64));
        o.set("deferred_swept", num(t.deferred_swept as u64));
        o.set("throttled", num(t.throttled as u64));
        if !t.mttr.is_empty() {
            o.set("mttr_p50_us", num(t.mttr.percentile(0.5).as_micros()));
            o.set("mttr_p95_us", num(t.mttr.percentile(0.95).as_micros()));
        }
        out.push(o);
    }
    out
}

/// The Table-I metrics of one metric set as a single record.
pub fn metrics_line(label: &str, m: &MetricSet) -> Json {
    let mut o = Json::object();
    o.set("record", Json::str("metrics"));
    o.set("label", Json::str(label));
    o.set("runs", num(m.runs as u64));
    o.set("faults_detected", num(m.faults_detected as u64));
    o.set("faults_missed", num(m.faults_missed as u64));
    o.set("false_positives", num(m.false_positives as u64));
    o.set(
        "interference_detections",
        num(m.interference_detections as u64),
    );
    o.set("precision", Json::Number(m.detection_precision()));
    o.set("recall", Json::Number(m.detection_recall()));
    o.set(
        "diagnosis_accuracy",
        Json::Number(m.diagnosis_accuracy_over_detected()),
    );
    o.set("accuracy_rate", Json::Number(m.accuracy_rate()));
    o
}

/// Renders records as a JSON-lines document (one record per line, trailing
/// newline).
pub fn render_journal(lines: &[Json]) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_obs::Obs;
    use pod_sim::SimTime;

    #[test]
    fn journal_lines_are_valid_json() {
        let obs = Obs::detached();
        obs.tracer().begin_trace("run-7");
        obs.counter("cloud.api.calls").add(3);
        obs.histogram("cloud.api.latency_us", &[100, 1000])
            .record(250);
        {
            let span = obs.span("upgrade.step");
            span.attr("step", "start");
            obs.clock().advance(pod_sim::SimDuration::from_millis(5));
        }
        let mut lines = snapshot_lines("run-7", &obs.snapshot());
        lines.extend(span_lines("run-7", &obs.tracer().finished()));
        let text = render_journal(&lines);
        assert!(lines.len() >= 3);
        for line in text.lines() {
            let v = Json::parse(line).expect(line);
            assert!(v.get("record").is_some());
        }
    }

    #[test]
    fn counter_and_span_records_round_trip() {
        let obs = Obs::detached();
        obs.counter("consistent.retries").incr();
        let snap_lines = snapshot_lines("r", &obs.snapshot());
        let parsed = Json::parse(&snap_lines[0].to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("counter"));
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("consistent.retries")
        );
        assert_eq!(parsed.get("value").unwrap().as_f64(), Some(1.0));

        let spans = [SpanRecord {
            id: 1,
            parent: None,
            name: "x",
            start: SimTime::ZERO,
            end: SimTime::from_millis(2),
            attrs: vec![("k", "v".into())],
        }];
        let line = &span_lines("r", &spans)[0];
        let parsed = Json::parse(&line.to_string()).unwrap();
        assert_eq!(parsed.get("end_us").unwrap().as_f64(), Some(2000.0));
        assert_eq!(
            parsed.get("attrs").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
    }

    #[test]
    fn histogram_records_carry_p50_p95_p99() {
        let obs = Obs::detached();
        let h = obs.histogram("lat_us", &[10, 100, 1000, 10_000]);
        for _ in 0..95 {
            h.record(50);
        }
        for _ in 0..5 {
            h.record(5_000);
        }
        let lines = snapshot_lines("r", &obs.snapshot());
        let hist = lines
            .iter()
            .find(|l| l.get("record").and_then(|r| r.as_str()) == Some("histogram"))
            .unwrap();
        let parsed = Json::parse(&hist.to_string()).unwrap();
        for key in ["p50", "p95", "p99"] {
            assert!(parsed.get(key).is_some(), "missing {key}: {parsed:?}");
        }
        assert!(
            parsed.get("p99").unwrap().as_f64() >= parsed.get("p50").unwrap().as_f64(),
            "quantiles out of order: {parsed:?}"
        );
    }

    #[test]
    fn event_and_incident_records_round_trip() {
        let obs = Obs::detached();
        obs.begin_run("run-9");
        let line = obs.event("log.line", "asgard.log");
        let det = obs.event_under(line.id(), "detection", "assertion-log");
        obs.event_under(det.id(), "diagnosis.verdict", "root-cause-identified");
        let events = obs.events().records();
        let lines = event_lines("run-9", &events);
        assert_eq!(lines.len(), 3);
        let parsed = Json::parse(&lines[1].to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("event"));
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("detection"));
        assert_eq!(parsed.get("cause").unwrap().as_f64(), Some(0.0));

        let chains = pod_obs::incidents(&events);
        let lines = incident_lines("run-9", &chains);
        assert_eq!(lines.len(), 1);
        let parsed = Json::parse(&lines[0].to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("incident"));
        assert_eq!(parsed.get("complete"), Some(&Json::Bool(true)));
        let hops = parsed.get("hops").unwrap().as_array().unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].as_str(), Some("log.line"));
    }

    #[test]
    fn gateway_records_cover_totals_and_every_shard() {
        let mut gw = pod_gateway::Gateway::new(pod_gateway::GatewayConfig {
            shards: 2,
            ..pod_gateway::GatewayConfig::default()
        });
        #[derive(Debug)]
        struct Null;
        impl pod_gateway::DiagnosisSink for Null {
            fn ingest_batch(&mut self, _events: Vec<pod_log::LogEvent>) {}
            fn finish(&mut self) -> pod_core::RunSummary {
                pod_core::RunSummary::default()
            }
        }
        let op = gw.register("p", "i", Box::new(Null)).unwrap();
        for i in 0..5 {
            gw.submit(op, SimTime::from_millis(i), &format!("line {i}"));
        }
        gw.pump_until_idle();
        let lines = gateway_lines("soak", &gw.stats());
        assert_eq!(lines.len(), 3, "one summary + one per shard");
        let parsed = Json::parse(&lines[0].to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("gateway"));
        assert_eq!(parsed.get("lines_processed").unwrap().as_f64(), Some(5.0));
        let busy = lines[1..]
            .iter()
            .map(|l| Json::parse(&l.to_string()).unwrap())
            .find(|l| l.get("lines").unwrap().as_f64() == Some(5.0))
            .expect("the serving shard is in the journal");
        assert_eq!(busy.get("record").unwrap().as_str(), Some("gateway-shard"));
        assert!(busy.get("queue_wait_p99_us").is_some());
    }

    #[test]
    fn exemplar_and_flight_records_round_trip() {
        let obs = Obs::detached();
        let h = obs.log_histogram("gateway.queue_wait_us");
        h.record_with(4_321, || pod_obs::Exemplar {
            value: 4_321,
            at: SimTime::from_millis(7),
            event: Some(3),
            labels: vec![("op".into(), "i-0001".into())],
        });
        let lines = exemplar_lines("soak", &obs.snapshot());
        assert_eq!(lines.len(), 1);
        let parsed = Json::parse(&lines[0].to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("exemplar"));
        assert_eq!(parsed.get("value").unwrap().as_f64(), Some(4321.0));
        assert_eq!(parsed.get("event").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            parsed.get("labels").unwrap().get("op").unwrap().as_str(),
            Some("i-0001")
        );

        let rec = pod_obs::FlightRecorder::new(
            obs.clock().clone(),
            obs.registry().clone(),
            pod_obs::FlightConfig::default(),
        );
        rec.tick();
        rec.mark_incident("i-0001 detection");
        let doc = flight_json("soak", &rec.dump());
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("flight"));
        let frames = parsed.get("frames").unwrap().as_array().unwrap();
        assert_eq!(frames.len(), 2);
        assert!(frames[0]
            .get("histograms")
            .unwrap()
            .get("gateway.queue_wait_us")
            .unwrap()
            .get("p99")
            .is_some());
        let incidents = parsed.get("incidents").unwrap().as_array().unwrap();
        assert_eq!(
            incidents[0].get("label").unwrap().as_str(),
            Some("i-0001 detection")
        );
    }

    #[test]
    fn recovery_records_carry_rates_and_mttr_quantiles() {
        let mttr = TimingStats::new(vec![
            pod_sim::SimDuration::from_millis(100),
            pod_sim::SimDuration::from_millis(300),
        ]);
        let stats = RecoveryStats {
            attempted: 3,
            recovered: 2,
            escalated: 1,
            conformance_fit: 3,
            mttr: mttr.clone(),
            phases: PhaseStats::default(),
            per_fault: vec![
                (
                    pod_orchestrator::FaultType::AmiUnavailable,
                    FaultRecoveryStats {
                        attempted: 2,
                        recovered: 2,
                        escalated: 0,
                        conformance_fit: 2,
                        mttr,
                    },
                ),
                (
                    pod_orchestrator::FaultType::ElbUnavailable,
                    FaultRecoveryStats::default(),
                ),
            ],
        };
        let lines = recovery_lines("run-3", &stats);
        assert_eq!(lines.len(), 2, "summary + one per attempted fault type");
        let parsed = Json::parse(&lines[0].to_string()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("recovery"));
        assert_eq!(parsed.get("attempted").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            parsed.get("escalation_rate").unwrap().as_f64(),
            Some(1.0 / 3.0)
        );
        assert_eq!(parsed.get("mttr_p95_us").unwrap().as_f64(), Some(300_000.0));
        let parsed = Json::parse(&lines[1].to_string()).unwrap();
        assert_eq!(
            parsed.get("record").unwrap().as_str(),
            Some("recovery-fault")
        );
        assert_eq!(
            parsed.get("fault").unwrap().as_str(),
            Some("AMI is unavailable during upgrade")
        );
        assert_eq!(parsed.get("success_rate").unwrap().as_f64(), Some(1.0));
        assert_eq!(parsed.get("mttr_p50_us").unwrap().as_f64(), Some(100_000.0));
    }

    #[test]
    fn metrics_line_carries_table_one() {
        let m = MetricSet {
            runs: 4,
            faults_detected: 3,
            faults_missed: 1,
            ..MetricSet::default()
        };
        let parsed = Json::parse(&metrics_line("overall", &m).to_string()).unwrap();
        assert_eq!(parsed.get("runs").unwrap().as_f64(), Some(4.0));
        assert_eq!(parsed.get("recall").unwrap().as_f64(), Some(0.75));
    }
}
