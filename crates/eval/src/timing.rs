//! Distribution statistics for diagnosis times (Figure 6).

use pod_sim::SimDuration;

/// Summary statistics plus a histogram over a duration sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStats {
    samples: Vec<SimDuration>,
}

impl TimingStats {
    /// Builds stats from a sample (sorted internally).
    pub fn new(mut samples: Vec<SimDuration>) -> TimingStats {
        samples.sort_unstable();
        TimingStats { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Minimum, or zero when empty.
    pub fn min(&self) -> SimDuration {
        self.samples.first().copied().unwrap_or(SimDuration::ZERO)
    }

    /// Maximum, or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.samples.last().copied().unwrap_or(SimDuration::ZERO)
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.samples.iter().map(|d| d.as_micros()).sum();
        SimDuration::from_micros(total / self.samples.len() as u64)
    }

    /// The `q`-quantile (0 < q ≤ 1) by the nearest-rank method.
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!(q > 0.0 && q <= 1.0, "percentile requires 0 < q <= 1");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let rank = ((self.samples.len() as f64) * q).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    /// Histogram with `buckets` equal-width bins between min and max.
    /// Returns `(bin_start, bin_end, count)` triples.
    pub fn histogram(&self, buckets: usize) -> Vec<(SimDuration, SimDuration, usize)> {
        assert!(buckets > 0, "histogram requires at least one bucket");
        if self.samples.is_empty() {
            return Vec::new();
        }
        let lo = self.min().as_micros();
        let hi = self.max().as_micros().max(lo + 1);
        let width = (hi - lo).div_ceil(buckets as u64).max(1);
        let mut bins = vec![0usize; buckets];
        for s in &self.samples {
            let idx = (((s.as_micros() - lo) / width) as usize).min(buckets - 1);
            bins[idx] += 1;
        }
        bins.into_iter()
            .enumerate()
            .map(|(i, count)| {
                (
                    SimDuration::from_micros(lo + width * i as u64),
                    SimDuration::from_micros(lo + width * (i as u64 + 1)),
                    count,
                )
            })
            .collect()
    }

    /// The raw, sorted samples.
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ms: &[u64]) -> TimingStats {
        TimingStats::new(ms.iter().map(|m| SimDuration::from_millis(*m)).collect())
    }

    #[test]
    fn basic_stats() {
        let s = stats(&[3000, 1000, 2000]);
        assert_eq!(s.min(), SimDuration::from_millis(1000));
        assert_eq!(s.max(), SimDuration::from_millis(3000));
        assert_eq!(s.mean(), SimDuration::from_millis(2000));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = stats(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.percentile(0.5), SimDuration::from_millis(50));
        assert_eq!(s.percentile(0.95), SimDuration::from_millis(100));
        assert_eq!(s.percentile(1.0), SimDuration::from_millis(100));
        assert_eq!(s.percentile(0.01), SimDuration::from_millis(10));
    }

    #[test]
    fn histogram_partitions_all_samples() {
        let s = stats(&[100, 200, 300, 400, 500, 600, 700, 800]);
        let h = s.histogram(4);
        assert_eq!(h.len(), 4);
        let total: usize = h.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn empty_sample_is_safe() {
        let s = TimingStats::new(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(0.95), SimDuration::ZERO);
        assert!(s.histogram(5).is_empty());
    }

    #[test]
    fn single_sample_histogram() {
        let s = stats(&[42]);
        let h = s.histogram(3);
        let total: usize = h.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 1);
    }
}
