//! The latency-budget profiler: attributes each run's virtual-clock time
//! across pipeline stages and aggregates per-stage self-time distributions
//! (p50/p95/p99) per fault type — the content of `BENCH_pod.json`.
//!
//! A *stage* is a span name (`cloud.api.call`, `conformance.replay`,
//! `assertion.eval`, `faulttree.walk`, …). A run's budget for a stage is
//! the stage's **self** time: the summed span durations minus the time
//! spent in child spans, so the budget rows add up to wall (virtual) time
//! instead of double-counting nested work.

use std::collections::BTreeMap;

use pod_log::Json;
use pod_obs::SpanRecord;
use pod_orchestrator::FaultType;
use pod_sim::SimDuration;

/// Computes one run's latency budget: span name → summed *self* virtual
/// time in microseconds (child-span time subtracted).
pub fn stage_self_times(spans: &[SpanRecord]) -> BTreeMap<String, u64> {
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    for span in spans {
        if let Some(parent) = span.parent {
            *child_time.entry(parent).or_insert(0) += span.duration().as_micros();
        }
    }
    let mut by_name: BTreeMap<String, u64> = BTreeMap::new();
    for span in spans {
        let own = span
            .duration()
            .as_micros()
            .saturating_sub(child_time.get(&span.id).copied().unwrap_or(0));
        *by_name.entry(span.name.to_string()).or_insert(0) += own;
    }
    by_name
}

/// The per-stage distribution for one fault type.
#[derive(Debug, Clone, Default)]
struct StageSamples {
    /// One self-time sample (µs) per run. Runs where the stage never ran
    /// contribute an explicit zero so quantiles are over *all* runs.
    samples: Vec<u64>,
}

/// Aggregated latency budgets across a campaign: per fault type, per
/// stage, the p50/p95/p99 of the per-run self time.
#[derive(Debug, Clone, Default)]
pub struct LatencyProfile {
    /// fault → stage → samples.
    per_fault: BTreeMap<String, BTreeMap<String, StageSamples>>,
    /// fault → number of runs recorded.
    runs: BTreeMap<String, usize>,
}

/// Nearest-rank quantile of an unsorted sample set.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl LatencyProfile {
    /// An empty profile.
    pub fn new() -> LatencyProfile {
        LatencyProfile::default()
    }

    /// Records one run's stage budget (see [`stage_self_times`]) under its
    /// fault type.
    pub fn record(&mut self, fault: FaultType, stages: &BTreeMap<String, u64>) {
        let label = fault.to_string();
        let runs_so_far = {
            let n = self.runs.entry(label.clone()).or_insert(0);
            *n += 1;
            *n - 1
        };
        let per_stage = self.per_fault.entry(label).or_default();
        // Stages this fault has seen before but this run did not run.
        for entry in per_stage.values_mut() {
            entry.samples.resize(runs_so_far, 0);
        }
        for (stage, &us) in stages {
            let entry = per_stage.entry(stage.clone()).or_default();
            entry.samples.resize(runs_so_far, 0);
            entry.samples.push(us);
        }
        for entry in per_stage.values_mut() {
            entry.samples.resize(runs_so_far + 1, 0);
        }
    }

    /// Total runs recorded.
    pub fn runs(&self) -> usize {
        self.runs.values().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.per_fault.is_empty()
    }

    /// The fault labels recorded, in name order.
    pub fn faults(&self) -> Vec<String> {
        self.per_fault.keys().cloned().collect()
    }

    /// p50/p95/p99 (µs) of a stage's per-run self time for one fault.
    pub fn quantiles(&self, fault: &str, stage: &str) -> Option<(u64, u64, u64)> {
        let samples = &self.per_fault.get(fault)?.get(stage)?.samples;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        Some((
            quantile(&sorted, 0.50),
            quantile(&sorted, 0.95),
            quantile(&sorted, 0.99),
        ))
    }

    /// The `BENCH_pod.json` document: per fault type, per stage, the
    /// p50/p95/p99 and mean of the per-run self time (µs).
    pub fn bench_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("bench", Json::str("pod-latency-budget"));
        doc.set("unit", Json::str("us"));
        doc.set("runs", Json::Number(self.runs() as f64));
        let mut faults = Vec::new();
        for (fault, stages) in &self.per_fault {
            let mut f = Json::object();
            f.set("fault", Json::str(fault.clone()));
            f.set(
                "runs",
                Json::Number(self.runs.get(fault).copied().unwrap_or(0) as f64),
            );
            let mut rows = Vec::new();
            for (stage, samples) in stages {
                let mut sorted = samples.samples.clone();
                sorted.sort_unstable();
                let sum: u64 = sorted.iter().sum();
                let mut s = Json::object();
                s.set("stage", Json::str(stage.clone()));
                s.set("p50", Json::Number(quantile(&sorted, 0.50) as f64));
                s.set("p95", Json::Number(quantile(&sorted, 0.95) as f64));
                s.set("p99", Json::Number(quantile(&sorted, 0.99) as f64));
                s.set(
                    "mean",
                    Json::Number(if sorted.is_empty() {
                        0.0
                    } else {
                        sum as f64 / sorted.len() as f64
                    }),
                );
                s.set("total_us", Json::Number(sum as f64));
                rows.push(s);
            }
            f.set("stages", Json::Array(rows));
            faults.push(f);
        }
        doc.set("faults", Json::Array(faults));
        doc
    }

    /// Renders the latency budget as a per-fault ASCII table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        if self.is_empty() {
            return "latency budget: no runs recorded\n".to_string();
        }
        let mut out = String::new();
        for (fault, stages) in &self.per_fault {
            let runs = self.runs.get(fault).copied().unwrap_or(0);
            let _ = writeln!(out, "{fault} ({runs} runs)");
            let _ = writeln!(
                out,
                "  {:<28} {:>12} {:>12} {:>12}",
                "stage", "p50", "p95", "p99"
            );
            let mut rows: Vec<(&String, (u64, u64, u64))> = stages
                .keys()
                .filter_map(|s| self.quantiles(fault, s).map(|q| (s, q)))
                .collect();
            rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
            for (stage, (p50, p95, p99)) in rows {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>12} {:>12} {:>12}",
                    stage,
                    SimDuration::from_micros(p50).to_string(),
                    SimDuration::from_micros(p95).to_string(),
                    SimDuration::from_micros(p99).to_string(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_sim::SimTime;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start_ms: u64,
        end_ms: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let spans = vec![
            span(0, None, "faulttree.walk", 0, 100),
            span(1, Some(0), "cloud.api.call", 10, 40),
            span(2, Some(0), "cloud.api.call", 50, 70),
        ];
        let budget = stage_self_times(&spans);
        assert_eq!(budget["faulttree.walk"], 50_000); // 100ms - 50ms children
        assert_eq!(budget["cloud.api.call"], 50_000);
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.95), 95);
        assert_eq!(quantile(&sorted, 0.99), 99);
        assert_eq!(quantile(&[7], 0.99), 7);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn missing_stages_count_as_zero_runs() {
        let mut profile = LatencyProfile::new();
        let mut a = BTreeMap::new();
        a.insert("cloud.api.call".to_string(), 100u64);
        profile.record(FaultType::AmiUnavailable, &a);
        let mut b = BTreeMap::new();
        b.insert("faulttree.walk".to_string(), 10u64);
        profile.record(FaultType::AmiUnavailable, &b);
        let fault = FaultType::AmiUnavailable.to_string();
        // Each stage has 2 samples: one real, one implicit zero.
        let (p50, p95, _) = profile.quantiles(&fault, "cloud.api.call").unwrap();
        assert_eq!((p50, p95), (0, 100));
        let (p50, p95, _) = profile.quantiles(&fault, "faulttree.walk").unwrap();
        assert_eq!((p50, p95), (0, 10));
    }

    #[test]
    fn bench_json_has_all_quantiles_per_fault() {
        let mut profile = LatencyProfile::new();
        for fault in FaultType::all() {
            let mut stages = BTreeMap::new();
            stages.insert("cloud.api.call".to_string(), 2_000u64);
            stages.insert("assertion.eval".to_string(), 500u64);
            profile.record(fault, &stages);
        }
        let doc = profile.bench_json();
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(
            parsed.get("bench").unwrap().as_str(),
            Some("pod-latency-budget")
        );
        let faults = parsed.get("faults").unwrap().as_array().unwrap();
        assert_eq!(faults.len(), 8);
        for f in faults {
            let stages = f.get("stages").unwrap().as_array().unwrap();
            assert_eq!(stages.len(), 2);
            for s in stages {
                for key in ["p50", "p95", "p99", "mean"] {
                    assert!(s.get(key).is_some(), "missing {key}");
                }
            }
        }
    }

    #[test]
    fn render_lists_stages_per_fault() {
        let mut profile = LatencyProfile::new();
        let mut stages = BTreeMap::new();
        stages.insert("cloud.api.call".to_string(), 1_500_000u64);
        profile.record(FaultType::ElbUnavailable, &stages);
        let text = profile.render();
        assert!(text.contains("ELB is unavailable during upgrade (1 runs)"));
        assert!(text.contains("cloud.api.call"));
        assert!(text.contains("p95"));
    }
}
