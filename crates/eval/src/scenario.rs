//! Scenario construction: a cluster on the simulated cloud, an upgrade
//! configuration, the expected environment, and the POD engine wired with
//! the rolling-upgrade artefacts.

use pod_assert::{ExpectedEnv, RetryPolicy};
use pod_cloud::{Cloud, CloudConfig};
use pod_core::{PodConfig, PodEngine, SharedEnv};
use pod_faulttree::{rolling_upgrade_repository, steps, TestOrder};
use pod_log::LogStorage;
use pod_orchestrator::{process_def, UpgradeConfig};
use pod_sim::{Clock, SimDuration, SimRng};

/// Everything one experiment run operates on.
#[derive(Debug)]
pub struct Scenario {
    /// The simulated cloud account.
    pub cloud: Cloud,
    /// The upgrade the orchestrator will perform.
    pub upgrade: UpgradeConfig,
    /// The shared expected environment.
    pub env: SharedEnv,
    /// Central log storage.
    pub storage: LogStorage,
    /// The name of the launch configuration the upgrade will create (the
    /// fault-injection target).
    pub upgrade_lc_name: String,
    /// The trace id of the upgrade.
    pub trace_id: String,
}

/// Scenario knobs.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Cluster size (the paper uses 4 or 20).
    pub cluster_size: u32,
    /// Instances replaced per loop iteration (1 for 4-node, 4 for 20-node).
    pub batch_size: u32,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Whether fault trees include the amended instance-limit root cause.
    pub amended_trees: bool,
    /// Sibling visiting order in diagnosis.
    pub test_order: TestOrder,
    /// Disable the consistent-API retry layer (ablation).
    pub consistent_api: bool,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            cluster_size: 4,
            batch_size: 1,
            seed: 1,
            amended_trees: true,
            test_order: TestOrder::ByProbability,
            consistent_api: true,
        }
    }
}

/// Builds a steady-state cluster ready for a rolling upgrade.
pub fn build_scenario(config: &ScenarioConfig) -> Scenario {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(config.seed),
        CloudConfig::default(),
    );
    let ami_v1 = cloud.admin_create_ami("app", "1.0");
    let ami_v2 = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80, 443]);
    let kp = cloud.admin_create_key_pair("prod-key");
    let elb = cloud.admin_create_elb("front");
    let lc_v1 =
        cloud.admin_create_launch_config("lc-v1", ami_v1, "m1.small", kp.clone(), sg.clone());
    let asg = cloud.admin_create_asg(
        "pm--asg",
        lc_v1,
        1,
        (config.cluster_size * 2).max(30),
        config.cluster_size,
        Some(elb.clone()),
    );
    let trace_id = format!("run-{}", config.seed);
    let mut upgrade = UpgradeConfig::new("pm", asg.clone(), elb.clone(), ami_v2.clone(), "2.0");
    upgrade.batch_size = config.batch_size as usize;
    let upgrade_lc_name = format!("{}-{}", upgrade.new_launch_config, trace_id);
    let env = SharedEnv::new(ExpectedEnv {
        asg,
        elb,
        launch_config: pod_cloud::LaunchConfigName::new(&upgrade_lc_name),
        expected_ami: ami_v2,
        expected_version: "2.0".into(),
        expected_key_pair: kp,
        expected_security_group: sg,
        expected_instance_type: "m1.small".into(),
        expected_count: config.cluster_size,
    });
    Scenario {
        cloud,
        upgrade,
        env,
        storage: LogStorage::new(),
        upgrade_lc_name,
        trace_id,
    }
}

/// Builds the POD engine configuration for the rolling upgrade.
pub fn pod_config(config: &ScenarioConfig) -> PodConfig {
    let mut c = PodConfig::new(
        process_def::rolling_upgrade_model(),
        process_def::rolling_upgrade_rules(),
        process_def::rolling_upgrade_assertions(),
        rolling_upgrade_repository(config.amended_trees),
    );
    c.relevance_patterns = process_def::relevance_patterns()
        .into_iter()
        .map(str::to_string)
        .collect();
    c.known_error_patterns = process_def::known_error_patterns()
        .into_iter()
        .map(str::to_string)
        .collect();
    c.operation_start_pattern = process_def::operation_start_pattern().to_string();
    c.operation_end_pattern = process_def::operation_end_pattern().to_string();
    c.wait_activity = Some(steps::WAIT_ASG.to_string());
    c.completion_activity = Some(steps::READY.to_string());
    c.in_flight_activities = vec![
        steps::DEREGISTER.to_string(),
        steps::TERMINATE.to_string(),
        steps::WAIT_ASG.to_string(),
    ];
    c.test_order = config.test_order;
    c.batch_size = config.batch_size;
    // The step timeout is the 95th percentile of the historical replacement
    // duration (terminate ≈ 25 s + reconcile ≤ 10 s + boot, lognormal with a
    // heavy tail). Late-but-healthy replacements beyond p95 become the
    // paper's first false-positive class.
    c.step_timeout = SimDuration::from_millis(82_000);
    c.periodic_interval = SimDuration::from_secs(60);
    // Regression-test assertions at every periodic tick: every referenced
    // resource must still exist.
    c.periodic_assertions = vec![
        pod_assert::CloudAssertion::AmiAvailable,
        pod_assert::CloudAssertion::KeyPairAvailable,
        pod_assert::CloudAssertion::SecurityGroupAvailable,
        pod_assert::CloudAssertion::ElbAvailable,
    ];
    c.retry_policy = RetryPolicy {
        max_retries: 4,
        base_backoff: SimDuration::from_millis(200),
        multiplier: 2.0,
        timeout: SimDuration::from_secs(20),
    };
    c.diagnosis_retry_policy = RetryPolicy {
        max_retries: 2,
        base_backoff: SimDuration::from_millis(250),
        multiplier: 2.0,
        timeout: SimDuration::from_secs(12),
    };
    c.engine_seed = config.seed;
    c
}

/// Builds the engine for a scenario.
pub fn build_engine(scenario: &Scenario, config: &ScenarioConfig) -> PodEngine {
    let pod = pod_config(config);
    PodEngine::new(
        scenario.cloud.clone(),
        scenario.storage.clone(),
        scenario.env.clone(),
        pod,
        scenario.trace_id.clone(),
    )
    .expect("rolling-upgrade patterns compile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_ready_to_upgrade() {
        let s = build_scenario(&ScenarioConfig::default());
        let g = s.cloud.admin_describe_asg(&s.upgrade.asg).unwrap();
        assert_eq!(g.desired_capacity, 4);
        assert_eq!(s.cloud.admin_asg_active_instances(&s.upgrade.asg).len(), 4);
    }

    #[test]
    fn twenty_node_scenario() {
        let s = build_scenario(&ScenarioConfig {
            cluster_size: 20,
            batch_size: 4,
            ..ScenarioConfig::default()
        });
        assert_eq!(s.cloud.admin_asg_active_instances(&s.upgrade.asg).len(), 20);
        assert_eq!(s.upgrade.batch_size, 4);
    }

    #[test]
    fn engine_builds() {
        let cfg = ScenarioConfig::default();
        let s = build_scenario(&cfg);
        let e = build_engine(&s, &cfg);
        assert_eq!(e.trace_id(), "run-1");
    }
}
