//! Rendering of campaign results: the headline numbers, the Figure-6
//! diagnosis-time histogram and the Figure-7 per-fault-type bars, as text.

use std::fmt::Write as _;

use crate::campaign::CampaignReport;
use crate::metrics::MetricSet;

/// Renders a percentage.
fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Renders a fixed-width ASCII bar.
fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Renders the full campaign report (Table I metrics, Figure 6, Figure 7,
/// §V.D conformance statistics) as plain text.
pub fn render_report(report: &CampaignReport) -> String {
    let mut out = String::new();
    let m = &report.overall;
    let _ = writeln!(out, "== POD-Diagnosis campaign report ==");
    let _ = writeln!(
        out,
        "runs: {} ({} faults detected, {} missed, {} of {} interference operations detected, \
         {} false positives)",
        m.runs,
        m.faults_detected,
        m.faults_missed,
        m.interference_detections,
        report.interference_applied,
        m.false_positives
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "-- Table I metrics (overall) --");
    let _ = writeln!(
        out,
        "precision of detection : {}",
        pct(m.detection_precision())
    );
    let _ = writeln!(
        out,
        "recall of detection    : {}",
        pct(m.detection_recall())
    );
    let _ = writeln!(
        out,
        "diagnosis accuracy (of detected faults) : {}",
        pct(m.diagnosis_accuracy_over_detected())
    );
    let _ = writeln!(
        out,
        "accuracy rate AR = Num_correct/(TP+FP)  : {}",
        pct(m.accuracy_rate())
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "-- Figure 6: distribution of error diagnosis time --");
    let t = &report.timing;
    if t.is_empty() {
        let _ = writeln!(out, "(no diagnoses)");
    } else {
        let _ = writeln!(
            out,
            "n = {}, min = {}, mean = {}, p95 = {}, max = {}",
            t.len(),
            t.min(),
            t.mean(),
            t.percentile(0.95),
            t.max()
        );
        let hist = t.histogram(10);
        let peak = hist.iter().map(|(_, _, c)| *c).max().unwrap_or(1).max(1);
        for (lo, hi, count) in hist {
            let _ = writeln!(
                out,
                "  {:>8} - {:>8} | {:<30} {count}",
                lo.to_string(),
                hi.to_string(),
                bar(count as f64 / peak as f64, 30)
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- Figure 7: precision / recall / diagnosis accuracy by fault type --"
    );
    let _ = writeln!(
        out,
        "{:<42} {:>10} {:>10} {:>10}",
        "fault type", "precision", "recall", "accuracy"
    );
    for (fault, set) in &report.per_fault {
        let _ = writeln!(
            out,
            "{:<42} {:>10} {:>10} {:>10}",
            fault.to_string(),
            pct(set.detection_precision()),
            pct(set.detection_recall()),
            pct(set.diagnosis_accuracy_over_detected()),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "-- Section V.D: conformance checking --");
    let c = &report.conformance;
    let _ = writeln!(
        out,
        "configuration-fault runs (types 1-4): {} — flagged by conformance: {} (paper: 0)",
        c.configuration_runs, c.configuration_runs_flagged
    );
    let _ = writeln!(
        out,
        "resource-fault runs (types 5-8): {} — erroneous log traces seen by conformance: {} \
         (before assertions: {}; paper: 20 of 80)",
        c.resource_runs, c.resource_runs_flagged, c.resource_runs_flagged_first
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- Incident timelines: causal-chain coverage (all runs) --"
    );
    let _ = writeln!(
        out,
        "incident chains reconstructed: {} — unbroken (log line -> verdict): {}{}",
        report.incidents_total,
        report.incidents_complete,
        if report.incidents_total > 0 {
            format!(
                " ({})",
                pct(report.incidents_complete as f64 / report.incidents_total as f64)
            )
        } else {
            String::new()
        }
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- Recovery loop: automated remediation of diagnosed root causes --"
    );
    let rec = &report.recovery;
    if rec.attempted == 0 {
        let _ = writeln!(out, "(recovery stage disabled)");
    } else {
        let _ = writeln!(
            out,
            "recoveries: {} attempted — {} recovered (verified), {} escalated to operator, \
             {} conformance-fit against the recovery model",
            rec.attempted, rec.recovered, rec.escalated, rec.conformance_fit
        );
        let _ = writeln!(
            out,
            "MTTR (detection -> verified repair): n = {}, p50 = {}, p95 = {}, max = {}",
            rec.mttr.len(),
            rec.mttr.percentile(0.5),
            rec.mttr.percentile(0.95),
            rec.mttr.max()
        );
        let phases = [
            ("detection", &rec.phases.detection),
            ("diagnosis", &rec.phases.diagnosis),
            ("staging", &rec.phases.staging),
            ("repair", &rec.phases.repair),
            ("verification", &rec.phases.verification),
        ];
        if phases.iter().any(|(_, p)| !p.is_empty()) {
            let _ = writeln!(out, "MTTR phase breakdown (recovered repairs):");
            for (name, stats) in phases {
                if stats.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<14} p50 = {:>10}, p95 = {:>10}",
                    name,
                    stats.percentile(0.5).to_string(),
                    stats.percentile(0.95).to_string(),
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<42} {:>9} {:>9} {:>9} {:>12} {:>12}",
            "fault type", "attempted", "recovered", "escalated", "MTTR p50", "MTTR p95"
        );
        for (fault, fs) in &rec.per_fault {
            if fs.attempted == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<42} {:>9} {:>9} {:>9} {:>12} {:>12}",
                fault.to_string(),
                fs.attempted,
                fs.recovered,
                fs.escalated,
                fs.mttr.percentile(0.5).to_string(),
                fs.mttr.percentile(0.95).to_string(),
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- Latency budget: per-stage self time, p50/p95/p99 per fault type --"
    );
    out.push_str(&report.latency.render());
    let _ = writeln!(out);
    let _ = writeln!(out, "-- Observability: pod-obs metrics (all runs) --");
    if report.spans_dropped > 0 || report.events_dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: retention caps hit — {} span(s) and {} causal event(s) dropped; \
             traces and timelines may be incomplete",
            report.spans_dropped, report.events_dropped
        );
    } else {
        let _ = writeln!(out, "spans dropped: 0, causal events dropped: 0");
    }
    let step_limit_aborts = report.obs_totals.counter("pipeline.regex.step_limit");
    if step_limit_aborts > 0 {
        let _ = writeln!(
            out,
            "WARNING: regex engine abandoned {step_limit_aborts} match attempt(s) at its \
             step limit — those lines have no match answer and may be mis-annotated"
        );
    }
    out.push_str(&pod_obs::render_summary(&report.obs_totals));
    out
}

/// Renders the gateway section: throughput, backpressure accounting (with
/// an explicit warning when overload shed lines — shed input means the
/// downstream diagnosis saw an incomplete log) and the per-shard table
/// with queue-wait quantiles.
pub fn render_gateway_report(stats: &pod_gateway::GatewayStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- Gateway: sharding, batching, backpressure --");
    let _ = writeln!(
        out,
        "lines: {} submitted, {} processed in {} batches ({:.0} lines/s virtual, {} virtual elapsed)",
        stats.lines_submitted,
        stats.lines_processed,
        stats.batches,
        stats.lines_per_sec_virtual(),
        stats.virtual_elapsed,
    );
    let _ = writeln!(
        out,
        "backpressure: {} producer stall(s), {} line(s) deferred past a full batch, \
         {} registration(s) denied by admission control",
        stats.blocked, stats.deferred, stats.admission_denied
    );
    if stats.total_shed() > 0 {
        let _ = writeln!(
            out,
            "WARNING: overload shed {} line(s) (oldest-first: {}, newest-first: {}); \
             diagnosis may be incomplete",
            stats.total_shed(),
            stats.shed_oldest,
            stats.shed_newest
        );
    } else {
        let _ = writeln!(out, "lines shed: 0");
    }
    let _ = writeln!(
        out,
        "parse: {} json, {} plaintext, {} unclassified",
        stats.parsed_json, stats.parsed_plain, stats.unclassified
    );
    let _ = writeln!(
        out,
        "{:<6} {:>4} {:>8} {:>6} {:>8} {:>12} {:>12} {:>12}",
        "shard", "ops", "lines", "shed", "batches", "wait p50", "wait p95", "wait p99"
    );
    for s in &stats.shards {
        let q = |p: f64| {
            s.queue_wait_us
                .as_ref()
                .and_then(|h| h.quantile(p))
                .map(|us| pod_sim::SimDuration::from_micros(us).to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        let _ = writeln!(
            out,
            "{:<6} {:>4} {:>8} {:>6} {:>8} {:>12} {:>12} {:>12}",
            s.shard,
            s.ops,
            s.lines,
            s.shed,
            s.batches,
            q(0.5),
            q(0.95),
            q(0.99)
        );
    }
    out
}

/// Renders a single metric set as one summary line.
pub fn render_metrics_line(label: &str, m: &MetricSet) -> String {
    format!(
        "{label}: P={} R={} ACC={} AR={} (TP={} IF={} FP={})",
        pct(m.detection_precision()),
        pct(m.detection_recall()),
        pct(m.diagnosis_accuracy_over_detected()),
        pct(m.accuracy_rate()),
        m.faults_detected,
        m.interference_detections,
        m.false_positives,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};

    #[test]
    fn report_renders_all_sections() {
        let report = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        })
        .run();
        let text = render_report(&report);
        assert!(text.contains("Table I"));
        assert!(text.contains("Figure 6"));
        assert!(text.contains("Figure 7"));
        assert!(text.contains("conformance"));
        assert!(text.contains("precision of detection"));
        assert!(text.contains("Observability"));
        assert!(text.contains("cloud.api.calls"));
        for fault in pod_orchestrator::FaultType::all() {
            assert!(text.contains(&fault.to_string()), "missing {fault}");
        }
    }

    #[test]
    fn report_covers_the_recovery_stage() {
        let disabled = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        })
        .run();
        let text = render_report(&disabled);
        assert!(text.contains("(recovery stage disabled)"), "{text}");

        let enabled = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            recovery: true,
            ..CampaignConfig::default()
        })
        .run();
        let text = render_report(&enabled);
        assert!(text.contains("Recovery loop"), "{text}");
        assert!(
            text.contains("MTTR (detection -> verified repair)"),
            "{text}"
        );
        assert!(text.contains("MTTR p95"), "{text}");
        assert!(text.contains("MTTR phase breakdown"), "{text}");
        for phase in [
            "detection",
            "diagnosis",
            "staging",
            "repair",
            "verification",
        ] {
            assert!(text.contains(phase), "missing phase {phase}: {text}");
        }
    }

    #[test]
    fn report_warns_only_when_regex_step_limit_was_hit() {
        let mut report = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        })
        .run();
        let clean = render_report(&report);
        assert!(
            !clean.contains("abandoned"),
            "clean campaign must not warn about step limits: {clean}"
        );
        // Inject step-limit aborts as they would arrive from run snapshots.
        let obs = pod_obs::Obs::detached();
        obs.counter("pipeline.regex.step_limit").add(3);
        report.obs_totals.merge(&obs.snapshot());
        let warned = render_report(&report);
        assert!(
            warned.contains("WARNING: regex engine abandoned 3 match attempt(s)"),
            "{warned}"
        );
    }

    #[test]
    fn gateway_report_warns_only_when_lines_were_shed() {
        let hist = {
            let obs = pod_obs::Obs::detached();
            let h = obs.histogram("w", &[100, 1000]);
            h.record(500);
            obs.snapshot().histogram("w").unwrap().clone()
        };
        let mut stats = pod_gateway::GatewayStats {
            shards: vec![pod_gateway::ShardStats {
                shard: 0,
                ops: 2,
                lines: 10,
                shed: 0,
                batches: 3,
                queue_wait_us: Some(hist),
            }],
            lines_submitted: 10,
            lines_processed: 10,
            shed_oldest: 0,
            shed_newest: 0,
            blocked: 1,
            deferred: 2,
            admission_denied: 0,
            batches: 3,
            parsed_json: 8,
            parsed_plain: 1,
            unclassified: 1,
            virtual_elapsed: pod_sim::SimDuration::from_secs(2),
        };
        let clean = render_gateway_report(&stats);
        assert!(clean.contains("lines shed: 0"), "{clean}");
        assert!(clean.contains("wait p99"), "{clean}");
        assert!(!clean.contains("WARNING"), "{clean}");
        stats.shed_oldest = 4;
        stats.shards[0].shed = 4;
        let shedding = render_gateway_report(&stats);
        assert!(
            shedding.contains("WARNING: overload shed 4 line(s)"),
            "{shedding}"
        );
        assert!(
            shedding.contains("diagnosis may be incomplete"),
            "{shedding}"
        );
    }

    #[test]
    fn bar_widths() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
    }
}
