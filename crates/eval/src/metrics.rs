//! Evaluation metrics (Table I of the paper) and per-run classification of
//! detections against the injected ground truth.

use pod_core::{Detection, DetectionSource};
use pod_faulttree::DiagnosisVerdict;
use pod_orchestrator::{FaultType, Interference};
use pod_sim::{SimDuration, SimTime};

/// Ground truth of one run, as the harness executed it.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The injected fault.
    pub fault: FaultType,
    /// When the fault was actually applied.
    pub injected_at: SimTime,
    /// When it was reverted, for transient faults.
    pub reverted_at: Option<SimTime>,
    /// Interference operations applied, with their application times.
    pub interferences: Vec<(SimTime, Interference)>,
}

/// How one run's detections scored against the ground truth.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// The injected fault was detected at least once.
    pub fault_detected: bool,
    /// Some diagnosis of the fault identified the expected root cause.
    pub fault_diagnosed_correctly: bool,
    /// Interference operations credited as (true) detections.
    pub interference_detections: usize,
    /// Interference detections whose diagnosis named the concurrent
    /// operation (or correctly reported it undiagnosable).
    pub interference_diagnosed_correctly: usize,
    /// False-positive detection episodes.
    pub false_positives: usize,
    /// FPs whose diagnosis correctly said "no root cause identified".
    pub fp_diagnosed_as_none: usize,
    /// Raw detection count (before episode grouping).
    pub raw_detections: usize,
    /// Whether conformance checking flagged the run before any assertion.
    pub conformance_first: bool,
    /// Whether any conformance-sourced detection occurred at all.
    pub conformance_any: bool,
    /// Durations of all diagnoses run in this run.
    pub diagnosis_times: Vec<SimDuration>,
    /// Time-to-first-root-cause for diagnoses that confirmed one.
    pub first_cause_latencies: Vec<SimDuration>,
}

/// Classifies a run's detections against its ground truth.
///
/// Attribution rules (documented in `EXPERIMENTS.md`):
///
/// - a diagnosis identifying the fault's expected root cause ⇒ the fault is
///   detected and correctly diagnosed;
/// - `concurrent-scale-in` / `instance-limit-reached` causes (or an
///   `ErrorConfirmedCauseUnknown` verdict while a random termination is in
///   effect) ⇒ a detected interference (credited once per interference
///   operation);
/// - any other detection while the fault is active ⇒ the fault is detected,
///   but (unless already diagnosed correctly elsewhere) wrongly diagnosed —
///   this covers the transient-fault and changed-again wrong-diagnosis
///   classes;
/// - anything else ⇒ a false positive; it still counts as *correctly
///   handled* when its diagnosis said "no root cause identified".
pub fn classify_run(truth: &GroundTruth, detections: &[Detection]) -> RunOutcome {
    let mut outcome = RunOutcome {
        raw_detections: detections.len(),
        ..RunOutcome::default()
    };
    let expected_cause = truth.fault.expected_root_cause();
    // Interference credit bookkeeping: each op can be credited once.
    let mut scale_credit = truth
        .interferences
        .iter()
        .filter(|(_, i)| matches!(i, Interference::ScaleIn | Interference::ScaleOut))
        .count();
    let mut limit_credit = truth
        .interferences
        .iter()
        .filter(|(_, i)| matches!(i, Interference::OtherTeamCapacityPressure))
        .count();
    let mut termination_credit = truth
        .interferences
        .iter()
        .filter(|(_, i)| matches!(i, Interference::RandomTermination))
        .count();
    let mut first_assertion_at: Option<SimTime> = None;
    let mut first_conformance_at: Option<SimTime> = None;
    // FP episode grouping: one per (source, minute).
    let mut fp_buckets: Vec<(DetectionSource, u64)> = Vec::new();
    // Re-detections of an already-credited interference within this window
    // are the same episode, not new false positives.
    const EPISODE_WINDOW: SimDuration = SimDuration::from_secs(240);
    let mut credited: Vec<(&str, SimTime)> = Vec::new();

    for d in detections {
        if d.source.is_conformance() {
            outcome.conformance_any = true;
            first_conformance_at.get_or_insert(d.at);
        } else {
            first_assertion_at.get_or_insert(d.at);
        }
        let Some(report) = &d.diagnosis else {
            // Cooldown-suppressed repeat of a recent diagnosis; the episode
            // it belongs to is already classified.
            continue;
        };
        outcome.diagnosis_times.push(report.duration);
        if let Some(after) = report.first_cause_after {
            outcome.first_cause_latencies.push(after);
        }
        let causes: Vec<&str> = report
            .root_causes
            .iter()
            .map(|c| c.node_id.as_str())
            .collect();
        let fault_active = d.at >= truth.injected_at
            && truth
                .reverted_at
                .is_none_or(|r| d.at < r + SimDuration::from_secs(90));

        let stopped: Vec<&str> = report
            .stopped_at
            .iter()
            .map(|c| c.node_id.as_str())
            .collect();
        let is_scale_cause = causes.contains(&"concurrent-scale-in")
            || causes.contains(&"concurrent-capacity-change");
        let recently_credited = |kind: &str, credited: &[(&str, SimTime)]| {
            credited
                .iter()
                .any(|(k, at)| *k == kind && d.at.duration_since(*at) < EPISODE_WINDOW)
        };
        // A single diagnosis can surface several co-occurring problems
        // (the injected fault AND a concurrent operation); credit each.
        let mut classified = false;
        if causes.contains(&expected_cause) && d.at >= truth.injected_at {
            outcome.fault_detected = true;
            outcome.fault_diagnosed_correctly = true;
            classified = true;
        }
        if is_scale_cause {
            if scale_credit > 0 {
                scale_credit -= 1;
                outcome.interference_detections += 1;
                outcome.interference_diagnosed_correctly += 1;
                credited.push(("scale", d.at));
                classified = true;
            } else if recently_credited("scale", &credited) {
                classified = true;
            }
        }
        if causes.contains(&"instance-limit-reached") {
            if limit_credit > 0 {
                limit_credit -= 1;
                outcome.interference_detections += 1;
                outcome.interference_diagnosed_correctly += 1;
                credited.push(("limit", d.at));
                classified = true;
            } else if recently_credited("limit", &credited) {
                classified = true;
            }
        }
        if stopped.contains(&"instance-terminated-unexpectedly") {
            // "We were able to diagnose when the root cause was ASG
            // scale-in, but not when the root cause was termination of
            // instances": the event is confirmed, the cause correctly
            // reported as unknown.
            if termination_credit > 0 {
                termination_credit -= 1;
                outcome.interference_detections += 1;
                outcome.interference_diagnosed_correctly += 1;
                credited.push(("termination", d.at));
                classified = true;
            } else if recently_credited("termination", &credited) {
                classified = true;
            }
        }
        if stopped.contains(&"instance-launch-failing") {
            // The un-amended tree stops at "launch failing" when the shared
            // account hits its limit — detected, wrongly diagnosed (the
            // paper's fourth wrong-diagnosis class).
            if limit_credit > 0 {
                limit_credit -= 1;
                outcome.interference_detections += 1;
                credited.push(("limit", d.at));
                classified = true;
            } else if recently_credited("limit", &credited) {
                classified = true;
            }
        }
        if classified {
            // Fully attributed.
        } else if fault_active {
            // The fault is live but the diagnosis pointed elsewhere (or
            // found nothing): detected, wrongly diagnosed.
            outcome.fault_detected = true;
        } else {
            // A detection with no live fault and no creditable
            // interference: a false positive.
            let bucket = (d.source, d.at.as_millis() / 60_000);
            if !fp_buckets.contains(&bucket) {
                fp_buckets.push(bucket);
                outcome.false_positives += 1;
                if report.verdict() == DiagnosisVerdict::NoRootCauseIdentified {
                    outcome.fp_diagnosed_as_none += 1;
                }
            }
        }
    }
    outcome.conformance_first = match (first_conformance_at, first_assertion_at) {
        (Some(c), Some(a)) => c < a,
        (Some(_), None) => true,
        _ => false,
    };
    outcome
}

/// Aggregated Table-I metrics over a set of runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricSet {
    /// Runs in the set.
    pub runs: usize,
    /// Injected faults detected (≤ runs).
    pub faults_detected: usize,
    /// Injected faults missed.
    pub faults_missed: usize,
    /// Correct root-cause diagnoses among detected faults.
    pub correct_fault_diagnoses: usize,
    /// Interference operations detected (count toward precision's TP).
    pub interference_detections: usize,
    /// Interference detections with a correct diagnosis.
    pub interference_correct: usize,
    /// False-positive episodes.
    pub false_positives: usize,
    /// FPs correctly diagnosed as "no root cause identified".
    pub fp_diagnosed_as_none: usize,
}

impl MetricSet {
    /// Accumulates one run.
    pub fn add(&mut self, outcome: &RunOutcome) {
        self.runs += 1;
        if outcome.fault_detected {
            self.faults_detected += 1;
        } else {
            self.faults_missed += 1;
        }
        if outcome.fault_diagnosed_correctly {
            self.correct_fault_diagnoses += 1;
        }
        self.interference_detections += outcome.interference_detections;
        self.interference_correct += outcome.interference_diagnosed_correctly;
        self.false_positives += outcome.false_positives;
        self.fp_diagnosed_as_none += outcome.fp_diagnosed_as_none;
    }

    /// Merges another set.
    pub fn merge(&mut self, other: &MetricSet) {
        self.runs += other.runs;
        self.faults_detected += other.faults_detected;
        self.faults_missed += other.faults_missed;
        self.correct_fault_diagnoses += other.correct_fault_diagnoses;
        self.interference_detections += other.interference_detections;
        self.interference_correct += other.interference_correct;
        self.false_positives += other.false_positives;
        self.fp_diagnosed_as_none += other.fp_diagnosed_as_none;
    }

    /// True detections: injected faults plus interferences.
    pub fn true_detections(&self) -> usize {
        self.faults_detected + self.interference_detections
    }

    /// `P_det = TP / (TP + FP)`.
    pub fn detection_precision(&self) -> f64 {
        let tp = self.true_detections() as f64;
        let denom = tp + self.false_positives as f64;
        if denom == 0.0 {
            1.0
        } else {
            tp / denom
        }
    }

    /// `R_det = TP / (TP + FN)` over injected faults.
    pub fn detection_recall(&self) -> f64 {
        let denom = (self.faults_detected + self.faults_missed) as f64;
        if denom == 0.0 {
            1.0
        } else {
            self.faults_detected as f64 / denom
        }
    }

    /// Diagnosis accuracy over correctly detected faults (the abstract's
    /// 96.55% figure).
    pub fn diagnosis_accuracy_over_detected(&self) -> f64 {
        if self.faults_detected == 0 {
            1.0
        } else {
            self.correct_fault_diagnoses as f64 / self.faults_detected as f64
        }
    }

    /// `AR = Num_correct / (TP_det + FP_det)` (Table I; the 97.13% figure).
    /// FPs whose diagnosis said "no root cause identified" count as correct,
    /// as do detected interferences (their diagnosis names the concurrent
    /// operation).
    pub fn accuracy_rate(&self) -> f64 {
        let denom = (self.true_detections() + self.false_positives) as f64;
        if denom == 0.0 {
            return 1.0;
        }
        let correct =
            self.correct_fault_diagnoses + self.interference_correct + self.fp_diagnosed_as_none;
        correct as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_faulttree::{DiagnosedCause, DiagnosisReport};

    fn report(causes: &[&str], stopped: &[&str]) -> DiagnosisReport {
        DiagnosisReport {
            root_causes: causes
                .iter()
                .map(|c| DiagnosedCause {
                    node_id: c.to_string(),
                    description: c.to_string(),
                })
                .collect(),
            stopped_at: stopped
                .iter()
                .map(|c| DiagnosedCause {
                    node_id: c.to_string(),
                    description: c.to_string(),
                })
                .collect(),
            potential_faults: 4,
            excluded: 2,
            tests_run: 3,
            first_cause_after: None,
            started_at: SimTime::ZERO,
            duration: SimDuration::from_millis(2300),
        }
    }

    fn detection(at_s: u64, source: DetectionSource, rep: Option<DiagnosisReport>) -> Detection {
        Detection {
            at: SimTime::from_secs(at_s),
            source,
            description: "d".into(),
            step: None,
            key: "asg-has-instances-with-version".into(),
            instance: None,
            diagnosis: rep,
            event: None,
        }
    }

    fn truth(fault: FaultType, injected_s: u64) -> GroundTruth {
        GroundTruth {
            fault,
            injected_at: SimTime::from_secs(injected_s),
            reverted_at: None,
            interferences: Vec::new(),
        }
    }

    #[test]
    fn correct_diagnosis_counts_as_tp() {
        let t = truth(FaultType::AmiChangedDuringUpgrade, 100);
        let d = vec![detection(
            150,
            DetectionSource::AssertionLog,
            Some(report(&["lc-wrong-ami"], &[])),
        )];
        let o = classify_run(&t, &d);
        assert!(o.fault_detected && o.fault_diagnosed_correctly);
        assert_eq!(o.false_positives, 0);
    }

    #[test]
    fn wrong_cause_while_fault_active_is_detected_but_wrong() {
        let t = truth(FaultType::KeyPairManagementFault, 100);
        let d = vec![detection(
            150,
            DetectionSource::AssertionLog,
            Some(report(&[], &["asg-wrong-version"])),
        )];
        let o = classify_run(&t, &d);
        assert!(o.fault_detected);
        assert!(!o.fault_diagnosed_correctly);
    }

    #[test]
    fn detection_before_injection_is_fp() {
        let t = truth(FaultType::ElbUnavailable, 500);
        let d = vec![detection(
            100,
            DetectionSource::AssertionOneOffTimer,
            Some(report(&[], &[])),
        )];
        let o = classify_run(&t, &d);
        assert!(!o.fault_detected);
        assert_eq!(o.false_positives, 1);
        assert_eq!(
            o.fp_diagnosed_as_none, 1,
            "no-root-cause FP is handled correctly"
        );
    }

    #[test]
    fn scale_in_interference_is_credited_once() {
        let mut t = truth(FaultType::AmiUnavailable, 900);
        t.interferences
            .push((SimTime::from_secs(100), Interference::ScaleIn));
        let rep = || Some(report(&["concurrent-scale-in"], &[]));
        let d = vec![
            detection(120, DetectionSource::AssertionPeriodicTimer, rep()),
            // Within the episode window: folded into the credited episode.
            detection(200, DetectionSource::AssertionPeriodicTimer, rep()),
            // Far beyond the window: a stale re-detection is an FP.
            detection(700, DetectionSource::AssertionPeriodicTimer, rep()),
        ];
        let o = classify_run(&t, &d);
        assert_eq!(o.interference_detections, 1);
        assert_eq!(o.false_positives, 1, "stale re-detection becomes an FP");
    }

    #[test]
    fn termination_interference_detected_via_unknown_cause() {
        let mut t = truth(FaultType::AmiUnavailable, 900);
        t.interferences
            .push((SimTime::from_secs(100), Interference::RandomTermination));
        let d = vec![detection(
            130,
            DetectionSource::AssertionPeriodicTimer,
            Some(report(&[], &["instance-terminated-unexpectedly"])),
        )];
        let o = classify_run(&t, &d);
        assert_eq!(o.interference_detections, 1);
        assert_eq!(o.interference_diagnosed_correctly, 1);
        assert_eq!(o.false_positives, 0);
    }

    #[test]
    fn fp_episodes_group_by_minute() {
        let t = truth(FaultType::ElbUnavailable, 9_000);
        let rep = || Some(report(&[], &[]));
        let d = vec![
            detection(100, DetectionSource::AssertionPeriodicTimer, rep()),
            detection(110, DetectionSource::AssertionPeriodicTimer, rep()), // same minute bucket? 100/60=1, 110/60=1
            detection(200, DetectionSource::AssertionPeriodicTimer, rep()),
        ];
        let o = classify_run(&t, &d);
        assert_eq!(o.false_positives, 2);
    }

    #[test]
    fn metric_formulas_match_table_one() {
        let m = MetricSet {
            runs: 160,
            faults_detected: 160,
            faults_missed: 0,
            correct_fault_diagnoses: 154,
            interference_detections: 46,
            interference_correct: 46,
            false_positives: 18,
            fp_diagnosed_as_none: 18,
        };
        assert!((m.detection_precision() - 206.0 / 224.0).abs() < 1e-9);
        assert_eq!(m.detection_recall(), 1.0);
        assert!((m.diagnosis_accuracy_over_detected() - 154.0 / 160.0).abs() < 1e-9);
        assert!((m.accuracy_rate() - 218.0 / 224.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MetricSet::default();
        a.add(&RunOutcome {
            fault_detected: true,
            fault_diagnosed_correctly: true,
            ..RunOutcome::default()
        });
        let mut b = MetricSet::default();
        b.add(&RunOutcome {
            fault_detected: false,
            ..RunOutcome::default()
        });
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.faults_detected, 1);
        assert_eq!(a.faults_missed, 1);
        assert_eq!(a.detection_recall(), 0.5);
    }

    use pod_sim::{SimDuration, SimTime};
}
