//! The evaluation harness: reproduces Section V of the paper.
//!
//! - [`build_scenario`] / [`build_engine`] — a steady-state cluster on the
//!   simulated cloud plus a wired POD engine;
//! - [`Campaign`] — the fault-injection campaign: the 8 fault types × N
//!   runs, clusters of 4 or 20 instances, confounded by concurrent
//!   scale-in/out, random terminations and a second team exhausting the
//!   shared account;
//! - [`classify_run`] / [`MetricSet`] — per-run attribution of detections
//!   to ground truth and the Table-I formulas (precision, recall, accuracy
//!   rate);
//! - [`TimingStats`] — the Figure-6 diagnosis-time distribution;
//! - [`render_report`] — plain-text rendering of every table and figure;
//! - [`snapshot_lines`] / [`span_lines`] / [`event_lines`] /
//!   [`incident_lines`] / [`render_journal`] — the JSON-lines run journal
//!   of pod-obs metrics, spans, causal events and incident chains;
//! - [`LatencyProfile`] / [`stage_self_times`] — the latency-budget
//!   profiler: per-stage virtual-time attribution, p50/p95/p99 per fault
//!   type (the `BENCH_pod.json` content);
//! - [`collect_streams`] / [`replay`] / [`sweep_batches`] — the gateway
//!   soak: many interleaved faulty upgrades serialized to raw lines, then
//!   replayed through one `pod-gateway` with per-operation engines (the
//!   `BENCH_gateway.json` content);
//! - [`RecoveryStats`] / [`recovery_lines`] — the recovery loop: the
//!   campaign's optional remediation stage hands every diagnosed root cause
//!   to `pod-recovery`, and the per-fault MTTR distribution plus
//!   success/escalation rates land in the report and `BENCH_recovery.json`;
//! - [`replay_telemetry`] — the same soak under an explicit
//!   `TelemetryMode` (off/sampled/full), with tail-based trace sampling,
//!   queue-wait tail exemplars and the gateway's flight-recorder dump (the
//!   `BENCH_obs.json` / `FLIGHT_*.json` content, via [`exemplar_lines`] and
//!   [`flight_json`]);
//! - [`replay_with_recovery`] — the soak with the recovery stage wired
//!   in: every tenant engine's detection hook feeds one shared
//!   `pod_recovery::RecoveryStorm` whose repairs contend for the gateway's
//!   admission gate, with per-tenant MTTR-under-load in the journal via
//!   [`recovery_soak_lines`] (the `BENCH_recovery_soak.json` content).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod journal;
mod metrics;
mod profile;
mod report;
mod scenario;
mod soak;
mod timing;

pub use campaign::{
    execute_run, execute_run_traced, Campaign, CampaignConfig, CampaignReport, ConformanceStats,
    FaultRecoveryStats, IncidentSummary, RecoveryRecord, RecoveryStats, RunPlan, RunRecord,
    TraceDump,
};
pub use journal::{
    event_lines, exemplar_lines, flight_json, gateway_lines, incident_lines, metrics_line,
    recovery_lines, recovery_soak_lines, render_journal, snapshot_lines, span_lines,
};
pub use metrics::{classify_run, GroundTruth, MetricSet, RunOutcome};
pub use profile::{stage_self_times, LatencyProfile};
pub use report::{render_gateway_report, render_metrics_line, render_report};
pub use scenario::{build_engine, build_scenario, pod_config, Scenario, ScenarioConfig};
pub use soak::{
    collect_streams, render_recovery_soak, render_soak_report, replay, replay_telemetry,
    replay_with_recovery, soak_bench_json, sweep_batches, OpStream, SoakConfig, SoakOpResult,
    SoakRecoveryReport, SoakReport, SoakStreams, TenantRecoveryResult,
};
pub use timing::TimingStats;
