//! The fault-injection campaign: 8 fault types × N runs, with confounding
//! simultaneous operations — the experiment of Section V of the paper.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pod_cloud::{Cloud, InstanceId};
use pod_core::PodEngine;
use pod_faulttree::TestOrder;
use pod_log::LogEvent;
use pod_obs::{EventRecord, SpanRecord};
use pod_orchestrator::{
    FaultInjector, FaultType, Interference, RollingUpgrade, UpgradeObserver, UpgradeOutcome,
};
use pod_recovery::{conformance_check, ConformanceReport, RecoveryConfig, RecoveryDispatcher};
use pod_sim::{SimDuration, SimRng, SimTime};

use crate::metrics::{classify_run, GroundTruth, MetricSet, RunOutcome};
use crate::profile::{stage_self_times, LatencyProfile};
use crate::scenario::{build_engine, build_scenario, Scenario, ScenarioConfig};
use crate::timing::TimingStats;

/// Campaign knobs. Defaults reproduce the paper's setup: 20 runs per fault
/// type, clusters of 4 (every fifth run: 20), mixed interference, fault
/// trees *without* the instance-limit amendment (the paper added it only
/// after the experiment).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Runs per fault type (paper: 20 → 160 total).
    pub runs_per_fault: usize,
    /// Master seed; every run derives its own.
    pub seed: u64,
    /// Use the amended fault trees (instance-limit root cause present).
    pub amended_trees: bool,
    /// Fraction of runs whose fault is transient (injected, then reverted
    /// before diagnosis can confirm it — wrong-diagnosis class 3).
    pub transient_fraction: f64,
    /// Fraction of AMI-change runs where the AMI changes *again* during
    /// diagnosis (wrong-diagnosis class 2).
    pub reinject_fraction: f64,
    /// Probability that a run carries at least one interference operation.
    pub interference_fraction: f64,
    /// Every `n`-th run uses the 20-instance cluster (batch 4).
    pub large_cluster_every: usize,
    /// Diagnosis sibling order.
    pub test_order: TestOrder,
    /// The interference kinds to draw from.
    pub interference_kinds: Vec<Interference>,
    /// Close the loop: after each run, hand every diagnosed detection to
    /// `pod-recovery` and record the repair (MTTR, escalations, the
    /// self-conformance verdict).
    pub recovery: bool,
    /// Fast-path recovery: install the engine's detection hook so repairs
    /// dispatch eagerly mid-operation (with speculative plan pre-staging)
    /// instead of waiting for the end-of-run sweep. Only meaningful with
    /// `recovery`; the sweep still runs afterwards as the dedup'd backstop.
    pub eager_recovery: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            runs_per_fault: 20,
            seed: 42,
            amended_trees: false,
            transient_fraction: 0.06,
            reinject_fraction: 0.10,
            interference_fraction: 0.40,
            large_cluster_every: 5,
            test_order: TestOrder::ByProbability,
            // Weighted mix: the shared-account limit pressure is the rare
            // event it was in the paper's experiment.
            interference_kinds: vec![
                Interference::ScaleIn,
                Interference::ScaleIn,
                Interference::ScaleOut,
                Interference::ScaleOut,
                Interference::RandomTermination,
                Interference::RandomTermination,
                Interference::OtherTeamCapacityPressure,
            ],
            recovery: false,
            eager_recovery: true,
        }
    }
}

/// The plan of one run, derived deterministically from the campaign seed.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// The fault to inject.
    pub fault: FaultType,
    /// Scenario parameters (cluster size, seeds…).
    pub scenario: ScenarioConfig,
    /// When to inject, measured from simulation start.
    pub inject_at: SimTime,
    /// Revert the fault this long after injection (transient faults).
    pub transient_after: Option<SimDuration>,
    /// Re-inject (a different rogue AMI) this long after injection.
    pub reinject_after: Option<SimDuration>,
    /// Interference operations and their times.
    pub interferences: Vec<(SimTime, Interference)>,
    /// Run the recovery stage after the upgrade finishes.
    pub recovery: bool,
    /// Dispatch recoveries eagerly from the engine's detection hook.
    pub eager_recovery: bool,
}

/// One recovery attempt of the campaign's recovery stage, with its
/// self-conformance verdict.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// The executed recovery run (outcome, transcript, MTTR).
    pub run: pod_recovery::RecoveryRun,
    /// The run replayed against its own process model.
    pub conformance: ConformanceReport,
}

/// A compact summary of one reconstructed incident chain (see
/// [`pod_obs::incidents`]), kept per run so the campaign can score causal
/// coverage without retaining every event.
#[derive(Debug, Clone)]
pub struct IncidentSummary {
    /// The detection event's name (the [`pod_core::DetectionSource`] tag).
    pub detection: String,
    /// Hops in the chain, evidence and explanation included.
    pub hops: usize,
    /// Whether the chain starts at a `log.line` event.
    pub anchored: bool,
    /// Whether the chain reaches a `diagnosis.verdict` event.
    pub diagnosed: bool,
    /// `anchored && diagnosed` — an unbroken chain.
    pub complete: bool,
    /// Virtual time from first evidence to verdict (µs).
    pub elapsed_us: u64,
}

/// The raw spans and causal events of one run, retained for trace export
/// (Chrome trace-event and OTLP JSON).
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// The run's trace id.
    pub trace_id: String,
    /// Every finished span of the run.
    pub spans: Vec<SpanRecord>,
    /// Every causal event of the run.
    pub events: Vec<EventRecord>,
}

/// The record of one executed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Sources of every raw detection, in order.
    pub detection_sources: Vec<pod_core::DetectionSource>,
    /// The plan that was executed.
    pub plan: RunPlan,
    /// What actually happened (actual injection time etc.).
    pub truth: GroundTruth,
    /// The classification of the run's detections.
    pub outcome: RunOutcome,
    /// Whether the orchestrator finished the upgrade.
    pub upgrade_completed: bool,
    /// The run's pod-obs metric snapshot (cloud API traffic, retries,
    /// conformance verdicts, fault-tree work, pipeline drops).
    pub obs: pod_obs::Snapshot,
    /// The run's latency budget: span name → self virtual time (µs).
    pub stage_self_us: BTreeMap<String, u64>,
    /// One summary per reconstructed incident chain.
    pub incidents: Vec<IncidentSummary>,
    /// Spans discarded at the retention cap during this run.
    pub spans_dropped: u64,
    /// Causal events evicted from the ring during this run.
    pub events_dropped: u64,
    /// The recovery stage: one record per diagnosed detection (empty when
    /// the stage is disabled).
    pub recoveries: Vec<RecoveryRecord>,
}

/// Conformance-checking statistics across the campaign (§V.D).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConformanceStats {
    /// Runs whose fault type is a configuration fault (types 1–4).
    pub configuration_runs: usize,
    /// …of which conformance checking flagged anything.
    pub configuration_runs_flagged: usize,
    /// Runs whose fault type is a resource fault (types 5–8).
    pub resource_runs: usize,
    /// …of which conformance produced an erroneous trace before the first
    /// assertion detection.
    pub resource_runs_flagged_first: usize,
    /// …of which conformance flagged anything at all.
    pub resource_runs_flagged: usize,
}

/// The complete campaign result.
#[derive(Debug)]
pub struct CampaignReport {
    /// Interference operations applied across all runs.
    pub interference_applied: usize,
    /// Every executed run.
    pub records: Vec<RunRecord>,
    /// Overall Table-I metrics.
    pub overall: MetricSet,
    /// Metrics grouped by fault type (Figure 7).
    pub per_fault: Vec<(FaultType, MetricSet)>,
    /// Diagnosis-time distribution (Figure 6).
    pub timing: TimingStats,
    /// Conformance statistics (§V.D).
    pub conformance: ConformanceStats,
    /// pod-obs metrics aggregated (merged) across all runs.
    pub obs_totals: pod_obs::Snapshot,
    /// Per-fault-type latency budgets (p50/p95/p99 per pipeline stage).
    pub latency: LatencyProfile,
    /// The full trace of the last executed run, for export.
    pub last_trace: Option<TraceDump>,
    /// Spans dropped at the retention cap, summed over all runs.
    pub spans_dropped: u64,
    /// Causal events evicted from the ring, summed over all runs.
    pub events_dropped: u64,
    /// Incident chains reconstructed across all runs.
    pub incidents_total: usize,
    /// …of which were unbroken (log-line anchor through to verdict).
    pub incidents_complete: usize,
    /// The recovery stage aggregated (zeroes when disabled).
    pub recovery: RecoveryStats,
}

/// MTTR phase breakdown across recovered runs: where the seconds go
/// between the first failing signal and the verified repair.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// First failing signal → diagnosis start (dispatch delay).
    pub detection: TimingStats,
    /// The fault-tree walk itself.
    pub diagnosis: TimingStats,
    /// Plan staging, plus any verdict → recovery-start wait (zero on the
    /// eager path with a prestage hit; the whole sweep wait otherwise).
    pub staging: TimingStats,
    /// Step execution (the parallel-lane makespan, not the lane sum).
    pub repair: TimingStats,
    /// Closed-loop assertion re-checks.
    pub verification: TimingStats,
}

impl Default for PhaseStats {
    fn default() -> PhaseStats {
        PhaseStats {
            detection: TimingStats::new(Vec::new()),
            diagnosis: TimingStats::new(Vec::new()),
            staging: TimingStats::new(Vec::new()),
            repair: TimingStats::new(Vec::new()),
            verification: TimingStats::new(Vec::new()),
        }
    }
}

/// Aggregated recovery-stage statistics for one fault type.
#[derive(Debug, Clone)]
pub struct FaultRecoveryStats {
    /// Recovery runs attempted.
    pub attempted: usize,
    /// …ending `Recovered` with a passing re-check.
    pub recovered: usize,
    /// …ending `Escalated { to_operator }`.
    pub escalated: usize,
    /// …whose self-conformance replay was fit.
    pub conformance_fit: usize,
    /// MTTR distribution (detection → verified repair) of recovered runs.
    pub mttr: TimingStats,
}

impl Default for FaultRecoveryStats {
    fn default() -> FaultRecoveryStats {
        FaultRecoveryStats {
            attempted: 0,
            recovered: 0,
            escalated: 0,
            conformance_fit: 0,
            mttr: TimingStats::new(Vec::new()),
        }
    }
}

/// Aggregated recovery-stage statistics (closed-loop MTTR evaluation).
#[derive(Debug, Clone)]
pub struct RecoveryStats {
    /// All recovery runs attempted across the campaign.
    pub attempted: usize,
    /// …recovered (verified repair).
    pub recovered: usize,
    /// …escalated to the operator.
    pub escalated: usize,
    /// …conformance-fit against the recovery process model.
    pub conformance_fit: usize,
    /// Overall MTTR distribution of recovered runs.
    pub mttr: TimingStats,
    /// MTTR phase breakdown of recovered runs.
    pub phases: PhaseStats,
    /// Per-fault-type breakdown.
    pub per_fault: Vec<(FaultType, FaultRecoveryStats)>,
}

impl Default for RecoveryStats {
    fn default() -> RecoveryStats {
        RecoveryStats {
            attempted: 0,
            recovered: 0,
            escalated: 0,
            conformance_fit: 0,
            mttr: TimingStats::new(Vec::new()),
            phases: PhaseStats::default(),
            per_fault: Vec::new(),
        }
    }
}

/// The campaign runner.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Campaign {
        Campaign { config }
    }

    /// Builds the deterministic run plans.
    pub fn plans(&self) -> Vec<RunPlan> {
        let mut rng = SimRng::seed_from(self.config.seed);
        let mut plans = Vec::new();
        for fault in FaultType::all() {
            for i in 0..self.config.runs_per_fault {
                plans.push(self.plan_one(fault, i, &mut rng));
            }
        }
        plans
    }

    fn plan_one(&self, fault: FaultType, index: usize, rng: &mut SimRng) -> RunPlan {
        let large = self.config.large_cluster_every > 0
            && (index + 1).is_multiple_of(self.config.large_cluster_every);
        let (cluster_size, batch_size) = if large { (20, 4) } else { (4, 1) };
        let scenario = ScenarioConfig {
            cluster_size,
            batch_size,
            seed: rng.uniform_u64(1, u64::MAX - 1),
            amended_trees: self.config.amended_trees,
            test_order: self.config.test_order,
            consistent_api: true,
        };
        // Rough duration: replacements are sequential per instance, ≈ 62 s
        // each.
        let est = 20 + cluster_size as u64 * 62;
        let inject_at = SimTime::from_secs(rng.uniform_u64(15, est * 6 / 10));
        let transient_after = rng
            .chance(self.config.transient_fraction)
            .then(|| SimDuration::from_secs(rng.uniform_u64(45, 90)));
        let reinject_after = (fault == FaultType::AmiChangedDuringUpgrade
            && rng.chance(self.config.reinject_fraction))
        .then(|| SimDuration::from_secs(rng.uniform_u64(30, 90)));
        let mut interferences = Vec::new();
        if !self.config.interference_kinds.is_empty()
            && rng.chance(self.config.interference_fraction)
        {
            let count = if rng.chance(0.2) { 2 } else { 1 };
            for _ in 0..count {
                let kind = *rng.choose(&self.config.interference_kinds);
                let at = SimTime::from_secs(rng.uniform_u64(30, est * 6 / 10));
                interferences.push((at, kind));
            }
            interferences.sort_by_key(|(at, _)| *at);
        }
        RunPlan {
            fault,
            scenario,
            inject_at,
            transient_after,
            reinject_after,
            interferences,
            recovery: self.config.recovery,
            eager_recovery: self.config.eager_recovery,
        }
    }

    /// Executes the whole campaign.
    pub fn run(&self) -> CampaignReport {
        let mut records = Vec::new();
        let mut last_trace = None;
        for plan in self.plans() {
            let (record, dump) = execute_run_traced(&plan);
            records.push(record);
            last_trace = Some(dump);
        }
        summarise(records, last_trace)
    }
}

fn summarise(records: Vec<RunRecord>, last_trace: Option<TraceDump>) -> CampaignReport {
    let mut overall = MetricSet::default();
    let mut per_fault: Vec<(FaultType, MetricSet)> = FaultType::all()
        .into_iter()
        .map(|f| (f, MetricSet::default()))
        .collect();
    let mut times = Vec::new();
    let mut conformance = ConformanceStats::default();
    let mut obs_totals = pod_obs::Snapshot::default();
    let mut latency = LatencyProfile::new();
    let mut spans_dropped = 0;
    let mut events_dropped = 0;
    let mut incidents_total = 0;
    let mut incidents_complete = 0;
    for r in &records {
        overall.add(&r.outcome);
        obs_totals.merge(&r.obs);
        latency.record(r.plan.fault, &r.stage_self_us);
        spans_dropped += r.spans_dropped;
        events_dropped += r.events_dropped;
        incidents_total += r.incidents.len();
        incidents_complete += r.incidents.iter().filter(|i| i.complete).count();
        if let Some((_, set)) = per_fault.iter_mut().find(|(f, _)| *f == r.plan.fault) {
            set.add(&r.outcome);
        }
        // Figure 6 reports one diagnosis time per run: the first diagnosis.
        times.extend(r.outcome.diagnosis_times.first().copied());
        if r.plan.fault.is_configuration_fault() {
            // Interference can legitimately disturb the log, so the paper's
            // "invisible to conformance" claim is scored on clean runs.
            if r.truth.interferences.is_empty() {
                conformance.configuration_runs += 1;
                if r.outcome.conformance_any {
                    conformance.configuration_runs_flagged += 1;
                }
            }
        } else {
            conformance.resource_runs += 1;
            if r.outcome.conformance_any {
                conformance.resource_runs_flagged += 1;
            }
            if r.outcome.conformance_first {
                conformance.resource_runs_flagged_first += 1;
            }
        }
    }
    let recovery = aggregate_recovery(&records);
    let interference_applied = records.iter().map(|r| r.truth.interferences.len()).sum();
    CampaignReport {
        interference_applied,
        records,
        overall,
        per_fault,
        timing: TimingStats::new(times),
        conformance,
        obs_totals,
        latency,
        last_trace,
        spans_dropped,
        events_dropped,
        incidents_total,
        incidents_complete,
        recovery,
    }
}

fn aggregate_recovery(records: &[RunRecord]) -> RecoveryStats {
    let mut stats = RecoveryStats::default();
    let mut all_mttr = Vec::new();
    let mut phase_samples: [Vec<SimDuration>; 5] = Default::default();
    let mut per_fault: Vec<(FaultType, usize, usize, usize, usize, Vec<SimDuration>)> =
        FaultType::all()
            .into_iter()
            .map(|f| (f, 0, 0, 0, 0, Vec::new()))
            .collect();
    for r in records {
        let slot = per_fault
            .iter_mut()
            .find(|(f, ..)| *f == r.plan.fault)
            .expect("all fault types present");
        for rec in &r.recoveries {
            stats.attempted += 1;
            slot.1 += 1;
            if rec.run.outcome.is_recovered() {
                stats.recovered += 1;
                slot.2 += 1;
                // MTTR and its phase breakdown cover actual repairs;
                // step-less reviews of self-resolved incidents have no
                // repair time to sample.
                if let Some(mttr) = rec.run.mttr() {
                    all_mttr.push(mttr);
                    slot.5.push(mttr);
                    let p = &rec.run.phases;
                    phase_samples[0].push(p.detection);
                    phase_samples[1].push(p.diagnosis);
                    phase_samples[2].push(p.staging);
                    phase_samples[3].push(p.repair);
                    phase_samples[4].push(p.verification);
                }
            } else {
                stats.escalated += 1;
                slot.3 += 1;
            }
            if rec.conformance.fit {
                stats.conformance_fit += 1;
                slot.4 += 1;
            }
        }
    }
    stats.mttr = TimingStats::new(all_mttr);
    let [detection, diagnosis, staging, repair, verification] = phase_samples;
    stats.phases = PhaseStats {
        detection: TimingStats::new(detection),
        diagnosis: TimingStats::new(diagnosis),
        staging: TimingStats::new(staging),
        repair: TimingStats::new(repair),
        verification: TimingStats::new(verification),
    };
    stats.per_fault = per_fault
        .into_iter()
        .map(|(f, attempted, recovered, escalated, fit, mttr)| {
            (
                f,
                FaultRecoveryStats {
                    attempted,
                    recovered,
                    escalated,
                    conformance_fit: fit,
                    mttr: TimingStats::new(mttr),
                },
            )
        })
        .collect();
    stats
}

/// Executes one planned run and classifies its detections. If the sampled
/// injection time falls after the operation already ended (the upgrade was
/// faster than estimated), the run is retried with an earlier injection so
/// every run really carries its fault, like the paper's campaign.
pub fn execute_run(plan: &RunPlan) -> RunRecord {
    execute_run_traced(plan).0
}

/// Like [`execute_run`], additionally returning the run's full trace
/// (spans and causal events) for export.
pub fn execute_run_traced(plan: &RunPlan) -> (RunRecord, TraceDump) {
    let mut plan = plan.clone();
    loop {
        let (record, dump) = execute_run_once(&plan);
        if record.truth.injected_at < SimTime::from_micros(u64::MAX)
            || plan.inject_at < SimTime::from_secs(10)
        {
            return (record, dump);
        }
        plan.inject_at = SimTime::from_micros(plan.inject_at.as_micros() / 2);
    }
}

fn execute_run_once(plan: &RunPlan) -> (RunRecord, TraceDump) {
    let scenario = build_scenario(&plan.scenario);
    // One trace per run; the baseline diff keeps scenario-setup admin
    // traffic out of the run's metric snapshot. `begin_run` resets the
    // span trace and the causal-event ring together.
    scenario.cloud.obs().begin_run(&scenario.trace_id);
    let obs_baseline = scenario.cloud.obs().snapshot();
    let mut engine = build_engine(&scenario, &plan.scenario);
    // The recovery dispatcher is shared between the engine's detection
    // hook (eager fast path, installed below) and the end-of-run sweep;
    // its dedup set guarantees one recovery per diagnosed detection no
    // matter which path gets there first.
    let dispatcher = plan.recovery.then(|| {
        Rc::new(RefCell::new(RecoveryDispatcher::new(
            scenario.cloud.clone(),
            scenario.storage.clone(),
            scenario.env.clone(),
            scenario.trace_id.clone(),
            RecoveryConfig::default(),
        )))
    });
    if plan.eager_recovery {
        if let Some(dispatcher) = &dispatcher {
            let hook = Rc::clone(dispatcher);
            engine.set_detection_hook(move |notice| hook.borrow_mut().on_notice(notice));
        }
    }
    let mut observer = CampaignObserver::new(engine, &scenario, plan);
    let mut upgrade = RollingUpgrade::new(
        scenario.cloud.clone(),
        scenario.upgrade.clone(),
        scenario.trace_id.clone(),
    );
    let report = upgrade.run(&mut observer);
    let summary = observer.engine.finish();
    // The recovery stage runs before the trace/metric capture so the whole
    // detection → diagnosis → recovery → verification arc lands in one
    // causal-event ring and one metric snapshot.
    let recoveries = match dispatcher {
        Some(dispatcher) => {
            let mut d = dispatcher.borrow_mut();
            d.sweep(&summary.detections);
            d.take_records()
                .into_iter()
                .map(|(_, run)| {
                    let conformance = conformance_check(&scenario.cloud, &run);
                    RecoveryRecord { run, conformance }
                })
                .collect()
        }
        None => Vec::new(),
    };
    let run_obs = scenario.cloud.obs();
    let obs = run_obs.snapshot().diff(&obs_baseline);
    let dump = TraceDump {
        trace_id: scenario.trace_id.clone(),
        spans: run_obs.tracer().finished(),
        events: run_obs.events().records(),
    };
    let stage_self_us = stage_self_times(&dump.spans);
    let incidents = pod_obs::incidents(&dump.events)
        .iter()
        .map(|c| IncidentSummary {
            detection: c.detection.name.to_string(),
            hops: c.hops.len(),
            anchored: c.anchored,
            diagnosed: c.diagnosed,
            complete: c.complete(),
            elapsed_us: c.elapsed().as_micros(),
        })
        .collect();
    let truth = GroundTruth {
        fault: plan.fault,
        injected_at: observer
            .injected_at
            .unwrap_or(SimTime::from_micros(u64::MAX)),
        reverted_at: observer.reverted_at,
        interferences: observer.applied_interferences.clone(),
    };
    let outcome = classify_run(&truth, &summary.detections);
    let record = RunRecord {
        detection_sources: summary.detections.iter().map(|d| d.source).collect(),
        plan: plan.clone(),
        truth,
        outcome,
        upgrade_completed: matches!(report.outcome, UpgradeOutcome::Completed),
        obs,
        stage_self_us,
        incidents,
        spans_dropped: run_obs.tracer().dropped(),
        events_dropped: run_obs.events().dropped(),
        recoveries,
    };
    (record, dump)
}

/// The observer that feeds the engine and executes the injection /
/// interference schedule at orchestrator safe points.
struct CampaignObserver<'s> {
    engine: PodEngine,
    scenario: &'s Scenario,
    plan: &'s RunPlan,
    rng: SimRng,
    injector: FaultInjector,
    injected_at: Option<SimTime>,
    reverted_at: Option<SimTime>,
    reinjected: bool,
    second_injector: Option<FaultInjector>,
    pending_interferences: Vec<(SimTime, Interference)>,
    applied_interferences: Vec<(SimTime, Interference)>,
    /// Scale acks pending: (when, new expected count delta).
    pending_env_acks: Vec<(SimTime, i64)>,
    standalone: Vec<InstanceId>,
    capacity_release_at: Option<SimTime>,
}

impl<'s> CampaignObserver<'s> {
    fn new(engine: PodEngine, scenario: &'s Scenario, plan: &'s RunPlan) -> Self {
        CampaignObserver {
            engine,
            scenario,
            plan,
            rng: SimRng::seed_from(plan.scenario.seed ^ 0xD1A6),
            injector: FaultInjector::new(plan.fault),
            injected_at: None,
            reverted_at: None,
            reinjected: false,
            second_injector: None,
            pending_interferences: plan.interferences.clone(),
            applied_interferences: Vec::new(),
            pending_env_acks: Vec::new(),
            standalone: Vec::new(),
            capacity_release_at: None,
        }
    }

    fn lc_exists(&self, cloud: &Cloud) -> bool {
        cloud
            .admin_describe_launch_config(&pod_cloud::LaunchConfigName::new(
                &self.scenario.upgrade_lc_name,
            ))
            .is_some()
    }

    fn drive_schedule(&mut self, cloud: &Cloud, now: SimTime) {
        // Fault injection (configuration faults wait for the upgrade LC).
        if self.injected_at.is_none() && now >= self.plan.inject_at {
            let ready = !self.plan.fault.is_configuration_fault() || self.lc_exists(cloud);
            if ready {
                self.injector.inject(
                    cloud,
                    &self.scenario.upgrade,
                    &self.scenario.upgrade_lc_name,
                    &mut self.rng,
                );
                self.injected_at = Some(now);
            }
        }
        // Transient revert: the fault-injection mechanism corrects the
        // fault "soon after" — shortly after the first detection, racing
        // the dispatched diagnosis (wrong-diagnosis class 3). A fallback
        // deadline reverts even if nothing detected it.
        if let (Some(injected), Some(after)) = (self.injected_at, self.plan.transient_after) {
            if self.reverted_at.is_none() {
                // Only detections the fault itself can plausibly cause
                // (periodic-timer detections are dominated by concurrent
                // operations and must not trigger the revert).
                let detected_at = self
                    .engine
                    .detections()
                    .iter()
                    .find(|d| {
                        d.at >= injected
                            && matches!(
                                d.source,
                                pod_core::DetectionSource::AssertionLog
                                    | pod_core::DetectionSource::ConformanceKnownError
                            )
                    })
                    .map(|d| d.at);
                let due = match detected_at {
                    Some(at) => now >= at + SimDuration::from_secs(2),
                    None => now >= injected + after + SimDuration::from_secs(420),
                };
                if due && self.injector.revert(cloud, &self.scenario.upgrade_lc_name) {
                    self.reverted_at = Some(now);
                }
            }
        }
        // Second AMI change mid-diagnosis (wrong-diagnosis class 2).
        if let (Some(injected), Some(after)) = (self.injected_at, self.plan.reinject_after) {
            if !self.reinjected && now >= injected + after && self.reverted_at.is_none() {
                let mut second = FaultInjector::new(FaultType::AmiChangedDuringUpgrade);
                second.inject(
                    cloud,
                    &self.scenario.upgrade,
                    &self.scenario.upgrade_lc_name,
                    &mut self.rng,
                );
                self.second_injector = Some(second);
                self.reinjected = true;
            }
        }
        // Interferences.
        let due: Vec<(SimTime, Interference)> = {
            let (fire, keep): (Vec<_>, Vec<_>) = self
                .pending_interferences
                .drain(..)
                .partition(|(at, _)| now >= *at);
            self.pending_interferences = keep;
            fire
        };
        for (_, kind) in due {
            let ids = kind.apply(cloud, &self.scenario.upgrade, &mut self.rng);
            self.applied_interferences.push((now, kind));
            match kind {
                Interference::ScaleIn => {
                    // The operator acknowledges the legitimate change a
                    // while later; assertions racing this window reproduce
                    // FP class 2 and give the periodic check time to flag
                    // the interference.
                    self.pending_env_acks
                        .push((now + SimDuration::from_secs(75), -1));
                }
                Interference::ScaleOut => {
                    self.pending_env_acks
                        .push((now + SimDuration::from_secs(75), 1));
                }
                Interference::OtherTeamCapacityPressure => {
                    self.standalone = ids;
                    self.capacity_release_at = Some(now + SimDuration::from_secs(240));
                }
                Interference::RandomTermination => {}
            }
        }
        // Operator acknowledgements of legitimate scaling.
        let acks: Vec<(SimTime, i64)> = {
            let (fire, keep): (Vec<_>, Vec<_>) = self
                .pending_env_acks
                .drain(..)
                .partition(|(at, _)| now >= *at);
            self.pending_env_acks = keep;
            fire
        };
        for (_, delta) in acks {
            self.scenario.env.update(|env| {
                env.expected_count = (env.expected_count as i64 + delta).max(1) as u32;
            });
        }
        // Release the other team's capacity.
        if let Some(at) = self.capacity_release_at {
            if now >= at {
                cloud.admin_release_standalone(&self.standalone);
                cloud.admin_set_instance_limit(40);
                self.standalone.clear();
                self.capacity_release_at = None;
            }
        }
    }
}

impl UpgradeObserver for CampaignObserver<'_> {
    fn on_log(&mut self, event: LogEvent) {
        self.engine.ingest(event);
    }

    fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
        self.drive_schedule(cloud, now);
        self.engine.poll();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_all_faults() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 3,
            ..CampaignConfig::default()
        });
        let p1 = c.plans();
        let p2 = c.plans();
        assert_eq!(p1.len(), 24);
        assert_eq!(
            p1.iter().map(|p| p.fault).collect::<Vec<_>>(),
            p2.iter().map(|p| p.fault).collect::<Vec<_>>()
        );
        assert_eq!(
            p1.iter().map(|p| p.scenario.seed).collect::<Vec<_>>(),
            p2.iter().map(|p| p.scenario.seed).collect::<Vec<_>>()
        );
        for fault in FaultType::all() {
            assert_eq!(p1.iter().filter(|p| p.fault == fault).count(), 3);
        }
    }

    #[test]
    fn single_run_detects_its_fault() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        });
        let plans = c.plans();
        let record = execute_run(&plans[0]);
        assert_eq!(record.plan.fault, FaultType::AmiChangedDuringUpgrade);
        assert!(record.outcome.fault_detected, "{record:#?}");
        assert!(record.outcome.fault_diagnosed_correctly, "{record:#?}");
    }

    #[test]
    fn run_snapshot_covers_the_whole_pipeline() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        });
        let record = execute_run(&c.plans()[0]);
        let obs = &record.obs;
        // Cloud API traffic and latency.
        assert!(obs.counter("cloud.api.calls") > 0);
        assert!(obs
            .histogram("cloud.api.latency_us")
            .is_some_and(|h| h.count > 0));
        assert!(obs.counters.contains_key("cloud.api.throttled"));
        // Consistent-layer retries.
        assert!(obs.counter("consistent.calls") > 0);
        assert!(obs.counters.contains_key("consistent.retries"));
        // Conformance classifications and replay latency.
        assert!(obs.counter("conformance.replays") > 0);
        assert!(obs.counter("conformance.fit") > 0);
        assert!(obs
            .histogram("conformance.replay_latency_us")
            .is_some_and(|h| h.count > 0));
        // Fault-tree work: tests executed vs memoised.
        assert!(obs.counter("faulttree.tests_run") > 0);
        assert!(obs.counters.contains_key("faulttree.memo_hits"));
        // Detections and per-stage pipeline throughput.
        assert!(obs.counter("engine.detections") > 0);
        assert!(obs.counter("pipeline.pushed") > 0);
        assert!(obs.counter("pipeline.noise-filter.processed") > 0);
    }

    #[test]
    fn every_detected_fault_has_an_unbroken_causal_chain() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        });
        for plan in c.plans() {
            let (record, dump) = execute_run_traced(&plan);
            if !record.outcome.fault_detected {
                continue;
            }
            assert!(
                record.incidents.iter().any(|i| i.complete),
                "fault {:?}: no unbroken chain in {:#?}\ntimelines:\n{}",
                plan.fault,
                record.incidents,
                pod_obs::render_timelines(&dump.events),
            );
        }
    }

    #[test]
    fn run_trace_captures_stages_and_events() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        });
        let (record, dump) = execute_run_traced(&c.plans()[0]);
        assert!(!dump.spans.is_empty());
        assert!(!dump.events.is_empty());
        assert!(dump.trace_id.starts_with("run-"));
        // Healthy API calls are counted, not traced (outcome-conditional
        // tracing), so the stage map attributes to the process steps.
        assert!(
            record.stage_self_us.contains_key("upgrade.step"),
            "stages: {:?}",
            record.stage_self_us.keys().collect::<Vec<_>>()
        );
        assert!(!record.incidents.is_empty());
        assert_eq!(record.events_dropped, 0);
    }

    #[test]
    fn recovery_stage_closes_the_loop_for_every_fault_type() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            recovery: true,
            ..CampaignConfig::default()
        });
        let report = c.run();
        let stats = &report.recovery;
        assert!(stats.attempted > 0);
        // Every diagnosed incident ends recovered or escalated — never
        // silently dropped.
        assert_eq!(stats.recovered + stats.escalated, stats.attempted);
        for r in &report.records {
            assert_eq!(
                r.recoveries.len(),
                r.outcome.diagnosis_times.len(),
                "one recovery per diagnosed detection ({:?})",
                r.plan.fault
            );
        }
        // Every recovery run conforms to its own process model.
        assert_eq!(
            stats.conformance_fit, stats.attempted,
            "every recovery run must fit the recovery model"
        );
        // Every injected fault type has a mapped plan, so each must show at
        // least one verified repair, with its MTTR sampled.
        for (fault, fs) in &stats.per_fault {
            assert!(fs.attempted > 0, "no recovery attempted for {fault:?}");
            assert!(
                fs.recovered > 0,
                "no verified repair for {fault:?} ({} escalated)",
                fs.escalated
            );
            assert!(!fs.mttr.is_empty());
        }
        assert!(!stats.mttr.is_empty());
    }

    #[test]
    fn recovery_stage_is_deterministic() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 1,
            interference_fraction: 0.0,
            transient_fraction: 0.0,
            reinject_fraction: 0.0,
            large_cluster_every: 0,
            recovery: true,
            ..CampaignConfig::default()
        });
        let plan = &c.plans()[0];
        let digests = |r: &RunRecord| {
            r.recoveries
                .iter()
                .map(|rec| rec.run.digest())
                .collect::<Vec<_>>()
        };
        let first = execute_run(plan);
        let second = execute_run(plan);
        assert!(!first.recoveries.is_empty());
        assert_eq!(
            digests(&first),
            digests(&second),
            "same seed must give byte-identical recovery transcripts"
        );
    }

    #[test]
    fn mini_campaign_has_high_recall() {
        let c = Campaign::new(CampaignConfig {
            runs_per_fault: 2,
            large_cluster_every: 0,
            ..CampaignConfig::default()
        });
        let report = c.run();
        assert_eq!(report.records.len(), 16);
        assert_eq!(report.latency.faults().len(), 8);
        assert!(report.incidents_total > 0);
        assert!(report
            .last_trace
            .as_ref()
            .is_some_and(|t| !t.events.is_empty()));
        assert!(
            report.overall.detection_recall() >= 0.9,
            "recall {} (missed: {:?})",
            report.overall.detection_recall(),
            report
                .records
                .iter()
                .filter(|r| !r.outcome.fault_detected)
                .map(|r| r.plan.fault)
                .collect::<Vec<_>>()
        );
        assert!(!report.timing.is_empty());
    }
}
