//! The gateway soak: many interleaved faulty upgrades replayed through
//! `pod-gateway` in two phases.
//!
//! **Phase A ([`collect_streams`])** runs each upgrade independently on its
//! own simulated cloud, injecting one fault per operation (cycling through
//! all eight types), applying shared-account interference to every n-th
//! operation and sprinkling plaintext application noise — and serializes
//! every log line to its raw wire form (Logstash JSON for operation lines,
//! bare text for noise).
//!
//! **Phase B ([`replay`])** merges all streams by arrival time into one
//! interleaved feed and pushes it through a single [`Gateway`], with one
//! freshly built `pod_core` engine per operation as the sink. Detections
//! arise at replay time — this is the batched-replay half of the design:
//! parsing and token replay are amortized over gateway batches.
//!
//! Everything runs on deterministic virtual clocks, so the same
//! [`SoakConfig`] always produces a byte-identical [`SoakReport::digest`].
//!
//! [`replay_telemetry`] runs the same replay under an explicit
//! [`TelemetryMode`]: `Off` records no spans/events at all (the overhead
//! baseline), `Sampled` records everything but *retains* per-operation
//! traces only when the tail-based [`TailSampler`] keeps them (detections,
//! errors, degradation warnings and tail-latency exemplars are never
//! discarded), and `Full` retains every trace. The mode never changes the
//! detections — [`SoakReport::digest`] is byte-identical across all three.
//!
//! [`replay_with_recovery`] adds the recovery stage on top: every
//! per-tenant engine's detection hook feeds one shared
//! [`RecoveryStorm`], whose executor lanes contend for the single
//! simulated cloud through the gateway's admission gate. Repairs that
//! would queue past the lane-wait cap are shed to the per-tenant
//! end-of-operation sweep — deferred, never dropped — and every lane
//! wait and throttle penalty is charged to the repairing tenant's
//! virtual clock, so the per-tenant MTTR honestly reflects the load.
//! The recovery transcript folds into [`SoakReport::digest`]: same seed
//! + same interleaving ⇒ byte-identical even under maximal contention.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use pod_cloud::Cloud;
use pod_gateway::{Gateway, GatewayConfig, GatewayStats, OpId};
use pod_log::{Json, LogEvent};
use pod_obs::{FlightDump, RunSignals, SampleVerdict, SamplerConfig, TailSampler, TelemetryMode};
use pod_orchestrator::{
    FaultInjector, FaultType, Interference, NoiseGenerator, RollingUpgrade, UpgradeObserver,
    UpgradeOutcome,
};
use pod_recovery::{
    RecoveryConfig, RecoveryPath, RecoveryStorm, StormConfig, StormStats, TenantId,
};
use pod_sim::{SimDuration, SimRng, SimTime};

use crate::profile::{stage_self_times, LatencyProfile};
use crate::scenario::{build_engine, build_scenario, Scenario, ScenarioConfig};
use crate::timing::TimingStats;

/// Knobs of the soak.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent operations to run and interleave. Default 64.
    pub ops: usize,
    /// Master seed; every operation derives its own.
    pub seed: u64,
    /// Per-tick probability of a plaintext application-noise line.
    pub noise_rate: f64,
    /// Every n-th operation also suffers a shared-account interference
    /// operation (scale-out or random termination). 0 disables.
    pub interference_every: usize,
    /// Every n-th operation suffers an injected fault (cycling through all
    /// eight types); the rest run healthy. 1 = every operation is faulty
    /// (the default, and the historical behavior), 0 = no faults. A
    /// mostly-healthy mix is what gives tail-based sampling something to
    /// discard — see the `obs_overhead` bench.
    pub fault_every: usize,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            ops: 64,
            seed: 2014,
            noise_rate: 0.05,
            interference_every: 4,
            fault_every: 1,
        }
    }
}

/// One operation's phase-A product: its scenario (retained so the replay
/// can build an engine against the same cloud) and its raw line stream.
#[derive(Debug)]
pub struct OpStream {
    /// The fault injected into this operation (`None` = healthy run).
    pub fault: Option<FaultType>,
    /// The scenario the upgrade ran on (cloud state is post-upgrade).
    pub scenario: Scenario,
    /// The scenario's configuration (needed to rebuild the engine).
    pub scenario_config: ScenarioConfig,
    /// When the fault was actually injected.
    pub injected_at: Option<SimTime>,
    /// Whether the orchestrator completed the upgrade.
    pub upgrade_completed: bool,
    /// The raw wire lines, in arrival order: (arrival time, raw text).
    pub lines: Vec<(SimTime, String)>,
    /// Every `i-…` instance token mentioned in this operation's own lines
    /// (the ground truth for the cross-operation leak check).
    pub tokens: BTreeSet<String>,
}

/// The phase-A product: every operation's stream.
#[derive(Debug)]
pub struct SoakStreams {
    /// One stream per operation.
    pub ops: Vec<OpStream>,
    /// Total raw lines across all streams.
    pub lines_total: u64,
}

/// One operation's replay result.
#[derive(Debug)]
pub struct SoakOpResult {
    /// The operation's trace id (its gateway instance id).
    pub trace_id: String,
    /// The injected fault (`None` = healthy run).
    pub fault: Option<FaultType>,
    /// The shard that served the operation.
    pub shard: usize,
    /// Raw lines the operation submitted.
    pub lines_submitted: u64,
    /// Lines the gateway delivered to the operation's engine.
    pub lines_delivered: u64,
    /// Detections the engine raised at replay.
    pub detections: usize,
    /// Whether the phase-A upgrade completed.
    pub upgrade_completed: bool,
    /// The canonical detection digest (see `pod_core::RunSummary::digest`).
    pub digest: String,
    /// The tail-sampling verdict for this operation's trace
    /// ([`TelemetryMode::Sampled`] only; `None` means no sampling ran —
    /// everything retained under `Full`, nothing recorded under `Off`).
    pub verdict: Option<SampleVerdict>,
    /// Incident chains reconstructed from this operation's retained trace.
    pub incidents: usize,
}

/// The replay result: per-operation outcomes plus gateway-level statistics.
#[derive(Debug)]
pub struct SoakReport {
    /// Per-operation results, in stream order.
    pub ops: Vec<SoakOpResult>,
    /// Gateway statistics (throughput, backpressure, per-shard waits).
    pub stats: GatewayStats,
    /// The gateway's full pod-obs metric snapshot.
    pub snapshot: pod_obs::Snapshot,
    /// Replay-time latency budget per fault type (p50/p95/p99 per stage).
    pub latency: LatencyProfile,
    /// Total raw lines across all streams.
    pub lines_total: u64,
    /// Cross-operation leakage findings (must be empty).
    pub leaks: Vec<String>,
    /// The telemetry mode the replay ran under.
    pub mode: TelemetryMode,
    /// Operation traces retained (all of them under `Full`, the sampler's
    /// keep set under `Sampled`, zero under `Off`).
    pub kept_traces: usize,
    /// Operation traces recorded but discarded by the sampler.
    pub discarded_traces: usize,
    /// Incident chains reconstructed across all retained traces.
    pub incidents: usize,
    /// The gateway's flight-recorder black box, when enabled.
    pub flight: Option<FlightDump>,
    /// The recovery stage's outcome ([`replay_with_recovery`] only).
    pub recovery: Option<SoakRecoveryReport>,
}

impl SoakReport {
    /// A canonical byte string over every operation's detections and the
    /// gateway statistics: two runs from the same seed must match exactly.
    /// When the recovery stage ran, the full recovery transcript (every
    /// tenant's runs, paths and log lines) is part of the digest.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&format!(
                "== {} fault={:?} shard={} delivered={} ==\n{}\n",
                op.trace_id, op.fault, op.shard, op.lines_delivered, op.digest
            ));
        }
        out.push_str(&self.stats.to_json().to_string());
        out.push('\n');
        if let Some(rec) = &self.recovery {
            let s = rec.stats;
            out.push_str(&format!(
                "== recovery storm: requests={} admitted={} throttled={} deferred={} swept={} \
                 peak_concurrent={} ==\n",
                s.requests, s.admitted, s.throttled, s.deferred, s.swept, s.peak_concurrent
            ));
            out.push_str(&rec.transcript());
        }
        out
    }
}

/// One tenant's recovery-under-load outcome.
#[derive(Debug)]
pub struct TenantRecoveryResult {
    /// The tenant's trace id (its gateway instance id).
    pub trace_id: String,
    /// The fault injected into the tenant's upgrade.
    pub fault: Option<FaultType>,
    /// Recovery runs attempted (one per detected incident).
    pub attempted: usize,
    /// Runs that reached a verified repair.
    pub recovered: usize,
    /// Runs that exhausted the plan ladder and escalated.
    pub escalated: usize,
    /// Runs shed by the admission gate and executed by the sweep.
    pub deferred_swept: usize,
    /// Eager runs the shared API throttled.
    pub throttled: usize,
    /// MTTR-under-load samples (detection → verified repair, including
    /// lane waits and throttle penalties).
    pub mttr: TimingStats,
    /// The tenant's canonical recovery transcript.
    pub transcript: String,
}

/// The recovery stage's aggregate outcome across every tenant.
#[derive(Debug)]
pub struct SoakRecoveryReport {
    /// The contention knobs the storm ran under.
    pub config: StormConfig,
    /// Per-tenant results, in stream order.
    pub tenants: Vec<TenantRecoveryResult>,
    /// Total recovery runs attempted.
    pub attempted: usize,
    /// Runs that reached a verified repair (any path).
    pub recovered: usize,
    /// Runs that escalated (any path).
    pub escalated: usize,
    /// Recovered runs that went through an eager lane or review (not the
    /// sweep).
    pub recovered_direct: usize,
    /// Escalated runs that went through an eager lane or review.
    pub escalated_direct: usize,
    /// Runs shed to the sweep — deferred then executed, never dropped.
    pub deferred_swept: usize,
    /// Eager runs the shared API throttled.
    pub throttled: usize,
    /// The storm's exact admission accounting.
    pub stats: StormStats,
    /// MTTR-under-load distribution across all tenants.
    pub mttr: TimingStats,
}

impl SoakRecoveryReport {
    /// The full recovery transcript: every tenant's runs in stream order.
    /// Byte-identical across same-seed replays.
    pub fn transcript(&self) -> String {
        self.tenants.iter().map(|t| t.transcript.as_str()).collect()
    }

    /// The headline storm invariant: no incident is ever dropped.
    /// `recovered + escalated == attempted` (every incident reached a
    /// terminal state), `recovered_direct + escalated_direct +
    /// deferred_swept == attempted` (every incident is accounted to
    /// exactly one path), and the gate's own ledger balances.
    pub fn none_dropped(&self) -> bool {
        self.recovered + self.escalated == self.attempted
            && self.recovered_direct + self.escalated_direct + self.deferred_swept == self.attempted
            && self.stats.admitted + self.stats.deferred == self.stats.requests
            && self.stats.swept == self.stats.deferred
            && self.stats.throttled <= self.stats.admitted
    }
}

/// Collects every `i-…` instance token in `text` into `out` (used to
/// establish which cloud instances each operation's lines mention).
fn instance_tokens(text: &str, out: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find("i-") {
        let start = from + pos;
        let clean_boundary = start == 0 || !bytes[start - 1].is_ascii_alphanumeric();
        let mut end = start + 2;
        while end < bytes.len() && bytes[end].is_ascii_alphanumeric() {
            end += 1;
        }
        if clean_boundary && end > start + 2 {
            out.insert(text[start..end].to_string());
        }
        from = start + 2;
    }
}

/// The phase-A observer: serializes operation lines, injects the fault at
/// orchestrator safe points (configuration faults wait for the upgrade
/// launch configuration, like the campaign) and emits plaintext noise.
struct SoakCollector<'s> {
    scenario: &'s Scenario,
    fault: Option<FaultType>,
    inject_at: SimTime,
    injector: Option<FaultInjector>,
    injected_at: Option<SimTime>,
    interference: Option<(SimTime, Interference)>,
    noise: NoiseGenerator,
    rng: SimRng,
    lines: Vec<(SimTime, String)>,
}

impl SoakCollector<'_> {
    fn lc_exists(&self, cloud: &Cloud) -> bool {
        cloud
            .admin_describe_launch_config(&pod_cloud::LaunchConfigName::new(
                &self.scenario.upgrade_lc_name,
            ))
            .is_some()
    }
}

impl UpgradeObserver for SoakCollector<'_> {
    fn on_log(&mut self, event: LogEvent) {
        // Operation lines travel as Logstash JSON, exactly as a shipper
        // would put them on the wire.
        self.lines
            .push((event.timestamp, event.to_json().to_string()));
    }

    fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
        if let Some(fault) = self.fault {
            if self.injected_at.is_none() && now >= self.inject_at {
                let ready = !fault.is_configuration_fault() || self.lc_exists(cloud);
                if ready {
                    if let Some(injector) = self.injector.as_mut() {
                        injector.inject(
                            cloud,
                            &self.scenario.upgrade,
                            &self.scenario.upgrade_lc_name,
                            &mut self.rng,
                        );
                    }
                    self.injected_at = Some(now);
                }
            }
        }
        if let Some((at, kind)) = self.interference {
            if now >= at {
                kind.apply(cloud, &self.scenario.upgrade, &mut self.rng);
                self.interference = None;
            }
        }
        // Shared-account application noise arrives as bare plaintext.
        if let Some(noise) = self.noise.maybe_emit(now) {
            self.lines.push((now, noise.message));
        }
    }
}

/// One operation's deterministic plan.
struct OpPlan {
    fault: Option<FaultType>,
    scenario: ScenarioConfig,
    inject_at: SimTime,
    interference: Option<(SimTime, Interference)>,
}

fn plan_ops(config: &SoakConfig) -> Vec<OpPlan> {
    let mut rng = SimRng::seed_from(config.seed);
    let mut seen_seeds = BTreeSet::new();
    (0..config.ops)
        .map(|i| {
            let mut seed = rng.uniform_u64(1, u64::MAX - 1);
            while !seen_seeds.insert(seed) {
                seed = rng.uniform_u64(1, u64::MAX - 1);
            }
            let interference = (config.interference_every > 0
                && (i + 1).is_multiple_of(config.interference_every))
            .then(|| {
                let kind = if rng.chance(0.5) {
                    Interference::ScaleOut
                } else {
                    Interference::RandomTermination
                };
                (SimTime::from_secs(rng.uniform_u64(30, 160)), kind)
            });
            // Faulty ops cycle through all eight types so every type stays
            // covered regardless of the healthy/faulty mix.
            let fault = (config.fault_every > 0 && i.is_multiple_of(config.fault_every))
                .then(|| FaultType::all()[(i / config.fault_every) % 8]);
            OpPlan {
                fault,
                scenario: ScenarioConfig {
                    seed,
                    ..ScenarioConfig::default()
                },
                inject_at: SimTime::from_secs(rng.uniform_u64(15, 160)),
                interference,
            }
        })
        .collect()
}

fn collect_one(plan: &OpPlan, noise_rate: f64) -> OpStream {
    let mut inject_at = plan.inject_at;
    loop {
        let scenario = build_scenario(&plan.scenario);
        scenario.cloud.obs().begin_run(&scenario.trace_id);
        let mut collector = SoakCollector {
            scenario: &scenario,
            fault: plan.fault,
            inject_at,
            injector: plan.fault.map(FaultInjector::new),
            injected_at: None,
            interference: plan.interference,
            noise: NoiseGenerator::new(SimRng::seed_from(plan.scenario.seed ^ 0x5048), noise_rate),
            rng: SimRng::seed_from(plan.scenario.seed ^ 0xD1A6),
            lines: Vec::new(),
        };
        let mut upgrade = RollingUpgrade::new(
            scenario.cloud.clone(),
            scenario.upgrade.clone(),
            scenario.trace_id.clone(),
        );
        let report = upgrade.run(&mut collector);
        let injected_at = collector.injected_at;
        let lines = std::mem::take(&mut collector.lines);
        drop(collector);
        // The sampled injection time can fall after a fast upgrade already
        // ended; retry earlier so every operation really carries its fault.
        if plan.fault.is_some() && injected_at.is_none() && inject_at >= SimTime::from_secs(10) {
            inject_at = SimTime::from_micros(inject_at.as_micros() / 2);
            continue;
        }
        let mut tokens = BTreeSet::new();
        for (_, raw) in &lines {
            instance_tokens(raw, &mut tokens);
        }
        return OpStream {
            fault: plan.fault,
            scenario,
            scenario_config: plan.scenario.clone(),
            injected_at,
            upgrade_completed: matches!(report.outcome, UpgradeOutcome::Completed),
            lines,
            tokens,
        };
    }
}

/// Phase A: runs every operation's upgrade on its own cloud and collects
/// the raw line streams.
pub fn collect_streams(config: &SoakConfig) -> SoakStreams {
    let ops: Vec<OpStream> = plan_ops(config)
        .iter()
        .map(|plan| collect_one(plan, config.noise_rate))
        .collect();
    let lines_total = ops.iter().map(|o| o.lines.len() as u64).sum();
    SoakStreams { ops, lines_total }
}

/// Phase B: merges all streams by arrival time and replays them through
/// one gateway, with a freshly built engine per operation as the sink.
/// Equivalent to [`replay_telemetry`] under [`TelemetryMode::Full`].
pub fn replay(streams: &SoakStreams, gateway: &GatewayConfig) -> SoakReport {
    replay_telemetry(streams, gateway, TelemetryMode::Full)
}

/// Phase B under an explicit [`TelemetryMode`]. The mode gates only the
/// trace side (spans, causal events, incident reconstruction); metrics,
/// detections and [`SoakReport::digest`] are byte-identical across modes.
pub fn replay_telemetry(
    streams: &SoakStreams,
    gateway: &GatewayConfig,
    mode: TelemetryMode,
) -> SoakReport {
    replay_inner(streams, gateway, mode, None)
}

/// Phase B with the recovery stage wired in: one shared [`RecoveryStorm`]
/// arbitrates every tenant's repairs over the gateway's admission gate.
/// Repairs mutate the per-tenant clouds, so a second same-seed run needs
/// fresh [`collect_streams`] output — against which the full report
/// digest (recovery transcript included) is byte-identical.
pub fn replay_with_recovery(
    streams: &SoakStreams,
    gateway: &GatewayConfig,
    storm: StormConfig,
) -> SoakReport {
    replay_inner(streams, gateway, TelemetryMode::Full, Some(storm))
}

fn replay_inner(
    streams: &SoakStreams,
    gateway: &GatewayConfig,
    mode: TelemetryMode,
    storm_config: Option<StormConfig>,
) -> SoakReport {
    let mut gw = Gateway::new(gateway.clone());
    gw.obs().set_mode(mode);
    let sampler = TailSampler::new(gw.obs().registry(), SamplerConfig::default());
    // The storm arbitrates on the gateway clock and reports into the
    // gateway's obs handle, so flight frames capture storm pressure.
    let storm = storm_config.map(|cfg| {
        Rc::new(RefCell::new(RecoveryStorm::new(
            gw.obs(),
            gw.clock().clone(),
            cfg,
        )))
    });
    let mut op_ids: Vec<OpId> = Vec::with_capacity(streams.ops.len());
    let mut tenant_ids: Vec<TenantId> = Vec::with_capacity(streams.ops.len());
    for stream in &streams.ops {
        // A fresh trace per replay so the latency budget covers exactly
        // the replay-time work (conformance, assertions, diagnosis).
        stream.scenario.cloud.obs().set_mode(mode);
        stream
            .scenario
            .cloud
            .obs()
            .begin_run(&stream.scenario.trace_id);
        let mut engine = build_engine(&stream.scenario, &stream.scenario_config);
        if let Some(storm) = &storm {
            let tenant = storm.borrow_mut().register_tenant(
                stream.scenario.cloud.clone(),
                stream.scenario.storage.clone(),
                stream.scenario.env.clone(),
                stream.scenario.trace_id.clone(),
                RecoveryConfig::default(),
            );
            tenant_ids.push(tenant);
            let hook = Rc::clone(storm);
            engine.set_detection_hook(move |notice| hook.borrow_mut().on_notice(tenant, notice));
        }
        let process_id = engine.process_id().to_string();
        let op = gw
            .register(
                process_id,
                stream.scenario.trace_id.clone(),
                Box::new(engine),
            )
            .expect("per-shard admission limit accommodates the soak");
        op_ids.push(op);
    }
    if let Some(storm) = &storm {
        // Each new detection refreshes the storm's in-flight and backlog
        // gauges right before the flight recorder stamps its frame.
        let hook = Rc::clone(storm);
        gw.set_incident_hook(move |_op, now, _new| hook.borrow_mut().observe(now));
    }

    // Merge every stream into one feed ordered by (arrival, op, seq) —
    // the deterministic interleaving of 64 concurrent producers.
    let mut merged: Vec<(SimTime, usize, usize)> = Vec::with_capacity(streams.lines_total as usize);
    for (i, stream) in streams.ops.iter().enumerate() {
        for (seq, (at, _)) in stream.lines.iter().enumerate() {
            merged.push((*at, i, seq));
        }
    }
    merged.sort_unstable();
    for (at, i, seq) in merged {
        gw.submit(op_ids[i], at, &streams.ops[i].lines[seq].1);
    }

    let reports = gw.finish();
    let stats = gw.stats();

    // Recovery stage wrap-up: every tenant's end-of-operation sweep runs
    // on the quiet post-soak path, executing everything the eager lanes
    // did not handle (including every gate-shed repair) — before the
    // metric snapshot, so `recovery.storm.*` accounting is final in it.
    let recovery = storm.as_ref().map(|storm| {
        let mut storm = storm.borrow_mut();
        let config = storm.config().clone();
        let mut tenants = Vec::with_capacity(streams.ops.len());
        let mut all_mttr: Vec<SimDuration> = Vec::new();
        let (mut attempted, mut recovered, mut escalated) = (0usize, 0usize, 0usize);
        let (mut recovered_direct, mut escalated_direct) = (0usize, 0usize);
        let (mut deferred_swept, mut throttled) = (0usize, 0usize);
        for ((stream, report), &tenant) in streams.ops.iter().zip(&reports).zip(&tenant_ids) {
            use std::fmt::Write as _;
            let records = storm.sweep(tenant, &report.summary.detections);
            let mut t = TenantRecoveryResult {
                trace_id: stream.scenario.trace_id.clone(),
                fault: stream.fault,
                attempted: records.len(),
                recovered: 0,
                escalated: 0,
                deferred_swept: 0,
                throttled: 0,
                mttr: TimingStats::new(Vec::new()),
                transcript: String::new(),
            };
            let _ = writeln!(t.transcript, "== {} fault={:?} ==", t.trace_id, t.fault);
            let mut mttr = Vec::new();
            for rec in &records {
                let swept = rec.path == RecoveryPath::DeferredSwept;
                if rec.run.outcome.is_recovered() {
                    t.recovered += 1;
                    recovered_direct += !swept as usize;
                } else {
                    t.escalated += 1;
                    escalated_direct += !swept as usize;
                }
                t.deferred_swept += swept as usize;
                t.throttled += matches!(
                    rec.path,
                    RecoveryPath::Eager {
                        throttled: true,
                        ..
                    }
                ) as usize;
                if let Some(d) = rec.run.mttr() {
                    mttr.push(d);
                    all_mttr.push(d);
                }
                let _ = writeln!(
                    t.transcript,
                    "-- incident {} path={} --\n{}",
                    rec.detection_index,
                    rec.path.tag(),
                    rec.run.digest()
                );
            }
            attempted += t.attempted;
            recovered += t.recovered;
            escalated += t.escalated;
            deferred_swept += t.deferred_swept;
            throttled += t.throttled;
            t.mttr = TimingStats::new(mttr);
            tenants.push(t);
        }
        SoakRecoveryReport {
            config,
            tenants,
            attempted,
            recovered,
            escalated,
            recovered_direct,
            escalated_direct,
            deferred_swept,
            throttled,
            stats: storm.stats(),
            mttr: TimingStats::new(all_mttr),
        }
    });

    // Operations a gateway tail-latency exemplar points at: their traces
    // are keep-worthy even when otherwise healthy, so a p99 read from the
    // queue-wait histogram always links to a retained trace.
    let tail_ops: BTreeSet<String> = gw
        .obs()
        .log_histogram("gateway.queue_wait_us")
        .exemplars()
        .iter()
        .filter_map(|e| {
            e.labels
                .iter()
                .find(|(k, _)| k == "op")
                .map(|(_, v)| v.clone())
        })
        .collect();

    let mut latency = LatencyProfile::new();
    let mut ops = Vec::with_capacity(streams.ops.len());
    let mut leaks = Vec::new();
    let mut kept_traces = 0usize;
    let mut discarded_traces = 0usize;
    let mut incidents_total = 0usize;
    for (i, (stream, report)) in streams.ops.iter().zip(&reports).enumerate() {
        let obs = stream.scenario.cloud.obs();
        let trace_id = &stream.scenario.trace_id;
        // Degradation warnings attributable to this operation: shedding on
        // its shard and regex step-limit aborts in its own pipeline.
        let shard_shed = stats.shards.get(report.shard).map_or(0, |s| s.shed);
        let step_limits = obs.counter("pipeline.regex.step_limit").get();
        let signals = RunSignals {
            trace_id: trace_id.clone(),
            detections: report.summary.detections.len(),
            errors: report.summary.conformance_errors,
            warnings: (shard_shed > 0) as usize + (step_limits > 0) as usize,
            tail_exemplar: tail_ops.contains(trace_id),
        };
        let verdict = match mode {
            TelemetryMode::Sampled => Some(sampler.decide(&signals)),
            TelemetryMode::Off | TelemetryMode::Full => None,
        };
        let retained = match mode {
            TelemetryMode::Off => false,
            TelemetryMode::Sampled => verdict.is_some_and(SampleVerdict::keep),
            TelemetryMode::Full => true,
        };
        // Only retained traces pay for latency attribution and incident
        // reconstruction — that is where sampled mode earns its overhead
        // budget without ever dropping an incident-relevant run.
        let mut op_incidents = 0usize;
        if retained {
            if let Some(fault) = stream.fault {
                // Zero-clone accounting: the spans and events are read in
                // place — deep-copying the rings here would cost more than
                // the telemetry being measured.
                latency.record(fault, &obs.tracer().with_finished(stage_self_times));
            }
            op_incidents = obs.events().with_records(pod_obs::incident_count);
            incidents_total += op_incidents;
            kept_traces += 1;
        } else if mode == TelemetryMode::Sampled {
            discarded_traces += 1;
        }
        let digest = report.summary.digest();
        // Leak check: a detection referencing an instance that only other
        // operations' lines mention means a line crossed operations.
        let mut mentioned = BTreeSet::new();
        instance_tokens(&digest, &mut mentioned);
        for token in mentioned {
            if !stream.tokens.contains(&token)
                && streams
                    .ops
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && other.tokens.contains(&token))
            {
                leaks.push(format!(
                    "{}: detection references foreign instance {token}",
                    stream.scenario.trace_id
                ));
            }
        }
        ops.push(SoakOpResult {
            trace_id: stream.scenario.trace_id.clone(),
            fault: stream.fault,
            shard: report.shard,
            lines_submitted: stream.lines.len() as u64,
            lines_delivered: report.lines,
            detections: report.summary.detections.len(),
            upgrade_completed: stream.upgrade_completed,
            digest,
            verdict,
            incidents: op_incidents,
        });
    }
    // Snapshot after the sampling pass so `obs.sampler.*` accounting (and
    // the queue-wait tail exemplars) are part of the report.
    let snapshot = gw.obs().snapshot();
    let flight = gw.flight().map(|f| f.dump());
    SoakReport {
        ops,
        stats,
        snapshot,
        latency,
        lines_total: streams.lines_total,
        leaks,
        mode,
        kept_traces,
        discarded_traces,
        incidents: incidents_total,
        flight,
        recovery,
    }
}

/// Replays the same streams once per batch size and returns the gateway
/// statistics of each pass (the amortization sweep of `BENCH_gateway.json`).
pub fn sweep_batches(
    streams: &SoakStreams,
    base: &GatewayConfig,
    sizes: &[usize],
) -> Vec<(usize, GatewayStats)> {
    sizes
        .iter()
        .map(|&batch_size| {
            let config = GatewayConfig {
                batch_size,
                ..base.clone()
            };
            (batch_size, replay(streams, &config).stats)
        })
        .collect()
}

/// The `BENCH_gateway.json` document: headline throughput, the full
/// gateway statistics (per-shard p50/p95/p99 queue waits included), the
/// batch-size sweep and the replay latency budget.
pub fn soak_bench_json(
    report: &SoakReport,
    sweep: &[(usize, GatewayStats)],
    wall_secs: f64,
) -> Json {
    let num = |n: u64| Json::Number(n as f64);
    let mut doc = Json::object();
    doc.set("bench", Json::str("pod-gateway-soak"));
    doc.set("ops", num(report.ops.len() as u64));
    doc.set("lines_total", num(report.lines_total));
    doc.set("leaks", num(report.leaks.len() as u64));
    doc.set(
        "detections_total",
        num(report.ops.iter().map(|o| o.detections as u64).sum()),
    );
    doc.set("wall_secs", Json::Number(wall_secs));
    if wall_secs > 0.0 {
        doc.set(
            "lines_per_sec_wall",
            Json::Number(report.stats.lines_processed as f64 / wall_secs),
        );
    }
    doc.set("gateway", report.stats.to_json());
    let rows = sweep
        .iter()
        .map(|(batch_size, stats)| {
            let mut row = Json::object();
            row.set("batch_size", num(*batch_size as u64));
            row.set(
                "lines_per_sec_virtual",
                Json::Number(stats.lines_per_sec_virtual()),
            );
            row.set("virtual_elapsed_us", num(stats.virtual_elapsed.as_micros()));
            row.set("batches", num(stats.batches));
            row.set("deferred", num(stats.deferred));
            row.set("blocked", num(stats.blocked));
            row.set("shed", num(stats.total_shed()));
            row
        })
        .collect();
    doc.set("batch_sweep", Json::Array(rows));
    doc.set("latency_budget", report.latency.bench_json());
    let mut telemetry = Json::object();
    telemetry.set("mode", Json::str(report.mode.to_string()));
    telemetry.set("kept_traces", num(report.kept_traces as u64));
    telemetry.set("discarded_traces", num(report.discarded_traces as u64));
    telemetry.set("incidents", num(report.incidents as u64));
    if let Some(flight) = &report.flight {
        telemetry.set("flight_frames", num(flight.frames.len() as u64));
        telemetry.set("flight_incidents", num(flight.incidents.len() as u64));
    }
    doc.set("telemetry", telemetry);
    doc
}

/// Renders the soak result as plain text: headline, per-fault detection
/// counts, the gateway section and the replay latency budget.
pub fn render_soak_report(report: &SoakReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let completed = report.ops.iter().filter(|o| o.upgrade_completed).count();
    let detections: usize = report.ops.iter().map(|o| o.detections).sum();
    let _ = writeln!(out, "== pod-gateway soak report ==");
    let _ = writeln!(
        out,
        "operations: {} ({} upgrades completed), raw lines: {}, detections at replay: {}",
        report.ops.len(),
        completed,
        report.lines_total,
        detections
    );
    match report.leaks.len() {
        0 => {
            let _ = writeln!(out, "cross-operation leakage: none");
        }
        n => {
            let _ = writeln!(out, "cross-operation leakage: {n} FINDING(S)");
            for leak in &report.leaks {
                let _ = writeln!(out, "  LEAK: {leak}");
            }
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "-- detections by fault type --");
    for fault in FaultType::all() {
        let ops: Vec<&SoakOpResult> = report
            .ops
            .iter()
            .filter(|o| o.fault == Some(fault))
            .collect();
        if ops.is_empty() {
            continue;
        }
        let det: usize = ops.iter().map(|o| o.detections).sum();
        let _ = writeln!(
            out,
            "{:<42} {:>3} ops {:>5} detections",
            fault.to_string(),
            ops.len(),
            det
        );
    }
    let healthy: Vec<&SoakOpResult> = report.ops.iter().filter(|o| o.fault.is_none()).collect();
    if !healthy.is_empty() {
        let det: usize = healthy.iter().map(|o| o.detections).sum();
        let _ = writeln!(
            out,
            "{:<42} {:>3} ops {:>5} detections",
            "(healthy, no fault injected)",
            healthy.len(),
            det
        );
    }
    let _ = writeln!(out);
    out.push_str(&crate::report::render_gateway_report(&report.stats));
    let _ = writeln!(out);
    let _ = writeln!(out, "-- telemetry: mode {} --", report.mode);
    let _ = writeln!(
        out,
        "traces retained: {} kept, {} discarded, {} incident chains reconstructed",
        report.kept_traces, report.discarded_traces, report.incidents
    );
    if report.mode == TelemetryMode::Sampled {
        for reason in ["detection", "error", "warning", "tail-exemplar", "healthy"] {
            let n = report
                .snapshot
                .counter(&format!("obs.sampler.kept.{reason}"));
            if n > 0 {
                let _ = writeln!(out, "  kept ({reason}): {n}");
            }
        }
    }
    let tail = report.snapshot.exemplars("gateway.queue_wait_us");
    if !tail.is_empty() {
        let _ = writeln!(out, "queue-wait tail exemplars (worst first):");
        for e in tail.iter().take(4) {
            let labels: Vec<String> = e.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "  {:>8} us at {} [{}]",
                e.value,
                e.at,
                labels.join(", ")
            );
        }
    }
    if let Some(flight) = &report.flight {
        let _ = writeln!(
            out,
            "flight recorder: {} frames, {} incident marks ({} frames evicted)",
            flight.frames.len(),
            flight.incidents.len(),
            flight.evicted_frames
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- replay latency budget: per-stage self time, p50/p95/p99 per fault type --"
    );
    out.push_str(&report.latency.render());
    if let Some(rec) = &report.recovery {
        let _ = writeln!(out);
        out.push_str(&render_recovery_soak(rec));
    }
    out
}

/// Renders the recovery stage: the no-drop invariant, the admission
/// gate's ledger, the aggregate MTTR-under-load distribution and the most
/// contended tenants.
pub fn render_recovery_soak(rec: &SoakRecoveryReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- recovery storm: {} tenants, {} lanes, throttle beyond {} in flight --",
        rec.tenants.len(),
        rec.config.lanes,
        rec.config.throttle_at
    );
    let _ = writeln!(
        out,
        "incidents: {} attempted = {} recovered + {} escalated ({})",
        rec.attempted,
        rec.recovered,
        rec.escalated,
        if rec.none_dropped() {
            "none dropped"
        } else {
            "ACCOUNTING BROKEN"
        }
    );
    let review = rec
        .attempted
        .saturating_sub(rec.stats.admitted as usize)
        .saturating_sub(rec.deferred_swept);
    let _ = writeln!(
        out,
        "paths: {} eager ({} throttled by the shared API), {} deferred then swept, {} step-less \
         reviews",
        rec.stats.admitted, rec.throttled, rec.deferred_swept, review
    );
    let _ = writeln!(
        out,
        "admission gate: {} requests = {} admitted + {} deferred (all {} swept), peak {} \
         repairs in flight",
        rec.stats.requests,
        rec.stats.admitted,
        rec.stats.deferred,
        rec.stats.swept,
        rec.stats.peak_concurrent
    );
    if !rec.mttr.is_empty() {
        let _ = writeln!(
            out,
            "MTTR under load: p50 {}us, p95 {}us, max {}us over {} verified repairs",
            rec.mttr.percentile(0.5).as_micros(),
            rec.mttr.percentile(0.95).as_micros(),
            rec.mttr.max().as_micros(),
            rec.mttr.len()
        );
    }
    let mut contended: Vec<&TenantRecoveryResult> =
        rec.tenants.iter().filter(|t| !t.mttr.is_empty()).collect();
    contended.sort_by_key(|t| std::cmp::Reverse(t.mttr.percentile(0.95)));
    if !contended.is_empty() {
        let _ = writeln!(out, "most contended tenants (MTTR p95, worst first):");
        for t in contended.iter().take(8) {
            let _ = writeln!(
                out,
                "  {:<12} {:>2} incidents ({:>2} swept, {:>2} throttled)  p50 {:>9}us  p95 \
                 {:>9}us  {}",
                t.trace_id,
                t.attempted,
                t.deferred_swept,
                t.throttled,
                t.mttr.percentile(0.5).as_micros(),
                t.mttr.percentile(0.95).as_micros(),
                t.fault.map_or("healthy".to_string(), |f| f.to_string())
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_gateway::OverloadPolicy;

    fn small_config() -> SoakConfig {
        SoakConfig {
            ops: 4,
            seed: 11,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn block_replay_is_lossless_and_leak_free() {
        let streams = collect_streams(&small_config());
        assert_eq!(streams.ops.len(), 4);
        assert!(streams.lines_total > 0);
        assert!(streams.ops.iter().all(|o| o.injected_at.is_some()));
        let report = replay(&streams, &GatewayConfig::default());
        assert!(report.leaks.is_empty(), "{:?}", report.leaks);
        // Block policy: every collected line reaches its engine.
        assert_eq!(report.stats.lines_processed, streams.lines_total);
        assert_eq!(report.stats.total_shed(), 0);
        assert!(report.ops.iter().all(|o| o.lines_delivered > 0));
        assert!(
            report.ops.iter().any(|o| o.detections > 0),
            "injected faults must surface at replay: {report:#?}"
        );
        assert!(!report.latency.is_empty());
        assert!(report.stats.lines_per_sec_virtual() > 0.0);
    }

    #[test]
    fn shedding_replay_accounts_for_every_lost_line() {
        let streams = collect_streams(&small_config());
        let config = GatewayConfig {
            queue_capacity: 4,
            batch_size: 4,
            flush_interval: pod_sim::SimDuration::from_secs(5),
            overload: OverloadPolicy::ShedOldest,
            ..GatewayConfig::default()
        };
        let report = replay(&streams, &config);
        assert!(report.stats.shed_oldest > 0, "tiny queues must overflow");
        assert_eq!(
            report.stats.lines_processed + report.stats.total_shed(),
            streams.lines_total,
            "every line is either delivered or counted as shed"
        );
        let per_shard: u64 = report.stats.shards.iter().map(|s| s.shed).sum();
        assert_eq!(per_shard, report.stats.total_shed());
        assert_eq!(
            report.snapshot.sum_counters("gateway.shed."),
            report.stats.total_shed()
        );
        let text = render_soak_report(&report);
        assert!(text.contains("WARNING: overload shed"), "{text}");
    }

    #[test]
    fn bench_json_carries_sweep_and_shard_quantiles() {
        let streams = collect_streams(&SoakConfig {
            ops: 2,
            seed: 5,
            ..SoakConfig::default()
        });
        let base = GatewayConfig::default();
        let report = replay(&streams, &base);
        let sweep = sweep_batches(&streams, &base, &[1, 16]);
        let doc = soak_bench_json(&report, &sweep, 1.5);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(
            parsed.get("bench").unwrap().as_str(),
            Some("pod-gateway-soak")
        );
        assert_eq!(parsed.get("leaks").unwrap().as_f64(), Some(0.0));
        let rows = parsed.get("batch_sweep").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("batch_size").unwrap().as_f64(), Some(1.0));
        let shards = parsed
            .get("gateway")
            .unwrap()
            .get("shards")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(shards
            .iter()
            .filter_map(|s| s.get("queue_wait_us"))
            .any(|h| h.get("p99").is_some()));
        assert!(parsed.get("latency_budget").is_some());
    }

    #[test]
    fn telemetry_modes_never_change_detections_and_sampling_keeps_incidents() {
        // Collect fresh (deterministic, seed-identical) streams per mode:
        // per-operation virtual clocks advance during a replay, so modes
        // must be compared from identical starting states.
        let config = GatewayConfig::default();
        let full = replay(&collect_streams(&small_config()), &config);
        let sampled = replay_telemetry(
            &collect_streams(&small_config()),
            &config,
            TelemetryMode::Sampled,
        );
        let off = replay_telemetry(
            &collect_streams(&small_config()),
            &config,
            TelemetryMode::Off,
        );

        // The mode gates telemetry, never behavior.
        assert_eq!(full.digest(), sampled.digest());
        assert_eq!(full.digest(), off.digest());

        // Full retains every trace and reconstructs incidents for each
        // detecting operation; Off records nothing on the trace side.
        assert_eq!(full.mode, TelemetryMode::Full);
        assert_eq!(full.kept_traces, full.ops.len());
        assert!(full.incidents > 0, "faulty ops must yield incident chains");
        assert_eq!(off.kept_traces, 0);
        assert_eq!(off.incidents, 0);
        assert!(off.latency.is_empty(), "off mode records no spans");

        // Sampling never discards an incident-relevant operation, and its
        // accounting covers every decision.
        for op in &sampled.ops {
            if op.detections > 0 {
                let verdict = op.verdict.expect("sampled mode decides every op");
                assert!(verdict.keep(), "{}: detection discarded", op.trace_id);
            }
        }
        assert_eq!(
            sampled.kept_traces + sampled.discarded_traces,
            sampled.ops.len()
        );
        assert_eq!(
            sampled.snapshot.counter("obs.sampler.kept")
                + sampled.snapshot.counter("obs.sampler.discarded"),
            sampled.ops.len() as u64
        );

        // The flight recorder stamped each detection as an incident.
        let flight = sampled.flight.as_ref().expect("flight on by default");
        assert!(!flight.frames.is_empty());
        assert!(
            !flight.incidents.is_empty(),
            "detections must stamp incident marks"
        );

        let text = render_soak_report(&sampled);
        assert!(text.contains("telemetry: mode sampled"), "{text}");
        assert!(text.contains("flight recorder:"), "{text}");

        let doc = soak_bench_json(&sampled, &[], 1.0);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        let tel = parsed.get("telemetry").unwrap();
        assert_eq!(tel.get("mode").unwrap().as_str(), Some("sampled"));
        assert!(tel.get("flight_frames").is_some());
    }

    #[test]
    fn recovery_soak_drops_nothing_and_replays_byte_identically() {
        let config = SoakConfig {
            ops: 6,
            seed: 17,
            ..SoakConfig::default()
        };
        // Tight storm: one lane, a short wait cap and zero-tolerance
        // throttling, so eager, throttled and deferred paths all occur.
        let storm = StormConfig {
            lanes: 1,
            max_lane_wait: SimDuration::from_secs(30),
            throttle_at: 0,
            throttle_penalty: SimDuration::from_secs(2),
        };
        // Repairs mutate the tenant clouds, so each replay needs freshly
        // collected (same-seed, deterministic) streams.
        let run = || {
            replay_with_recovery(
                &collect_streams(&config),
                &GatewayConfig::default(),
                storm.clone(),
            )
        };
        let report = run();
        let rec = report.recovery.as_ref().expect("recovery stage ran");
        assert!(rec.attempted > 0, "faulty tenants must raise incidents");
        assert!(rec.none_dropped(), "{rec:#?}");
        assert_eq!(rec.recovered + rec.escalated, rec.attempted);
        assert_eq!(
            rec.recovered_direct + rec.escalated_direct + rec.deferred_swept,
            rec.attempted
        );
        // The metric mirror on the gateway snapshot matches the exact
        // stats, and throttle/defer pressure actually materialized.
        let s = rec.stats;
        assert!(s.requests > 0);
        let counter = |n: &str| report.snapshot.counter(&format!("recovery.storm.{n}"));
        assert_eq!(counter("requests"), s.requests);
        assert_eq!(counter("admitted"), s.admitted);
        assert_eq!(counter("throttled"), s.throttled);
        assert_eq!(counter("deferred"), s.deferred);
        assert_eq!(counter("swept"), s.swept);
        assert!(!rec.mttr.is_empty(), "verified repairs must record MTTR");

        let text = render_soak_report(&report);
        assert!(text.contains("recovery storm:"), "{text}");
        assert!(text.contains("none dropped"), "{text}");

        // Same seed + same interleaving ⇒ byte-identical transcripts,
        // even under maximal contention.
        let again = run();
        assert_eq!(report.digest(), again.digest());
        assert_eq!(
            rec.transcript(),
            again.recovery.as_ref().unwrap().transcript()
        );
    }

    #[test]
    fn instance_tokens_respect_word_boundaries() {
        let mut tokens = BTreeSet::new();
        instance_tokens(
            "Instance i-7df34041 uses ami-00ff and talks to i-abc, not semi-colon",
            &mut tokens,
        );
        assert_eq!(
            tokens.into_iter().collect::<Vec<_>>(),
            ["i-7df34041", "i-abc"]
        );
    }
}
