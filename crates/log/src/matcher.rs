//! Transformation rules: regex → activity tag + extracted fields.
//!
//! The paper derives, per activity, a set of regular expressions from the
//! clustered log lines and forms transformation rules: *"if (regex_i or
//! regex_i+1 or …) matches, add tag `[activity name]` to the line"*. A
//! [`RuleBook`] holds those rules and classifies raw lines.

use pod_regex::Regex;

/// Where in an activity's lifetime a matching line falls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// The line marks the start of the activity.
    Start,
    /// The line marks the end of the activity — the usual assertion trigger.
    End,
    /// A progress line during the activity.
    During,
}

/// One transformation rule: any of `patterns` matching tags the line with
/// `activity`.
#[derive(Debug, Clone)]
pub struct LineRule {
    /// The activity name this rule tags lines with.
    pub activity: String,
    /// Which boundary of the activity a match represents.
    pub boundary: Boundary,
    /// The alternative patterns (logical OR).
    pub patterns: Vec<Regex>,
}

impl LineRule {
    /// Builds a rule from pattern strings.
    ///
    /// # Errors
    ///
    /// Fails if any pattern does not compile.
    pub fn new<S: AsRef<str>>(
        activity: impl Into<String>,
        boundary: Boundary,
        patterns: &[S],
    ) -> Result<LineRule, pod_regex::ParseError> {
        Ok(LineRule {
            activity: activity.into(),
            boundary,
            patterns: patterns
                .iter()
                .map(|p| Regex::new(p.as_ref()))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The result of matching a line against a rule book.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleMatch {
    /// The tagged activity.
    pub activity: String,
    /// The boundary the matching rule represents.
    pub boundary: Boundary,
    /// Named-capture fields extracted from the line, in capture order.
    pub fields: Vec<(String, String)>,
}

/// An ordered collection of transformation rules.
///
/// Rules are tried in insertion order and the first match wins, mirroring a
/// Logstash filter chain.
///
/// # Examples
///
/// ```
/// use pod_log::{Boundary, LineRule, RuleBook};
///
/// let mut book = RuleBook::new();
/// book.push(LineRule::new(
///     "terminate-old-instance",
///     Boundary::End,
///     &[r"Terminated instance (?P<instanceid>i-[0-9a-f]+)"],
/// ).unwrap());
///
/// let m = book.match_line("... Terminated instance i-7df34041.").unwrap();
/// assert_eq!(m.activity, "terminate-old-instance");
/// assert_eq!(m.fields, vec![("instanceid".to_string(), "i-7df34041".to_string())]);
/// assert!(book.match_line("unrelated noise").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleBook {
    rules: Vec<LineRule>,
}

impl RuleBook {
    /// Creates an empty rule book.
    pub fn new() -> RuleBook {
        RuleBook { rules: Vec::new() }
    }

    /// Appends a rule; later rules have lower priority.
    pub fn push(&mut self, rule: LineRule) {
        self.rules.push(rule);
    }

    /// The rules in priority order.
    pub fn rules(&self) -> &[LineRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the book has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Classifies `line`, returning the first matching rule's activity and
    /// any named-capture fields.
    pub fn match_line(&self, line: &str) -> Option<RuleMatch> {
        for rule in &self.rules {
            for re in &rule.patterns {
                if let Some(caps) = re.captures(line) {
                    let fields = re
                        .capture_names()
                        .filter_map(|name| {
                            caps.name(name)
                                .map(|m| (name.to_string(), m.as_str().to_string()))
                        })
                        .collect();
                    return Some(RuleMatch {
                        activity: rule.activity.clone(),
                        boundary: rule.boundary,
                        fields,
                    });
                }
            }
        }
        None
    }

    /// All activities known to the book, deduplicated, in rule order.
    pub fn activities(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for rule in &self.rules {
            if !seen.contains(&rule.activity.as_str()) {
                seen.push(rule.activity.as_str());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> RuleBook {
        let mut b = RuleBook::new();
        b.push(
            LineRule::new(
                "update-launch-config",
                Boundary::End,
                &[r"Created launch configuration (?P<lc>lc-[\w-]+)"],
            )
            .unwrap(),
        );
        b.push(
            LineRule::new(
                "terminate-old-instance",
                Boundary::End,
                &[
                    r"Terminated instance (?P<instanceid>i-[0-9a-f]+)",
                    r"Instance (?P<instanceid>i-[0-9a-f]+) is shutting down",
                ],
            )
            .unwrap(),
        );
        b
    }

    #[test]
    fn first_rule_wins() {
        let mut b = RuleBook::new();
        b.push(LineRule::new("a", Boundary::End, &["x"]).unwrap());
        b.push(LineRule::new("b", Boundary::End, &["x"]).unwrap());
        assert_eq!(b.match_line("x").unwrap().activity, "a");
    }

    #[test]
    fn alternative_patterns_share_activity() {
        let b = book();
        let m1 = b.match_line("Terminated instance i-1a").unwrap();
        let m2 = b.match_line("Instance i-2b is shutting down").unwrap();
        assert_eq!(m1.activity, "terminate-old-instance");
        assert_eq!(m2.activity, "terminate-old-instance");
        assert_eq!(m2.fields[0].1, "i-2b");
    }

    #[test]
    fn no_match_returns_none() {
        assert!(book().match_line("something else entirely").is_none());
    }

    #[test]
    fn activities_deduplicated() {
        let b = book();
        assert_eq!(
            b.activities(),
            vec!["update-launch-config", "terminate-old-instance"]
        );
    }

    #[test]
    fn invalid_pattern_is_an_error() {
        assert!(LineRule::new("bad", Boundary::Start, &["("]).is_err());
    }
}
