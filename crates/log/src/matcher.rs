//! Transformation rules: regex → activity tag + extracted fields.
//!
//! The paper derives, per activity, a set of regular expressions from the
//! clustered log lines and forms transformation rules: *"if (regex_i or
//! regex_i+1 or …) matches, add tag `[activity name]` to the line"*. A
//! [`RuleBook`] holds those rules and classifies raw lines.

use std::cell::RefCell;

use pod_regex::{Captures, Engine, LiteralScanner, Regex};

thread_local! {
    /// Reusable candidate buffer: `(rule, pattern)` pairs whose required
    /// literals occurred in the current line.
    static RULE_CANDIDATES: RefCell<Vec<(u32, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Where in an activity's lifetime a matching line falls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// The line marks the start of the activity.
    Start,
    /// The line marks the end of the activity — the usual assertion trigger.
    End,
    /// A progress line during the activity.
    During,
}

/// One transformation rule: any of `patterns` matching tags the line with
/// `activity`.
#[derive(Debug, Clone)]
pub struct LineRule {
    /// The activity name this rule tags lines with.
    pub activity: String,
    /// Which boundary of the activity a match represents.
    pub boundary: Boundary,
    /// The alternative patterns (logical OR).
    pub patterns: Vec<Regex>,
}

impl LineRule {
    /// Builds a rule from pattern strings.
    ///
    /// # Errors
    ///
    /// Fails if any pattern does not compile.
    pub fn new<S: AsRef<str>>(
        activity: impl Into<String>,
        boundary: Boundary,
        patterns: &[S],
    ) -> Result<LineRule, pod_regex::ParseError> {
        Ok(LineRule {
            activity: activity.into(),
            boundary,
            patterns: patterns
                .iter()
                .map(|p| Regex::new(p.as_ref()))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The result of matching a line against a rule book.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleMatch {
    /// The tagged activity.
    pub activity: String,
    /// The boundary the matching rule represents.
    pub boundary: Boundary,
    /// Named-capture fields extracted from the line, in capture order.
    pub fields: Vec<(String, String)>,
}

/// The shared prefilter over every pattern of every rule: one literal scan
/// per line yields the only `(rule, pattern)` pairs whose regex could
/// match, so confirmation cost is proportional to the candidates — not to
/// the size of the book.
#[derive(Debug, Clone, Default)]
struct RuleIndex {
    /// Scanner over the union of all patterns' required literals; `None`
    /// when no pattern yields literals (index would admit everything).
    scanner: Option<LiteralScanner>,
    /// `(rule, pattern)` owning each scanner literal id.
    lit_owner: Vec<(u32, u32)>,
    /// Patterns with no derivable literal requirement: always candidates.
    always: Vec<(u32, u32)>,
}

impl RuleIndex {
    fn build(rules: &[LineRule]) -> RuleIndex {
        let mut literals: Vec<String> = Vec::new();
        let mut lit_owner = Vec::new();
        let mut always = Vec::new();
        for (r, rule) in rules.iter().enumerate() {
            for (p, re) in rule.patterns.iter().enumerate() {
                match re.required_literals() {
                    Some(req) => {
                        for lit in req {
                            literals.push(lit.clone());
                            lit_owner.push((r as u32, p as u32));
                        }
                    }
                    None => always.push((r as u32, p as u32)),
                }
            }
        }
        let scanner = if lit_owner.is_empty() {
            None
        } else {
            Some(LiteralScanner::new(&literals))
        };
        RuleIndex {
            scanner,
            lit_owner,
            always,
        }
    }
}

/// An ordered collection of transformation rules.
///
/// Rules are tried in insertion order and the first match wins, mirroring a
/// Logstash filter chain. Classification dispatches through a shared
/// literal index (see [`RuleIndex`]): one scan over the line selects the
/// candidate `(rule, pattern)` pairs, and only those run their regex. The
/// unindexed reference path is kept as [`RuleBook::match_line_naive`].
///
/// # Examples
///
/// ```
/// use pod_log::{Boundary, LineRule, RuleBook};
///
/// let mut book = RuleBook::new();
/// book.push(LineRule::new(
///     "terminate-old-instance",
///     Boundary::End,
///     &[r"Terminated instance (?P<instanceid>i-[0-9a-f]+)"],
/// ).unwrap());
///
/// let m = book.match_line("... Terminated instance i-7df34041.").unwrap();
/// assert_eq!(m.activity, "terminate-old-instance");
/// assert_eq!(m.fields, vec![("instanceid".to_string(), "i-7df34041".to_string())]);
/// assert!(book.match_line("unrelated noise").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleBook {
    rules: Vec<LineRule>,
    index: RuleIndex,
}

impl RuleBook {
    /// Creates an empty rule book.
    pub fn new() -> RuleBook {
        RuleBook {
            rules: Vec::new(),
            index: RuleIndex::default(),
        }
    }

    /// Appends a rule; later rules have lower priority. The literal index
    /// is rebuilt (books are small and built once at startup).
    pub fn push(&mut self, rule: LineRule) {
        self.rules.push(rule);
        self.index = RuleIndex::build(&self.rules);
    }

    /// The rules in priority order.
    pub fn rules(&self) -> &[LineRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the book has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Classifies `line`, returning the first matching rule's activity and
    /// any named-capture fields.
    ///
    /// One shared literal scan selects the candidate `(rule, pattern)`
    /// pairs; only those are confirmed with their regex, in rule order, so
    /// first-rule-wins semantics are preserved exactly (a pattern absent
    /// from the candidates is guaranteed not to match).
    pub fn match_line(&self, line: &str) -> Option<RuleMatch> {
        let Some(scanner) = self.index.scanner.as_ref() else {
            // No pattern yields literals: the index cannot narrow anything.
            return self.match_line_with_engine(line, Engine::Auto);
        };
        RULE_CANDIDATES.with(|buf| {
            let mut fallback = Vec::new();
            let mut guard = buf.try_borrow_mut().ok();
            let cands = guard.as_deref_mut().unwrap_or(&mut fallback);
            cands.clear();
            cands.extend_from_slice(&self.index.always);
            scanner.scan(line, |lit, _| cands.push(self.index.lit_owner[lit]));
            cands.sort_unstable();
            cands.dedup();
            for &(r, p) in cands.iter() {
                let rule = &self.rules[r as usize];
                let re = &rule.patterns[p as usize];
                if let Some(caps) = re.captures(line) {
                    return Some(Self::rule_match(rule, re, &caps));
                }
            }
            None
        })
    }

    /// The pre-index reference implementation: every pattern of every rule
    /// is tried in order on the legacy backtracking engine. Kept public as
    /// the oracle for golden equivalence tests and as the "before" side of
    /// the line-matching benchmarks.
    pub fn match_line_naive(&self, line: &str) -> Option<RuleMatch> {
        self.match_line_with_engine(line, Engine::Backtracking)
    }

    /// Match-each-pattern loop on a chosen engine.
    fn match_line_with_engine(&self, line: &str, engine: Engine) -> Option<RuleMatch> {
        for rule in &self.rules {
            for re in &rule.patterns {
                if let Some(caps) = re.captures_with(line, engine) {
                    return Some(Self::rule_match(rule, re, &caps));
                }
            }
        }
        None
    }

    /// Builds the [`RuleMatch`] for a confirmed pattern.
    fn rule_match(rule: &LineRule, re: &Regex, caps: &Captures<'_>) -> RuleMatch {
        let fields = re
            .capture_names()
            .filter_map(|name| {
                caps.name(name)
                    .map(|m| (name.to_string(), m.as_str().to_string()))
            })
            .collect();
        RuleMatch {
            activity: rule.activity.clone(),
            boundary: rule.boundary,
            fields,
        }
    }

    /// All activities known to the book, deduplicated, in rule order.
    pub fn activities(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for rule in &self.rules {
            if !seen.contains(&rule.activity.as_str()) {
                seen.push(rule.activity.as_str());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> RuleBook {
        let mut b = RuleBook::new();
        b.push(
            LineRule::new(
                "update-launch-config",
                Boundary::End,
                &[r"Created launch configuration (?P<lc>lc-[\w-]+)"],
            )
            .unwrap(),
        );
        b.push(
            LineRule::new(
                "terminate-old-instance",
                Boundary::End,
                &[
                    r"Terminated instance (?P<instanceid>i-[0-9a-f]+)",
                    r"Instance (?P<instanceid>i-[0-9a-f]+) is shutting down",
                ],
            )
            .unwrap(),
        );
        b
    }

    #[test]
    fn first_rule_wins() {
        let mut b = RuleBook::new();
        b.push(LineRule::new("a", Boundary::End, &["x"]).unwrap());
        b.push(LineRule::new("b", Boundary::End, &["x"]).unwrap());
        assert_eq!(b.match_line("x").unwrap().activity, "a");
    }

    #[test]
    fn alternative_patterns_share_activity() {
        let b = book();
        let m1 = b.match_line("Terminated instance i-1a").unwrap();
        let m2 = b.match_line("Instance i-2b is shutting down").unwrap();
        assert_eq!(m1.activity, "terminate-old-instance");
        assert_eq!(m2.activity, "terminate-old-instance");
        assert_eq!(m2.fields[0].1, "i-2b");
    }

    #[test]
    fn no_match_returns_none() {
        assert!(book().match_line("something else entirely").is_none());
    }

    #[test]
    fn activities_deduplicated() {
        let b = book();
        assert_eq!(
            b.activities(),
            vec!["update-launch-config", "terminate-old-instance"]
        );
    }

    #[test]
    fn invalid_pattern_is_an_error() {
        assert!(LineRule::new("bad", Boundary::Start, &["("]).is_err());
    }

    /// A book mixing literal-bearing and literal-free patterns, with
    /// overlapping rules, for candidate-dispatch tests.
    fn dispatch_book() -> RuleBook {
        let mut b = RuleBook::new();
        b.push(
            LineRule::new(
                "start",
                Boundary::Start,
                &[r"[Ss]tarting rolling upgrade (?P<task>task-\d+)"],
            )
            .unwrap(),
        );
        b.push(
            LineRule::new(
                "terminate",
                Boundary::End,
                &[
                    r"Terminated instance (?P<instanceid>i-[0-9a-f]+)",
                    r"Instance (?P<instanceid>i-[0-9a-f]+) is shutting down",
                ],
            )
            .unwrap(),
        );
        // Also matches "Terminated instance …" lines but has lower
        // priority than "terminate".
        b.push(LineRule::new("any-terminated", Boundary::During, &["Terminated"]).unwrap());
        // No derivable literal: always a candidate.
        b.push(LineRule::new("digits", Boundary::During, &[r"^\d+\s\d+$"]).unwrap());
        b
    }

    #[test]
    fn candidate_dispatch_matches_naive_for_zero_one_many() {
        let b = dispatch_book();
        let lines = [
            // Zero candidate rules.
            "completely unrelated line",
            // Exactly one rule's literals occur.
            "Starting rolling upgrade task-17",
            "Instance i-0badf00d is shutting down",
            // Multiple rules are candidates; first must win.
            "Terminated instance i-7df34041",
            // Literal occurs but the full pattern fails to confirm.
            "Terminated nothing in particular",
            // Only the literal-free rule can match.
            "12 34",
            "",
        ];
        for line in lines {
            assert_eq!(
                b.match_line(line),
                b.match_line_naive(line),
                "dispatch diverged on {line:?}"
            );
        }
        assert!(b.match_line("completely unrelated line").is_none());
        assert_eq!(
            b.match_line("Terminated instance i-7df34041")
                .unwrap()
                .activity,
            "terminate"
        );
        assert_eq!(
            b.match_line("Terminated nothing in particular")
                .unwrap()
                .activity,
            "any-terminated"
        );
        assert_eq!(b.match_line("12 34").unwrap().activity, "digits");
    }

    #[test]
    fn index_preserves_fields_and_boundaries() {
        let b = dispatch_book();
        let fast = b.match_line("x Starting rolling upgrade task-3 y").unwrap();
        let naive = b
            .match_line_naive("x Starting rolling upgrade task-3 y")
            .unwrap();
        assert_eq!(fast, naive);
        assert_eq!(fast.boundary, Boundary::Start);
        assert_eq!(
            fast.fields,
            vec![("task".to_string(), "task-3".to_string())]
        );
    }
}
