//! Edge parsing of raw log lines for the gateway.
//!
//! The gateway ingests *wire* data: raw text lines from many tenants, some
//! Logstash-shaped JSON, some plaintext, some garbage. This module turns any
//! line into a [`LogEvent`] without ever panicking: valid Logstash JSON is
//! reconstructed faithfully (source, tags, fields, type, timestamp), bare
//! plaintext becomes an ordinary operation line, and anything else —
//! truncated JSON, non-object JSON, empty or whitespace-only input — degrades
//! to the `unclassified` type so downstream stages can count and drop it
//! instead of crashing a shard.

use pod_sim::SimTime;

use crate::event::LogEvent;
use crate::json::Json;

/// The `@type` assigned to lines that could not be classified.
pub const UNCLASSIFIED: &str = "unclassified";

/// How a raw line was recognized by [`parse_line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFormat {
    /// A well-formed Logstash-shaped JSON object.
    Json,
    /// A non-empty plaintext line.
    Plain,
    /// Empty/whitespace-only input or malformed JSON; the event is tagged
    /// [`UNCLASSIFIED`] and carries the raw input as its message.
    Unclassified,
}

impl LineFormat {
    /// Stable lowercase label, used as a metric suffix by the gateway.
    pub fn label(self) -> &'static str {
        match self {
            LineFormat::Json => "json",
            LineFormat::Plain => "plain",
            LineFormat::Unclassified => "unclassified",
        }
    }
}

/// A parsed raw line: the reconstructed event plus how it was recognized.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLine {
    /// The reconstructed event, ready for a pipeline.
    pub event: LogEvent,
    /// How the raw input was classified.
    pub format: LineFormat,
}

/// Parses one raw line into a [`LogEvent`], never panicking.
///
/// `received_at` is the gateway-side arrival time; it is used as the event
/// timestamp whenever the line does not carry a parseable `@timestamp`.
///
/// # Examples
///
/// ```
/// use pod_log::{parse_line, LineFormat};
/// use pod_sim::SimTime;
///
/// let now = SimTime::from_secs(3);
/// assert_eq!(parse_line("plain text line", now).format, LineFormat::Plain);
/// assert_eq!(parse_line("   ", now).format, LineFormat::Unclassified);
/// assert_eq!(parse_line("{\"@message\": truncated", now).format, LineFormat::Unclassified);
/// ```
pub fn parse_line(raw: &str, received_at: SimTime) -> ParsedLine {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return unclassified(raw, received_at);
    }
    if trimmed.starts_with('{') {
        return match Json::parse(trimmed) {
            Ok(json) => from_logstash(&json, received_at)
                .map(|event| ParsedLine {
                    event,
                    format: LineFormat::Json,
                })
                .unwrap_or_else(|| unclassified(raw, received_at)),
            Err(_) => unclassified(raw, received_at),
        };
    }
    let event = LogEvent::new(received_at, "raw.log", trimmed);
    ParsedLine {
        event,
        format: LineFormat::Plain,
    }
}

fn unclassified(raw: &str, received_at: SimTime) -> ParsedLine {
    let event = LogEvent::new(received_at, "gateway.raw", raw.trim()).with_type(UNCLASSIFIED);
    ParsedLine {
        event,
        format: LineFormat::Unclassified,
    }
}

/// Rebuilds a [`LogEvent`] from the Logstash shape emitted by
/// [`LogEvent::to_json`]. Returns `None` when the object is not
/// event-shaped (no `@message`).
fn from_logstash(json: &Json, received_at: SimTime) -> Option<LogEvent> {
    let message = json.get("@message")?.as_str()?;
    let timestamp = json
        .get("@timestamp")
        .and_then(|t| t.as_str())
        .and_then(|t| t.parse::<SimTime>().ok())
        .unwrap_or(received_at);
    let source = json
        .get("@source")
        .and_then(|s| s.as_str())
        .unwrap_or("gateway.raw");
    let mut event = LogEvent::new(timestamp, source, message);
    if let Some(host) = json.get("@source_host").and_then(|h| h.as_str()) {
        event.source_host = host.to_string();
    }
    if let Some(t) = json.get("@type").and_then(|t| t.as_str()) {
        event.event_type = t.to_string();
    }
    if let Some(tags) = json.get("@tags").and_then(|t| t.as_array()) {
        for tag in tags {
            if let Some(tag) = tag.as_str() {
                event.tags.push(tag.to_string());
            }
        }
    }
    if let Some(Json::Object(entries)) = json.get("@fields") {
        for (key, value) in entries {
            // `to_json` writes each field as a one-element array; accept
            // bare strings too for hand-written input.
            let value = match value {
                Json::Array(items) => items.first().and_then(|v| v.as_str()),
                other => other.as_str(),
            };
            if let Some(value) = value {
                event.fields.push((key.clone(), value.to_string()));
            }
        }
    }
    Some(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;

    fn now() -> SimTime {
        SimTime::from_secs(9)
    }

    #[test]
    fn logstash_json_round_trips() {
        let original = LogEvent::new(
            SimTime::from_millis(82_500),
            "asgard.log",
            "ERROR: Instance i-7df34041 failed health check",
        )
        .with_tag("rolling-upgrade")
        .with_tag("step4")
        .with_field("instanceid", "i-7df34041")
        .with_type("asgard");
        let parsed = parse_line(&original.to_json().to_string(), now());
        assert_eq!(parsed.format, LineFormat::Json);
        let e = parsed.event;
        assert_eq!(e.timestamp, original.timestamp);
        assert_eq!(e.source, "asgard.log");
        assert_eq!(e.event_type, "asgard");
        assert_eq!(e.tags, original.tags);
        assert_eq!(e.field("instanceid"), Some("i-7df34041"));
        assert_eq!(e.message, original.message);
        assert_eq!(e.severity, Severity::Error);
    }

    #[test]
    fn plaintext_becomes_operation_line() {
        let parsed = parse_line("Instance i-1 is ready for use.\n", now());
        assert_eq!(parsed.format, LineFormat::Plain);
        assert_eq!(parsed.event.message, "Instance i-1 is ready for use.");
        assert_eq!(parsed.event.timestamp, now());
        assert_eq!(parsed.event.event_type, "operation");
    }

    #[test]
    fn empty_and_whitespace_lines_degrade_to_unclassified() {
        for raw in ["", "   ", "\t\n", " \r\n "] {
            let parsed = parse_line(raw, now());
            assert_eq!(parsed.format, LineFormat::Unclassified, "input {raw:?}");
            assert_eq!(parsed.event.event_type, UNCLASSIFIED);
        }
    }

    #[test]
    fn truncated_and_invalid_json_degrade_to_unclassified() {
        for raw in [
            "{\"@message\": \"chopped",
            "{\"@message\" \"no colon\"}",
            "{",
            "{\"@fields\": [}",
        ] {
            let parsed = parse_line(raw, now());
            assert_eq!(parsed.format, LineFormat::Unclassified, "input {raw:?}");
            assert_eq!(parsed.event.event_type, UNCLASSIFIED);
            assert_eq!(parsed.event.message, raw.trim());
            assert_eq!(parsed.event.timestamp, now());
        }
    }

    #[test]
    fn json_without_message_is_unclassified() {
        let parsed = parse_line("{\"@type\": \"asgard\"}", now());
        assert_eq!(parsed.format, LineFormat::Unclassified);
    }

    #[test]
    fn unparseable_timestamp_falls_back_to_arrival_time() {
        let raw = "{\"@message\": \"hello\", \"@timestamp\": \"not-a-time\"}";
        let parsed = parse_line(raw, now());
        assert_eq!(parsed.format, LineFormat::Json);
        assert_eq!(parsed.event.timestamp, now());
    }

    #[test]
    fn format_labels_are_stable() {
        assert_eq!(LineFormat::Json.label(), "json");
        assert_eq!(LineFormat::Plain.label(), "plain");
        assert_eq!(LineFormat::Unclassified.label(), "unclassified");
    }
}
