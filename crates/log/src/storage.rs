//! Central log storage.
//!
//! All "important" lines from distributed nodes, plus the result logs of
//! conformance checking, assertion evaluation and error diagnosis, are
//! merged here. The storage is shared (cheap to clone, internally locked)
//! and supports cursor-based tailing — which is how the central log
//! processor discovers failure lines to react to — as well as ad-hoc
//! querying for offline analysis and process discovery.

use std::sync::Arc;

use parking_lot::Mutex;
use pod_regex::Regex;
use pod_sim::SimTime;

use crate::event::{LogEvent, Severity};

/// A shared, append-only store of log events.
///
/// # Examples
///
/// ```
/// use pod_log::{LogEvent, LogStorage};
/// use pod_sim::SimTime;
///
/// let storage = LogStorage::new();
/// let tail = storage.clone();
/// storage.append(LogEvent::new(SimTime::ZERO, "asgard.log", "started"));
/// let mut cursor = 0;
/// let new = tail.events_since(&mut cursor);
/// assert_eq!(new.len(), 1);
/// assert!(tail.events_since(&mut cursor).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogStorage {
    events: Arc<Mutex<Vec<LogEvent>>>,
}

impl LogStorage {
    /// Creates an empty store.
    pub fn new() -> LogStorage {
        LogStorage::default()
    }

    /// Appends one event.
    pub fn append(&self, event: LogEvent) {
        self.events.lock().push(event);
    }

    /// Appends many events.
    pub fn extend(&self, events: impl IntoIterator<Item = LogEvent>) {
        self.events.lock().extend(events);
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns events appended since `cursor` and advances the cursor —
    /// the tailing primitive used by the central log processor.
    pub fn events_since(&self, cursor: &mut usize) -> Vec<LogEvent> {
        let events = self.events.lock();
        let new = events[(*cursor).min(events.len())..].to_vec();
        *cursor = events.len();
        new
    }

    /// A snapshot of all events.
    pub fn snapshot(&self) -> Vec<LogEvent> {
        self.events.lock().clone()
    }

    /// Runs a query against the current contents.
    pub fn query(&self, q: &LogQuery) -> Vec<LogEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| q.matches(e))
            .cloned()
            .collect()
    }

    /// Removes all events (used between experiment runs).
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

/// A filter over stored events; all set conditions must hold.
///
/// # Examples
///
/// ```
/// use pod_log::{LogEvent, LogQuery, LogStorage, Severity};
/// use pod_sim::SimTime;
///
/// let s = LogStorage::new();
/// s.append(LogEvent::new(SimTime::from_millis(1), "a.log", "ok").with_tag("step1"));
/// s.append(LogEvent::new(SimTime::from_millis(2), "b.log", "ERROR boom"));
///
/// let errors = s.query(&LogQuery::new().with_min_severity(Severity::Error));
/// assert_eq!(errors.len(), 1);
/// let tagged = s.query(&LogQuery::new().with_tag("step1"));
/// assert_eq!(tagged.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogQuery {
    source: Option<String>,
    tag: Option<String>,
    event_type: Option<String>,
    min_severity: Option<Severity>,
    after: Option<SimTime>,
    before: Option<SimTime>,
    message_pattern: Option<Regex>,
    process_instance_id: Option<String>,
}

impl LogQuery {
    /// An unconstrained query (matches everything).
    pub fn new() -> LogQuery {
        LogQuery::default()
    }

    /// Restricts to one source log.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Requires a tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// Restricts to one event type (`@type`).
    pub fn with_type(mut self, t: impl Into<String>) -> Self {
        self.event_type = Some(t.into());
        self
    }

    /// Requires at least this severity.
    pub fn with_min_severity(mut self, s: Severity) -> Self {
        self.min_severity = Some(s);
        self
    }

    /// Restricts to events at or after `t`.
    pub fn with_after(mut self, t: SimTime) -> Self {
        self.after = Some(t);
        self
    }

    /// Restricts to events strictly before `t`.
    pub fn with_before(mut self, t: SimTime) -> Self {
        self.before = Some(t);
        self
    }

    /// Requires the message to match a pattern.
    pub fn with_message_pattern(mut self, re: Regex) -> Self {
        self.message_pattern = Some(re);
        self
    }

    /// Restricts to one process instance (trace).
    pub fn with_process_instance(mut self, id: impl Into<String>) -> Self {
        self.process_instance_id = Some(id.into());
        self
    }

    /// Whether `event` satisfies every set condition.
    pub fn matches(&self, event: &LogEvent) -> bool {
        if let Some(s) = &self.source {
            if event.source != *s {
                return false;
            }
        }
        if let Some(t) = &self.tag {
            if !event.has_tag(t) {
                return false;
            }
        }
        if let Some(t) = &self.event_type {
            if event.event_type != *t {
                return false;
            }
        }
        if let Some(min) = self.min_severity {
            if event.severity < min {
                return false;
            }
        }
        if let Some(after) = self.after {
            if event.timestamp < after {
                return false;
            }
        }
        if let Some(before) = self.before {
            if event.timestamp >= before {
                return false;
            }
        }
        if let Some(re) = &self.message_pattern {
            if !re.is_match(&event.message) {
                return false;
            }
        }
        if let Some(id) = &self.process_instance_id {
            let in_ctx = event
                .context
                .as_ref()
                .is_some_and(|c| c.process_instance_id == *id);
            let in_fields = event.field("processinsid") == Some(id.as_str());
            if !in_ctx && !in_fields {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProcessContext;

    fn store() -> LogStorage {
        let s = LogStorage::new();
        s.append(
            LogEvent::new(SimTime::from_millis(10), "asgard.log", "upgrade started")
                .with_tag("start")
                .with_context(ProcessContext::new("rolling-upgrade", "run-1")),
        );
        s.append(LogEvent::new(
            SimTime::from_millis(20),
            "assertion.log",
            "ASG has 4 instances",
        ));
        s.append(LogEvent::new(
            SimTime::from_millis(30),
            "asgard.log",
            "ERROR launch failed",
        ));
        s
    }

    #[test]
    fn cursor_tailing_sees_each_event_once() {
        let s = store();
        let mut cursor = 0;
        assert_eq!(s.events_since(&mut cursor).len(), 3);
        assert!(s.events_since(&mut cursor).is_empty());
        s.append(LogEvent::new(SimTime::from_millis(40), "x", "new"));
        assert_eq!(s.events_since(&mut cursor).len(), 1);
    }

    #[test]
    fn query_by_source_and_severity() {
        let s = store();
        assert_eq!(s.query(&LogQuery::new().with_source("asgard.log")).len(), 2);
        let errs = s.query(&LogQuery::new().with_min_severity(Severity::Error));
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("launch failed"));
    }

    #[test]
    fn query_by_time_window() {
        let s = store();
        let q = LogQuery::new()
            .with_after(SimTime::from_millis(15))
            .with_before(SimTime::from_millis(30));
        let hits = s.query(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].source, "assertion.log");
    }

    #[test]
    fn query_by_process_instance() {
        let s = store();
        let hits = s.query(&LogQuery::new().with_process_instance("run-1"));
        assert_eq!(hits.len(), 1);
        assert!(s
            .query(&LogQuery::new().with_process_instance("run-2"))
            .is_empty());
    }

    #[test]
    fn query_by_message_pattern() {
        let s = store();
        let q = LogQuery::new().with_message_pattern(Regex::new(r"\d+ instances").unwrap());
        assert_eq!(s.query(&q).len(), 1);
    }

    #[test]
    fn clones_share_contents() {
        let s = store();
        let t = s.clone();
        t.append(LogEvent::new(SimTime::from_millis(99), "y", "shared"));
        assert_eq!(s.len(), 4);
        s.clear();
        assert!(t.is_empty());
    }
}
