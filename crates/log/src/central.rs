//! The central log processor (Figure 1 of the paper).
//!
//! "A central log processor grabs the logs from the central log storage and
//! triggers the error diagnosis when it finds a failure or exception
//! indicated by the log line." This component tails the shared
//! [`LogStorage`] from a background thread and forwards failure-indicating
//! events over a channel, where the deployment's diagnosis trigger consumes
//! them.
//!
//! The deterministic evaluation campaign reacts to triggers inline (virtual
//! time cannot advance from a wall-clock thread); this processor is the
//! deployment-shaped alternative for real-time use, and is exercised by its
//! own threaded tests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use pod_regex::RegexSet;

use crate::event::{LogEvent, Severity};
use crate::storage::LogStorage;

/// A failure event surfaced by the central processor.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureNotice {
    /// The offending log event.
    pub event: LogEvent,
    /// Index of the failure pattern that matched, if any (events can also
    /// be surfaced purely by their `Error` severity).
    pub matched_pattern: Option<usize>,
}

/// Handle to a running central log processor.
///
/// Dropping the handle stops the background thread.
///
/// # Examples
///
/// ```
/// use pod_log::{CentralLogProcessor, LogEvent, LogStorage};
/// use pod_regex::RegexSet;
/// use pod_sim::SimTime;
///
/// let storage = LogStorage::new();
/// let processor = CentralLogProcessor::spawn(
///     storage.clone(),
///     RegexSet::new(&["assertion .* FAILED"]).unwrap(),
///     std::time::Duration::from_millis(1),
/// );
/// storage.append(LogEvent::new(SimTime::ZERO, "assertion.log",
///     "assertion X FAILED: boom"));
/// let notice = processor
///     .notices()
///     .recv_timeout(std::time::Duration::from_secs(5))
///     .unwrap();
/// assert_eq!(notice.matched_pattern, Some(0));
/// processor.stop();
/// ```
#[derive(Debug)]
pub struct CentralLogProcessor {
    receiver: Receiver<FailureNotice>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CentralLogProcessor {
    /// Starts tailing `storage` every `poll_interval` (wall clock),
    /// surfacing events that match any `failure_patterns` or carry
    /// [`Severity::Error`].
    pub fn spawn(
        storage: LogStorage,
        failure_patterns: RegexSet,
        poll_interval: Duration,
    ) -> CentralLogProcessor {
        let (sender, receiver) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            run_loop(
                &storage,
                &failure_patterns,
                poll_interval,
                &sender,
                &stop_flag,
            );
        });
        CentralLogProcessor {
            receiver,
            stop,
            handle: Some(handle),
        }
    }

    /// The channel failure notices arrive on.
    pub fn notices(&self) -> &Receiver<FailureNotice> {
        &self.receiver
    }

    /// Drains all currently pending notices without blocking.
    pub fn drain(&self) -> Vec<FailureNotice> {
        self.receiver.try_iter().collect()
    }

    /// Stops the background thread and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CentralLogProcessor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_loop(
    storage: &LogStorage,
    patterns: &RegexSet,
    poll_interval: Duration,
    sender: &Sender<FailureNotice>,
    stop: &AtomicBool,
) {
    let mut cursor = 0usize;
    while !stop.load(Ordering::SeqCst) {
        for event in storage.events_since(&mut cursor) {
            let matched_pattern = patterns.first_match(&event.message);
            if (matched_pattern.is_some() || event.severity == Severity::Error)
                && sender
                    .send(FailureNotice {
                        event,
                        matched_pattern,
                    })
                    .is_err()
            {
                return; // receiver gone
            }
        }
        std::thread::sleep(poll_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_sim::SimTime;

    fn processor(storage: &LogStorage) -> CentralLogProcessor {
        CentralLogProcessor::spawn(
            storage.clone(),
            RegexSet::new(&["FAILED", "conformance:unfit"]).unwrap(),
            Duration::from_millis(1),
        )
    }

    #[test]
    fn surfaces_pattern_matches_and_error_severity() {
        let storage = LogStorage::new();
        let p = processor(&storage);
        storage.append(LogEvent::new(SimTime::ZERO, "a", "all good here"));
        storage.append(LogEvent::new(SimTime::ZERO, "a", "assertion FAILED: x"));
        storage
            .append(LogEvent::new(SimTime::ZERO, "a", "implicit").with_severity(Severity::Error));
        let first = p.notices().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.matched_pattern, Some(0));
        let second = p.notices().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(second.matched_pattern, None);
        assert_eq!(second.event.message, "implicit");
        assert!(p.drain().is_empty());
        p.stop();
    }

    #[test]
    fn keeps_tailing_across_batches() {
        let storage = LogStorage::new();
        let p = processor(&storage);
        for round in 0..5 {
            storage.append(LogEvent::new(
                SimTime::from_millis(round),
                "a",
                format!("round {round} FAILED"),
            ));
            let n = p.notices().recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(n.event.message.contains(&format!("round {round}")));
        }
        p.stop();
    }

    #[test]
    fn drop_stops_the_thread() {
        let storage = LogStorage::new();
        let p = processor(&storage);
        drop(p); // must not hang
        storage.append(LogEvent::new(SimTime::ZERO, "a", "FAILED after stop"));
    }
}
