//! Log infrastructure for POD-Diagnosis: events, transformation rules, the
//! local log-processor pipeline and central log storage.
//!
//! This crate reproduces the role Logstash plays in the paper's
//! implementation (Section IV): log lines are modelled as Logstash-shaped
//! events ([`LogEvent`]), matched against per-activity regular expressions
//! ([`RuleBook`]), annotated with process context ([`ProcessContext`]) and
//! pushed through a [`Pipeline`] of stages — noise filter, annotator, timer
//! setter, trigger — before "important" lines are forwarded to the shared
//! [`LogStorage`]. A [`CentralLogProcessor`] can tail that storage from a
//! background thread and surface failure lines, the way Figure 1's central
//! processor triggers error diagnosis.
//!
//! JSON serialization of events is hand-rolled in [`Json`] so the workspace
//! carries no external serialization dependency.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod central;
mod event;
mod json;
mod matcher;
mod parse;
mod pipeline;
mod storage;

pub use central::{CentralLogProcessor, FailureNotice};
pub use event::{LogEvent, ProcessContext, Severity, StepOutcome};
pub use json::{Json, JsonError};
pub use matcher::{Boundary, LineRule, RuleBook, RuleMatch};
pub use parse::{parse_line, LineFormat, ParsedLine, UNCLASSIFIED};
pub use pipeline::{
    ImportantLineForwarder, LineCause, NoiseFilter, Pipeline, PipelineOutput, ProcessAnnotator,
    Stage, StageOutput, TimerSetter, Trigger,
};
pub use storage::{LogQuery, LogStorage};
