//! The local log processor pipeline (Figure 3 of the paper).
//!
//! A [`Pipeline`] is an ordered chain of [`Stage`]s. Each raw line from the
//! operation log flows through the stages, which can drop it (noise filter),
//! annotate it (process/assertion annotator), raise [`Trigger`]s (timer
//! setter, trigger stage) and finally forward it to central storage.

use std::fmt;

use pod_obs::{Counter, Obs};
use pod_regex::RegexSet;

use crate::event::{LogEvent, ProcessContext};
use crate::matcher::{Boundary, RuleBook};

/// A side effect raised by a pipeline stage, consumed by the POD-Diagnosis
/// engine (conformance checking, assertion evaluation, timers).
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Send the event to the conformance-checking service.
    Conformance(LogEvent),
    /// Evaluate the post-step assertion for `activity`.
    Assertion {
        /// The activity whose post-conditions should be checked.
        activity: String,
        /// The event that completed the activity.
        event: LogEvent,
    },
    /// Start the per-process periodic timer (operation began).
    PeriodicStart {
        /// The process instance the timer belongs to.
        process_instance_id: String,
    },
    /// Stop the per-process periodic timer (operation ended).
    PeriodicStop {
        /// The process instance the timer belongs to.
        process_instance_id: String,
    },
}

/// What a stage did with an event.
#[derive(Debug)]
pub struct StageOutput {
    /// The (possibly transformed) event, or `None` if dropped.
    pub event: Option<LogEvent>,
    /// Triggers raised while processing.
    pub triggers: Vec<Trigger>,
}

impl StageOutput {
    /// Passes the event through unchanged.
    pub fn pass(event: LogEvent) -> StageOutput {
        StageOutput {
            event: Some(event),
            triggers: Vec::new(),
        }
    }

    /// Drops the event.
    pub fn drop_event() -> StageOutput {
        StageOutput {
            event: None,
            triggers: Vec::new(),
        }
    }
}

/// One processing component in the local log processor.
pub trait Stage: fmt::Debug {
    /// Processes one event.
    fn process(&mut self, event: LogEvent) -> StageOutput;

    /// A short stable name used for per-stage pipeline metrics
    /// (`pipeline.<name>.processed` / `pipeline.<name>.dropped`).
    fn name(&self) -> &'static str {
        "stage"
    }
}

/// The captured ingredients of a line's `log.line` causal root event.
///
/// The pipeline no longer emits the event eagerly: the vast majority of
/// acted-on lines produce a fit verdict or a passing assertion and nothing
/// downstream ever references them. Instead the engine opens a *pending*
/// cause scope ([`pod_obs::Obs::scope_cause`]) with these ingredients; the
/// event only materialises in the ring if a verdict, assertion result, or
/// detection actually emits under it.
#[derive(Debug, Clone, PartialEq)]
pub struct LineCause {
    /// The originating log source (the event name, e.g. `asgard.log`).
    pub source: String,
    /// Event attributes: always `message`, plus `step` when the line was
    /// annotated with an activity.
    pub attrs: Vec<(&'static str, String)>,
}

/// The result of pushing one raw line through the whole pipeline.
#[derive(Debug, Default)]
pub struct PipelineOutput {
    /// Events that survived all stages (to forward to central storage).
    pub forwarded: Vec<LogEvent>,
    /// All triggers raised by any stage.
    pub triggers: Vec<Trigger>,
    /// The lazy `log.line` causal root for this line, when the line raised
    /// triggers or was forwarded (and the telemetry mode records traces).
    /// The engine scopes all downstream work (conformance, assertions,
    /// timers) under it so every detection chains back to the log line
    /// that triggered it — without recording anything for healthy lines.
    pub cause: Option<LineCause>,
}

/// An ordered chain of stages.
///
/// # Examples
///
/// ```
/// use pod_log::{LogEvent, NoiseFilter, Pipeline};
/// use pod_regex::RegexSet;
/// use pod_sim::SimTime;
///
/// let mut p = Pipeline::new();
/// p.add_stage(Box::new(NoiseFilter::keep(
///     RegexSet::new(&["instance", "upgrade"]).unwrap(),
/// )));
/// let out = p.push(LogEvent::new(SimTime::ZERO, "op.log", "rolling upgrade started"));
/// assert_eq!(out.forwarded.len(), 1);
/// let out = p.push(LogEvent::new(SimTime::ZERO, "op.log", "heartbeat tick"));
/// assert!(out.forwarded.is_empty());
/// ```
#[derive(Debug)]
pub struct Pipeline {
    obs: Obs,
    stages: Vec<Box<dyn Stage>>,
    stage_metrics: Vec<StageMetrics>,
    pushed: Counter,
    forwarded: Counter,
    /// Regex step-limit aborts observed while this pipeline ran its stages
    /// (`pipeline.regex.step_limit`). A non-zero value means some match
    /// attempts were abandoned with no answer — the affected lines may have
    /// been mis-annotated, so the report warns on it.
    step_limit: Counter,
    /// Last sampled value of the process-wide [`pod_regex::step_limit_hits`]
    /// counter; deltas are attributed to this pipeline's counter.
    step_limit_seen: u64,
    /// Reusable per-batch counter accumulator: counts collect in plain
    /// integers during a batch and flush to the shared atomics once, so a
    /// 64-line batch costs a handful of atomic bumps instead of hundreds.
    scratch: BatchTallies,
}

/// Plain per-batch counts, flushed to the cached counters once per batch.
#[derive(Debug, Default)]
struct BatchTallies {
    pushed: u64,
    forwarded: u64,
    /// `(processed, dropped)` per stage, by stage index.
    stages: Vec<(u64, u64)>,
}

impl BatchTallies {
    fn reset(&mut self, n_stages: usize) {
        self.pushed = 0;
        self.forwarded = 0;
        self.stages.clear();
        self.stages.resize(n_stages, (0, 0));
    }
}

/// Per-stage throughput/drop counters, cached so `push` stays lock-free.
#[derive(Debug)]
struct StageMetrics {
    processed: Counter,
    dropped: Counter,
}

impl StageMetrics {
    fn new(obs: &Obs, stage: &str) -> StageMetrics {
        StageMetrics {
            processed: obs.counter(&format!("pipeline.{stage}.processed")),
            dropped: obs.counter(&format!("pipeline.{stage}.dropped")),
        }
    }
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline::new()
    }
}

impl Pipeline {
    /// Creates an empty pipeline (passes everything through) recording its
    /// metrics into a detached observability context; attach a shared one
    /// with [`Pipeline::with_obs`].
    pub fn new() -> Pipeline {
        let obs = Obs::detached();
        Pipeline {
            pushed: obs.counter("pipeline.pushed"),
            forwarded: obs.counter("pipeline.forwarded"),
            step_limit: obs.counter("pipeline.regex.step_limit"),
            step_limit_seen: pod_regex::step_limit_hits(),
            obs,
            stages: Vec::new(),
            stage_metrics: Vec::new(),
            scratch: BatchTallies::default(),
        }
    }

    /// Rebinds the pipeline's metrics to a shared observability context.
    pub fn with_obs(mut self, obs: &Obs) -> Pipeline {
        self.set_obs(obs);
        self
    }

    /// Rebinds the pipeline's metrics (including those of already-added
    /// stages) to a shared observability context.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.pushed = obs.counter("pipeline.pushed");
        self.forwarded = obs.counter("pipeline.forwarded");
        self.step_limit = obs.counter("pipeline.regex.step_limit");
        self.stage_metrics = self
            .stages
            .iter()
            .map(|s| StageMetrics::new(obs, s.name()))
            .collect();
    }

    /// Appends a stage to the end of the chain.
    pub fn add_stage(&mut self, stage: Box<dyn Stage>) {
        self.stage_metrics
            .push(StageMetrics::new(&self.obs, stage.name()));
        self.stages.push(stage);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Pushes one event through every stage in order.
    pub fn push(&mut self, event: LogEvent) -> PipelineOutput {
        let mut tallies = std::mem::take(&mut self.scratch);
        tallies.reset(self.stages.len());
        let out = self.push_unsampled(event, &mut tallies);
        self.flush_tallies(&tallies);
        self.scratch = tallies;
        self.sample_step_limits();
        out
    }

    /// Pushes a whole batch through the pipeline, one output per input
    /// event in order. Equivalent to calling [`Pipeline::push`] per event,
    /// but per-line bookkeeping (step-limit sampling, counter bumps) is
    /// amortized over the batch — counts accumulate in plain locals and hit
    /// the shared atomics once. This is the entry point the gateway's
    /// batched drain uses.
    pub fn push_batch(&mut self, events: Vec<LogEvent>) -> Vec<PipelineOutput> {
        let mut tallies = std::mem::take(&mut self.scratch);
        tallies.reset(self.stages.len());
        let outs = events
            .into_iter()
            .map(|event| self.push_unsampled(event, &mut tallies))
            .collect();
        self.flush_tallies(&tallies);
        self.scratch = tallies;
        self.sample_step_limits();
        outs
    }

    /// Flushes a batch's accumulated counts to the cached counters.
    fn flush_tallies(&self, tallies: &BatchTallies) {
        if tallies.pushed > 0 {
            self.pushed.add(tallies.pushed);
        }
        if tallies.forwarded > 0 {
            self.forwarded.add(tallies.forwarded);
        }
        for (metrics, &(processed, dropped)) in self.stage_metrics.iter().zip(&tallies.stages) {
            if processed > 0 {
                metrics.processed.add(processed);
            }
            if dropped > 0 {
                metrics.dropped.add(dropped);
            }
        }
    }

    /// Attributes any new process-wide regex step-limit aborts to this
    /// pipeline's `pipeline.regex.step_limit` counter. Attribution is
    /// approximate under concurrency (the source counter is global), which
    /// is fine for its purpose: warning that match answers were dropped.
    fn sample_step_limits(&mut self) {
        let hits = pod_regex::step_limit_hits();
        if hits > self.step_limit_seen {
            self.step_limit.add(hits - self.step_limit_seen);
            self.step_limit_seen = hits;
        }
    }

    /// The per-event stage loop, without step-limit sampling; counts land
    /// in `tallies`, not the shared counters.
    fn push_unsampled(&mut self, event: LogEvent, tallies: &mut BatchTallies) -> PipelineOutput {
        tallies.pushed += 1;
        // The stage loop consumes the event, so its origin is saved up
        // front — but only when tracing can use it: the off baseline must
        // not pay for strings it will never record.
        let origin = self
            .obs
            .mode()
            .records_traces()
            .then(|| (event.source.clone(), event.message.clone()));
        let mut out = PipelineOutput::default();
        let mut current = Some(event);
        for (stage, counts) in self.stages.iter_mut().zip(tallies.stages.iter_mut()) {
            let Some(event) = current.take() else { break };
            counts.0 += 1;
            let result = stage.process(event);
            out.triggers.extend(result.triggers);
            current = result.event;
            if current.is_none() {
                counts.1 += 1;
            }
        }
        if let Some(event) = current {
            out.forwarded.push(event);
            tallies.forwarded += 1;
        }
        // Lines the pipeline acted on become (lazy) causal roots; pure
        // noise does not even capture its strings.
        if !out.triggers.is_empty() || !out.forwarded.is_empty() {
            if let Some((source, message)) = origin {
                let mut attrs = Vec::with_capacity(2);
                attrs.push(("message", message));
                if let Some(step) = out
                    .forwarded
                    .first()
                    .and_then(|e| e.context.as_ref())
                    .and_then(|c| c.step_id.as_deref())
                {
                    attrs.push(("step", step.to_string()));
                }
                out.cause = Some(LineCause { source, attrs });
            }
        }
        out
    }
}

/// Drops lines that are not relevant to the current operation.
#[derive(Debug)]
pub struct NoiseFilter {
    keep: RegexSet,
    drop: RegexSet,
}

impl NoiseFilter {
    /// Keeps only lines matching any of `keep`.
    pub fn keep(keep: RegexSet) -> NoiseFilter {
        NoiseFilter {
            keep,
            drop: RegexSet::default(),
        }
    }

    /// Keeps lines matching `keep` unless they also match `drop`.
    pub fn keep_except(keep: RegexSet, drop: RegexSet) -> NoiseFilter {
        NoiseFilter { keep, drop }
    }
}

impl Stage for NoiseFilter {
    fn process(&mut self, event: LogEvent) -> StageOutput {
        let relevant = self.keep.is_empty() || self.keep.first_match(&event.message).is_some();
        let excluded = self.drop.first_match(&event.message).is_some();
        if relevant && !excluded {
            StageOutput::pass(event)
        } else {
            StageOutput::drop_event()
        }
    }

    fn name(&self) -> &'static str {
        "noise-filter"
    }
}

/// Annotates events with process context using a [`RuleBook`] and raises
/// conformance / assertion triggers — combining the paper's *log annotator*
/// and *trigger* components.
#[derive(Debug)]
pub struct ProcessAnnotator {
    rules: RuleBook,
    process_id: String,
    process_instance_id: String,
    /// Whether matched events also raise an assertion trigger at activity end.
    trigger_assertions: bool,
    /// Whether matched events raise a conformance trigger.
    trigger_conformance: bool,
}

impl ProcessAnnotator {
    /// Creates an annotator bound to one process instance.
    pub fn new(
        rules: RuleBook,
        process_id: impl Into<String>,
        process_instance_id: impl Into<String>,
    ) -> ProcessAnnotator {
        ProcessAnnotator {
            rules,
            process_id: process_id.into(),
            process_instance_id: process_instance_id.into(),
            trigger_assertions: true,
            trigger_conformance: true,
        }
    }

    /// Disables assertion triggering (annotation only).
    pub fn without_assertion_triggers(mut self) -> Self {
        self.trigger_assertions = false;
        self
    }

    /// Disables conformance triggering (annotation only).
    pub fn without_conformance_triggers(mut self) -> Self {
        self.trigger_conformance = false;
        self
    }
}

impl Stage for ProcessAnnotator {
    fn process(&mut self, event: LogEvent) -> StageOutput {
        let Some(m) = self.rules.match_line(&event.message) else {
            // Unmatched lines still flow to conformance, which will classify
            // them as unknown/error — that is a detection signal.
            let mut out = StageOutput::pass(event);
            if self.trigger_conformance {
                let e = out.event.as_ref().expect("pass keeps event").clone();
                out.triggers.push(Trigger::Conformance(e));
            }
            return out;
        };
        let mut ctx =
            ProcessContext::new(self.process_id.clone(), self.process_instance_id.clone())
                .with_step(m.activity.clone());
        if let Some((_, id)) = m.fields.iter().find(|(k, _)| k == "instanceid") {
            ctx = ctx.with_cloud_instance(id.clone());
        }
        let mut event = event.with_context(ctx);
        for (k, v) in &m.fields {
            if event.field(k).is_none() {
                event = event.with_field(k.clone(), v.clone());
            }
        }
        let mut triggers = Vec::new();
        if self.trigger_conformance {
            triggers.push(Trigger::Conformance(event.clone()));
        }
        if self.trigger_assertions && m.boundary == Boundary::End {
            triggers.push(Trigger::Assertion {
                activity: m.activity.clone(),
                event: event.clone(),
            });
        }
        StageOutput {
            event: Some(event),
            triggers,
        }
    }

    fn name(&self) -> &'static str {
        "process-annotator"
    }
}

/// Starts the periodic timer on the operation-start line and stops it on the
/// operation-end line (the paper's *timer setter*).
#[derive(Debug)]
pub struct TimerSetter {
    start: pod_regex::Regex,
    end: pod_regex::Regex,
    process_instance_id: String,
}

impl TimerSetter {
    /// Creates a timer setter for one process instance.
    pub fn new(
        start: pod_regex::Regex,
        end: pod_regex::Regex,
        process_instance_id: impl Into<String>,
    ) -> TimerSetter {
        TimerSetter {
            start,
            end,
            process_instance_id: process_instance_id.into(),
        }
    }
}

impl Stage for TimerSetter {
    fn process(&mut self, event: LogEvent) -> StageOutput {
        let mut out = StageOutput::pass(event);
        let msg = &out.event.as_ref().expect("pass keeps event").message;
        if self.start.is_match(msg) {
            out.triggers.push(Trigger::PeriodicStart {
                process_instance_id: self.process_instance_id.clone(),
            });
        } else if self.end.is_match(msg) {
            out.triggers.push(Trigger::PeriodicStop {
                process_instance_id: self.process_instance_id.clone(),
            });
        }
        out
    }

    fn name(&self) -> &'static str {
        "timer-setter"
    }
}

/// Forwards only "important" lines — those tagged with an activity — to the
/// central storage, dropping the rest after triggers have fired.
#[derive(Debug, Default)]
pub struct ImportantLineForwarder;

impl Stage for ImportantLineForwarder {
    fn process(&mut self, event: LogEvent) -> StageOutput {
        if event.context.is_some() {
            StageOutput::pass(event)
        } else {
            StageOutput::drop_event()
        }
    }

    fn name(&self) -> &'static str {
        "important-line-forwarder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::LineRule;
    use pod_regex::Regex;
    use pod_sim::SimTime;

    fn event(msg: &str) -> LogEvent {
        LogEvent::new(SimTime::from_millis(1), "asgard.log", msg)
    }

    fn rules() -> RuleBook {
        let mut b = RuleBook::new();
        b.push(
            LineRule::new("start-task", Boundary::Start, &[r"Started rolling upgrade"]).unwrap(),
        );
        b.push(
            LineRule::new(
                "new-instance-ready",
                Boundary::End,
                &[r"Instance (?P<instanceid>i-[0-9a-f]+) is ready"],
            )
            .unwrap(),
        );
        b
    }

    #[test]
    fn annotator_attaches_context_and_triggers() {
        let mut a = ProcessAnnotator::new(rules(), "rolling-upgrade", "run-9");
        let out = a.process(event("Instance i-77 is ready for use."));
        let e = out.event.unwrap();
        let ctx = e.context.as_ref().unwrap();
        assert_eq!(ctx.step_id.as_deref(), Some("new-instance-ready"));
        assert_eq!(ctx.cloud_instance_id.as_deref(), Some("i-77"));
        assert_eq!(out.triggers.len(), 2);
        assert!(matches!(out.triggers[0], Trigger::Conformance(_)));
        assert!(matches!(
            &out.triggers[1],
            Trigger::Assertion { activity, .. } if activity == "new-instance-ready"
        ));
    }

    #[test]
    fn start_boundary_does_not_trigger_assertion() {
        let mut a = ProcessAnnotator::new(rules(), "rolling-upgrade", "run-9");
        let out = a.process(event("Started rolling upgrade"));
        assert_eq!(out.triggers.len(), 1);
        assert!(matches!(out.triggers[0], Trigger::Conformance(_)));
    }

    #[test]
    fn unmatched_line_still_goes_to_conformance() {
        let mut a = ProcessAnnotator::new(rules(), "rolling-upgrade", "run-9");
        let out = a.process(event("some totally unknown output"));
        assert!(out.event.as_ref().unwrap().context.is_none());
        assert_eq!(out.triggers.len(), 1);
        assert!(matches!(out.triggers[0], Trigger::Conformance(_)));
    }

    #[test]
    fn timer_setter_raises_start_and_stop() {
        let mut t = TimerSetter::new(
            Regex::new("upgrade task started").unwrap(),
            Regex::new("upgrade task completed").unwrap(),
            "run-1",
        );
        let out = t.process(event("upgrade task started"));
        assert!(matches!(out.triggers[0], Trigger::PeriodicStart { .. }));
        let out = t.process(event("upgrade task completed"));
        assert!(matches!(out.triggers[0], Trigger::PeriodicStop { .. }));
        let out = t.process(event("nothing"));
        assert!(out.triggers.is_empty());
    }

    #[test]
    fn full_pipeline_filters_annotates_forwards() {
        let mut p = Pipeline::new();
        p.add_stage(Box::new(NoiseFilter::keep(
            RegexSet::new(&["Instance", "upgrade"]).unwrap(),
        )));
        p.add_stage(Box::new(ProcessAnnotator::new(
            rules(),
            "rolling-upgrade",
            "run-1",
        )));
        p.add_stage(Box::new(ImportantLineForwarder));

        // Noise: dropped before annotation, no triggers.
        let out = p.push(event("jvm gc pause 12ms"));
        assert!(out.forwarded.is_empty());
        assert!(out.triggers.is_empty());

        // Known activity: forwarded with context.
        let out = p.push(event("Instance i-aa is ready for use"));
        assert_eq!(out.forwarded.len(), 1);
        assert!(out.forwarded[0].context.is_some());
        assert_eq!(out.triggers.len(), 2);

        // Relevant but unknown: conformance trigger, not forwarded.
        let out = p.push(event("upgrade hit unexpected state"));
        assert!(out.forwarded.is_empty());
        assert_eq!(out.triggers.len(), 1);
    }

    #[test]
    fn pipeline_records_per_stage_metrics() {
        let obs = Obs::detached();
        let mut p = Pipeline::new();
        p.add_stage(Box::new(NoiseFilter::keep(
            RegexSet::new(&["Instance", "upgrade"]).unwrap(),
        )));
        p.add_stage(Box::new(ProcessAnnotator::new(
            rules(),
            "rolling-upgrade",
            "run-1",
        )));
        p.add_stage(Box::new(ImportantLineForwarder));
        // Rebinding after stages were added re-registers their counters.
        p.set_obs(&obs);

        p.push(event("jvm gc pause 12ms"));
        p.push(event("Instance i-aa is ready for use"));
        p.push(event("upgrade hit unexpected state"));

        let snap = obs.snapshot();
        assert_eq!(snap.counter("pipeline.pushed"), 3);
        assert_eq!(snap.counter("pipeline.noise-filter.processed"), 3);
        assert_eq!(snap.counter("pipeline.noise-filter.dropped"), 1);
        assert_eq!(snap.counter("pipeline.process-annotator.processed"), 2);
        assert_eq!(snap.counter("pipeline.important-line-forwarder.dropped"), 1);
        assert_eq!(snap.counter("pipeline.forwarded"), 1);
    }

    #[test]
    fn acted_on_lines_capture_a_lazy_causal_root() {
        let obs = Obs::detached();
        obs.begin_run("run-1");
        let mut p = Pipeline::new();
        p.add_stage(Box::new(NoiseFilter::keep(
            RegexSet::new(&["Instance", "upgrade"]).unwrap(),
        )));
        p.add_stage(Box::new(ProcessAnnotator::new(
            rules(),
            "rolling-upgrade",
            "run-1",
        )));
        p.add_stage(Box::new(ImportantLineForwarder));
        p.set_obs(&obs);

        // Noise: no causal root, nothing captured.
        let out = p.push(event("jvm gc pause 12ms"));
        assert!(out.cause.is_none());
        assert!(obs.events().is_empty());

        // Known activity: a lazy root with message and step attrs — and
        // crucially *nothing* recorded in the ring yet.
        let out = p.push(event("Instance i-aa is ready for use"));
        let cause = out.cause.expect("forwarded line has a cause");
        assert!(obs.events().is_empty(), "lazy root must not record eagerly");
        assert_eq!(cause.source, "asgard.log");
        assert!(cause
            .attrs
            .contains(&("message", "Instance i-aa is ready for use".to_string())));
        assert!(cause
            .attrs
            .contains(&("step", "new-instance-ready".to_string())));

        // Scoped under the pending root, a downstream emission
        // materialises the log.line and chains to it.
        {
            let _scope = obs.scope_cause("log.line", cause.source, cause.attrs);
            obs.event("conformance.verdict", "conformance:unfit");
        }
        let records = obs.events().records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, "log.line");
        assert_eq!(records[0].name, "asgard.log");
        assert_eq!(records[1].parent, Some(records[0].id));

        // Trigger-only (unknown but relevant) lines also get a cause.
        let out = p.push(event("upgrade hit unexpected state"));
        assert!(out.cause.is_some());
    }

    #[test]
    fn off_mode_captures_no_cause() {
        let obs = Obs::detached();
        obs.set_mode(pod_obs::TelemetryMode::Off);
        let mut p = Pipeline::new();
        p.add_stage(Box::new(ProcessAnnotator::new(
            rules(),
            "rolling-upgrade",
            "run-1",
        )));
        p.set_obs(&obs);
        let out = p.push(event("Instance i-aa is ready for use"));
        assert!(!out.triggers.is_empty());
        assert!(
            out.cause.is_none(),
            "off mode must not capture origin strings"
        );
    }

    /// A stage that deliberately runs a catastrophic pattern on the legacy
    /// backtracking engine, to exercise step-limit accounting.
    #[derive(Debug)]
    struct PathologicalStage {
        re: Regex,
    }

    impl Stage for PathologicalStage {
        fn process(&mut self, event: LogEvent) -> StageOutput {
            let _ = self
                .re
                .captures_with(&event.message, pod_regex::Engine::Backtracking);
            StageOutput::pass(event)
        }

        fn name(&self) -> &'static str {
            "pathological"
        }
    }

    #[test]
    fn step_limit_aborts_surface_in_pipeline_metrics() {
        let obs = Obs::detached();
        let mut p = Pipeline::new();
        p.add_stage(Box::new(PathologicalStage {
            re: Regex::new("(a+)+b").unwrap(),
        }));
        p.set_obs(&obs);
        let out = p.push(event(&"a".repeat(30)));
        // The line still flows through (the stage passes it on)…
        assert_eq!(out.forwarded.len(), 1);
        // …but the abandoned match attempt is counted, not hidden.
        assert!(
            obs.snapshot().counter("pipeline.regex.step_limit") >= 1,
            "step-limit abort was not attributed to the pipeline"
        );
    }

    #[test]
    fn push_batch_equals_per_line_pushes() {
        let build = || {
            let mut p = Pipeline::new();
            p.add_stage(Box::new(NoiseFilter::keep(
                RegexSet::new(&["Instance", "upgrade"]).unwrap(),
            )));
            p.add_stage(Box::new(ProcessAnnotator::new(
                rules(),
                "rolling-upgrade",
                "run-1",
            )));
            p.add_stage(Box::new(ImportantLineForwarder));
            p
        };
        let lines = [
            "jvm gc pause 12ms",
            "Instance i-aa is ready for use",
            "upgrade hit unexpected state",
            "Started rolling upgrade",
        ];
        let mut singly = build();
        let expected: Vec<PipelineOutput> = lines.iter().map(|l| singly.push(event(l))).collect();
        let mut batched = build();
        let got = batched.push_batch(lines.iter().map(|l| event(l)).collect());
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.forwarded.len(), e.forwarded.len());
            assert_eq!(g.triggers, e.triggers);
            for (gf, ef) in g.forwarded.iter().zip(&e.forwarded) {
                assert_eq!(gf.message, ef.message);
                assert_eq!(gf.context, ef.context);
            }
        }
    }

    #[test]
    fn keep_except_drops_excluded() {
        let mut f = NoiseFilter::keep_except(
            RegexSet::new(&["instance"]).unwrap(),
            RegexSet::new(&["DEBUG"]).unwrap(),
        );
        assert!(f.process(event("instance ok")).event.is_some());
        assert!(f.process(event("DEBUG instance detail")).event.is_none());
    }
}
