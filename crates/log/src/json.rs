//! A minimal JSON value type with serialization and parsing.
//!
//! The paper's log processors exchange Logstash events, which are JSON
//! documents (`@source`, `@tags`, `@fields`, `@message`, ...). This module
//! implements exactly the JSON subset those events need, keeping the
//! workspace free of external serialization dependencies. Object key order
//! is preserved so emitted events are stable and diffable.

use std::fmt;

/// A JSON value.
///
/// # Examples
///
/// ```
/// use pod_log::Json;
///
/// let v = Json::parse(r#"{"@tags":["push","step4"],"n":4}"#).unwrap();
/// assert_eq!(v.get("n").and_then(Json::as_f64), Some(4.0));
/// assert_eq!(v.get("@tags").unwrap().as_array().unwrap().len(), 2);
/// let round = Json::parse(&v.to_string()).unwrap();
/// assert_eq!(round, v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts or replaces a key in an object; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Object(entries) => {
                let key = key.into();
                if let Some(e) = entries.iter_mut().find(|(k, _)| *k == key) {
                    e.1 = value;
                } else {
                    entries.push((key, value));
                }
            }
            _ => panic!("Json::set called on a non-object"),
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte position of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

/// An error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte position of the error.
    pub position: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number `{s}`")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::str("line1\nline2\t\"quoted\" \\slash\u{1}");
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::str("A"));
    }

    #[test]
    fn object_order_is_preserved() {
        let mut o = Json::object();
        o.set("z", Json::Number(1.0));
        o.set("a", Json::Number(2.0));
        assert_eq!(o.to_string(), r#"{"z":1,"a":2}"#);
        o.set("z", Json::Number(3.0));
        assert_eq!(o.to_string(), r#"{"z":3,"a":2}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn whole_numbers_print_without_fraction() {
        assert_eq!(Json::Number(4.0).to_string(), "4");
        assert_eq!(Json::Number(2.5).to_string(), "2.5");
    }

    #[test]
    fn paper_log_event_parses() {
        // Abridged version of the Logstash entry shown in Section IV.
        let text = r#"{"@source":"asgard.log","@tags":["push","asg","step4"],"@fields":{"time":["2013-10-24 11:41:48, 312"],"amiid":["ami-750c9e4f"],"num":["4"]},"@timestamp":"2013-10-24T00:41:48.855Z","@message":"Instance pm on i-7df34041 is ready for use.","@type":"asgard"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("@source").unwrap().as_str(), Some("asgard.log"));
        assert_eq!(v.get("@tags").unwrap().as_array().unwrap().len(), 3);
        let fields = v.get("@fields").unwrap();
        assert_eq!(
            fields.get("amiid").unwrap().as_array().unwrap()[0],
            Json::str("ami-750c9e4f")
        );
    }
}
