//! The log event model.
//!
//! Events follow the Logstash v1.1-era shape the paper shows in Section IV:
//! `@source`, `@tags`, `@fields`, `@timestamp`, `@message`, `@type`. The
//! local log processor annotates events with *process context* — process id,
//! process-instance (trace) id, step id, cloud-instance id — which is the
//! paper's key contribution and what downstream conformance checking,
//! assertion evaluation and diagnosis consume.

use std::fmt;

use pod_sim::SimTime;

use crate::json::Json;

/// Process context attached to a log line by the log annotator.
///
/// # Examples
///
/// ```
/// use pod_log::ProcessContext;
///
/// let ctx = ProcessContext::new("rolling-upgrade", "run-17")
///     .with_step("step4")
///     .with_cloud_instance("i-7df34041");
/// assert_eq!(ctx.step_id.as_deref(), Some("step4"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessContext {
    /// Identifier of the process *model* (e.g. `rolling-upgrade`).
    pub process_id: String,
    /// Identifier of the process *instance* / trace (one concrete upgrade).
    pub process_instance_id: String,
    /// The step (activity) this line belongs to, when known.
    pub step_id: Option<String>,
    /// The cloud instance the line refers to, when one could be extracted.
    pub cloud_instance_id: Option<String>,
    /// Outcome of the step recorded so far (set by assertion evaluation).
    pub outcome: Option<StepOutcome>,
}

impl ProcessContext {
    /// Creates a context for a process model and trace.
    pub fn new(process_id: impl Into<String>, process_instance_id: impl Into<String>) -> Self {
        ProcessContext {
            process_id: process_id.into(),
            process_instance_id: process_instance_id.into(),
            step_id: None,
            cloud_instance_id: None,
            outcome: None,
        }
    }

    /// Sets the step id.
    pub fn with_step(mut self, step: impl Into<String>) -> Self {
        self.step_id = Some(step.into());
        self
    }

    /// Sets the cloud instance id.
    pub fn with_cloud_instance(mut self, id: impl Into<String>) -> Self {
        self.cloud_instance_id = Some(id.into());
        self
    }

    /// Sets the recorded step outcome.
    pub fn with_outcome(mut self, outcome: StepOutcome) -> Self {
        self.outcome = Some(outcome);
        self
    }
}

/// The outcome of a process step as established by assertion evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The post-step assertion passed.
    Success,
    /// The post-step assertion failed.
    Failure,
}

impl fmt::Display for StepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepOutcome::Success => f.write_str("success"),
            StepOutcome::Failure => f.write_str("failure"),
        }
    }
}

/// Severity of a log line, inferred from its content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine progress output.
    Info,
    /// Something suspicious but not fatal.
    Warn,
    /// A reported error.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("INFO"),
            Severity::Warn => f.write_str("WARN"),
            Severity::Error => f.write_str("ERROR"),
        }
    }
}

/// One log event flowing through the system.
///
/// # Examples
///
/// ```
/// use pod_log::{LogEvent, Severity};
/// use pod_sim::SimTime;
///
/// let e = LogEvent::new(SimTime::from_millis(500), "asgard.log", "Instance i-1 is ready")
///     .with_tag("step4")
///     .with_field("instanceid", "i-1");
/// assert!(e.has_tag("step4"));
/// assert_eq!(e.field("instanceid"), Some("i-1"));
/// assert_eq!(e.severity, Severity::Info);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    /// Virtual time at which the line was produced.
    pub timestamp: SimTime,
    /// Source log (e.g. `asgard.log`, `assertion-evaluation.log`).
    pub source: String,
    /// Host that produced the line.
    pub source_host: String,
    /// Event type (Logstash `@type`, e.g. `asgard`, `assertion`).
    pub event_type: String,
    /// Free-form tags (Logstash `@tags`), including process-context tags.
    pub tags: Vec<String>,
    /// Extracted fields (Logstash `@fields`), in insertion order.
    pub fields: Vec<(String, String)>,
    /// The original log line (Logstash `@message`).
    pub message: String,
    /// Inferred severity.
    pub severity: Severity,
    /// Structured process context, once annotated.
    pub context: Option<ProcessContext>,
}

impl LogEvent {
    /// Creates an event with defaults for host/type/severity.
    pub fn new(
        timestamp: SimTime,
        source: impl Into<String>,
        message: impl Into<String>,
    ) -> LogEvent {
        let message = message.into();
        let severity = if message.contains("ERROR") || message.contains("error:") {
            Severity::Error
        } else if message.contains("WARN") {
            Severity::Warn
        } else {
            Severity::Info
        };
        LogEvent {
            timestamp,
            source: source.into(),
            source_host: "sim.local".to_string(),
            event_type: "operation".to_string(),
            tags: Vec::new(),
            fields: Vec::new(),
            message,
            severity,
            context: None,
        }
    }

    /// Sets the event type (Logstash `@type`).
    pub fn with_type(mut self, t: impl Into<String>) -> LogEvent {
        self.event_type = t.into();
        self
    }

    /// Adds a tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> LogEvent {
        self.tags.push(tag.into());
        self
    }

    /// Adds a field.
    pub fn with_field(mut self, key: impl Into<String>, value: impl Into<String>) -> LogEvent {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Sets the severity explicitly.
    pub fn with_severity(mut self, severity: Severity) -> LogEvent {
        self.severity = severity;
        self
    }

    /// Attaches process context and mirrors it into tags/fields the way the
    /// paper's annotator does.
    pub fn with_context(mut self, ctx: ProcessContext) -> LogEvent {
        if !self.tags.contains(&ctx.process_id) {
            self.tags.push(ctx.process_id.clone());
        }
        if let Some(step) = &ctx.step_id {
            if !self.tags.contains(step) {
                self.tags.push(step.clone());
            }
        }
        self.fields
            .push(("processinsid".to_string(), ctx.process_instance_id.clone()));
        if let Some(id) = &ctx.cloud_instance_id {
            self.fields.push(("instanceid".to_string(), id.clone()));
        }
        self.context = Some(ctx);
        self
    }

    /// Whether the event carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// The first value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the event in the Logstash shape shown in the paper.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("@source", Json::str(&self.source));
        o.set(
            "@tags",
            Json::Array(self.tags.iter().map(Json::str).collect()),
        );
        let mut fields = Json::object();
        for (k, v) in &self.fields {
            fields.set(k, Json::Array(vec![Json::str(v)]));
        }
        o.set("@fields", fields);
        o.set("@timestamp", Json::str(self.timestamp.to_string()));
        o.set("@source_host", Json::str(&self.source_host));
        o.set("@source_path", Json::str(&self.source));
        o.set("@message", Json::str(&self.message));
        o.set("@type", Json::str(&self.event_type));
        o
    }
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] [{}] {}", self.timestamp, self.source, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(msg: &str) -> LogEvent {
        LogEvent::new(SimTime::from_millis(100), "asgard.log", msg)
    }

    #[test]
    fn severity_inference() {
        assert_eq!(event("all good").severity, Severity::Info);
        assert_eq!(event("ERROR: boom").severity, Severity::Error);
        assert_eq!(event("WARN low disk").severity, Severity::Warn);
    }

    #[test]
    fn context_mirrors_into_tags_and_fields() {
        let ctx = ProcessContext::new("rolling-upgrade", "run-1")
            .with_step("step4")
            .with_cloud_instance("i-abc");
        let e = event("instance ready").with_context(ctx);
        assert!(e.has_tag("rolling-upgrade"));
        assert!(e.has_tag("step4"));
        assert_eq!(e.field("processinsid"), Some("run-1"));
        assert_eq!(e.field("instanceid"), Some("i-abc"));
    }

    #[test]
    fn context_tags_not_duplicated() {
        let ctx = ProcessContext::new("p", "t").with_step("s");
        let e = event("x").with_tag("p").with_tag("s").with_context(ctx);
        assert_eq!(e.tags.iter().filter(|t| *t == "p").count(), 1);
        assert_eq!(e.tags.iter().filter(|t| *t == "s").count(), 1);
    }

    #[test]
    fn json_shape_matches_logstash() {
        let e = event("Instance pm on i-7df34041 is ready for use.")
            .with_tag("push")
            .with_tag("step4")
            .with_field("instanceid", "i-7df34041")
            .with_type("asgard");
        let j = e.to_json();
        assert_eq!(j.get("@type").unwrap().as_str(), Some("asgard"));
        assert_eq!(j.get("@tags").unwrap().as_array().unwrap().len(), 2);
        assert!(j
            .get("@message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("i-7df34041"));
        // Round-trips through the parser.
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn display_is_compact() {
        let e = event("hello");
        assert_eq!(e.to_string(), "[0.100s] [asgard.log] hello");
    }
}
