//! Property-based tests for JSON round-tripping and log storage.

use pod_log::{Json, LogEvent, LogQuery, LogStorage, Severity};
use pod_sim::SimTime;
use proptest::prelude::*;

/// Strategy for arbitrary JSON values of bounded depth.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite, round-trippable numbers.
        (-1.0e12..1.0e12f64).prop_map(|n| Json::Number((n * 100.0).round() / 100.0)),
        "[ -~]{0,20}".prop_map(Json::str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Array),
            prop::collection::vec(("[a-z@_]{1,8}", inner), 0..5).prop_map(|entries| {
                // Deduplicate keys (objects have unique keys).
                let mut o = Json::object();
                for (k, v) in entries {
                    o.set(k, v);
                }
                o
            }),
        ]
    })
}

proptest! {
    /// Serialize → parse is the identity on the JSON subset.
    #[test]
    fn json_round_trips(v in arb_json()) {
        let text = v.to_string();
        let parsed = Json::parse(&text).unwrap();
        prop_assert_eq!(parsed, v);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn json_parse_never_panics(s in "[ -~]{0,80}") {
        let _ = Json::parse(&s);
    }

    /// Every stored event is found by an unconstrained query, and
    /// tag-filtered queries return exactly the tagged subset.
    #[test]
    fn storage_queries_partition(tags in prop::collection::vec(prop::bool::ANY, 1..30)) {
        let storage = LogStorage::new();
        for (i, tagged) in tags.iter().enumerate() {
            let mut e = LogEvent::new(SimTime::from_millis(i as u64), "s.log", format!("m{i}"));
            if *tagged {
                e = e.with_tag("wanted");
            }
            storage.append(e);
        }
        prop_assert_eq!(storage.query(&LogQuery::new()).len(), tags.len());
        let tagged_count = tags.iter().filter(|t| **t).count();
        prop_assert_eq!(storage.query(&LogQuery::new().with_tag("wanted")).len(), tagged_count);
    }

    /// Cursor tailing sees every event exactly once, in order, regardless
    /// of how appends and reads interleave.
    #[test]
    fn cursor_sees_each_event_once(batches in prop::collection::vec(1usize..5, 1..10)) {
        let storage = LogStorage::new();
        let mut cursor = 0;
        let mut seen = Vec::new();
        let mut next_id = 0u64;
        for batch in batches {
            for _ in 0..batch {
                storage.append(LogEvent::new(
                    SimTime::from_millis(next_id),
                    "s.log",
                    format!("event-{next_id}"),
                ));
                next_id += 1;
            }
            seen.extend(storage.events_since(&mut cursor));
        }
        prop_assert_eq!(seen.len(), next_id as usize);
        for (i, e) in seen.iter().enumerate() {
            prop_assert_eq!(e.message.clone(), format!("event-{i}"));
        }
    }

    /// Severity filtering is monotone: Error ⊆ Warn ⊆ Info.
    #[test]
    fn severity_filter_is_monotone(levels in prop::collection::vec(0u8..3, 0..30)) {
        let storage = LogStorage::new();
        for (i, level) in levels.iter().enumerate() {
            let severity = match level {
                0 => Severity::Info,
                1 => Severity::Warn,
                _ => Severity::Error,
            };
            storage.append(
                LogEvent::new(SimTime::from_millis(i as u64), "s", "x").with_severity(severity),
            );
        }
        let info = storage.query(&LogQuery::new().with_min_severity(Severity::Info)).len();
        let warn = storage.query(&LogQuery::new().with_min_severity(Severity::Warn)).len();
        let error = storage.query(&LogQuery::new().with_min_severity(Severity::Error)).len();
        prop_assert!(error <= warn && warn <= info);
        prop_assert_eq!(info, levels.len());
    }

    /// The Logstash JSON shape of any event parses back.
    #[test]
    fn log_event_json_round_trips(
        msg in "[ -~]{0,60}",
        tags in prop::collection::vec("[a-z0-9:]{1,10}", 0..4),
    ) {
        let mut e = LogEvent::new(SimTime::from_millis(5), "asgard.log", msg);
        for t in tags {
            e = e.with_tag(t);
        }
        let parsed = Json::parse(&e.to_json().to_string()).unwrap();
        prop_assert_eq!(parsed.get("@source").and_then(Json::as_str), Some("asgard.log"));
    }
}
