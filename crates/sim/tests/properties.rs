//! Property-based tests on the simulation substrate.

use pod_sim::{EventQueue, LatencyModel, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops come out in
    /// non-decreasing time order, and same-time events in insertion order.
    #[test]
    fn event_queue_orders_stably(times in prop::collection::vec(0u64..100, 1..50)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "same-time events keep insertion order");
                }
            }
            last = Some((at, idx));
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        spec in prop::collection::vec((0u64..100, prop::bool::ANY), 0..40),
    ) {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        let mut ids = Vec::new();
        for (i, (t, cancel)) in spec.iter().enumerate() {
            let id = q.schedule(SimTime::from_millis(*t), i);
            if *cancel {
                ids.push(id);
            } else {
                keep.push(i);
            }
        }
        for id in ids {
            prop_assert!(q.cancel(id));
        }
        let mut popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        popped.sort_unstable();
        keep.sort_unstable();
        prop_assert_eq!(popped, keep);
    }

    /// Latency samples are non-negative and deterministic per seed.
    #[test]
    fn latency_models_are_deterministic(seed in 0u64..10_000, median in 1.0f64..500.0) {
        let model = LatencyModel::lognormal_median_millis(median, 0.4);
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..20 {
            let x = model.sample(&mut a);
            let y = model.sample(&mut b);
            prop_assert_eq!(x, y);
        }
    }

    /// Empirical quantiles are monotone in q for every model family.
    #[test]
    fn quantiles_are_monotone(kind in 0usize..4, p in 0.05f64..0.45) {
        let model = match kind {
            0 => LatencyModel::fixed_millis(80),
            1 => LatencyModel::uniform_millis(10, 200),
            2 => LatencyModel::lognormal_median_millis(80.0, 0.5),
            _ => LatencyModel::Exponential { mean: SimDuration::from_millis(50) },
        };
        let lo = model.quantile(p, 2000, 7);
        let hi = model.quantile(1.0 - p, 2000, 7);
        prop_assert!(lo <= hi, "{lo} > {hi}");
    }

    /// Duration arithmetic: (a + b) - b == a.
    #[test]
    fn duration_addition_roundtrips(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((da + db).checked_sub(db), Some(da));
    }

    /// SimTime ordering agrees with the underlying micros.
    #[test]
    fn time_ordering_is_consistent(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.duration_since(tb).as_micros(), a.saturating_sub(b));
    }
}
