//! Deterministic randomness for the simulator.
//!
//! Every scenario derives all of its randomness from a single `u64` seed so
//! experiments are reproducible bit-for-bit. Distribution sampling (normal,
//! lognormal, exponential) is implemented here directly rather than pulling
//! in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distribution helpers the simulator needs.
///
/// # Examples
///
/// ```
/// use pod_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second value from the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a scenario seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator, e.g. for a parallel component
    /// that must not perturb the parent's stream.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_u64 requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut a = SimRng::seed_from(7);
        let mut f1 = a.fork(1);
        let mut f2 = a.fork(2);
        let s1: Vec<u64> = (0..10).map(|_| f1.uniform_u64(0, 1000)).collect();
        let s2: Vec<u64> = (0..10).map(|_| f2.uniform_u64(0, 1000)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut r = SimRng::seed_from(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut r = SimRng::seed_from(3);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1000 {
            assert!(r.lognormal(-1.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
