//! Latency models for simulated API calls and operation steps.
//!
//! The evaluation in the paper reports wall-clock diagnosis times that are
//! dominated by cloud API round-trips (each ≈ 70–90 ms in the paper's sample
//! diagnosis log) plus retries caused by eventual consistency. These models
//! let the simulator reproduce that *shape* without real network calls.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over durations.
///
/// # Examples
///
/// ```
/// use pod_sim::{LatencyModel, SimRng};
///
/// let model = LatencyModel::uniform_millis(70, 90);
/// let mut rng = SimRng::seed_from(1);
/// let d = model.sample(&mut rng);
/// assert!(d.as_millis() >= 70 && d.as_millis() < 90);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this long.
    Fixed(SimDuration),
    /// Uniform between two bounds (inclusive low, exclusive high).
    Uniform {
        /// Lower bound (inclusive).
        low: SimDuration,
        /// Upper bound (exclusive).
        high: SimDuration,
    },
    /// Lognormal in seconds: `exp(N(mu, sigma))`, the classic heavy-tailed
    /// model for network round trips.
    LogNormal {
        /// Mean of the underlying normal (of ln-seconds).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean duration.
        mean: SimDuration,
    },
    /// A base model plus a fixed offset, e.g. "at least 50 ms, then a tail".
    Shifted {
        /// The fixed floor added to every sample.
        offset: SimDuration,
        /// The variable part.
        base: Box<LatencyModel>,
    },
}

impl LatencyModel {
    /// Fixed latency in milliseconds.
    pub fn fixed_millis(ms: u64) -> Self {
        LatencyModel::Fixed(SimDuration::from_millis(ms))
    }

    /// Uniform latency between `low` and `high` milliseconds.
    pub fn uniform_millis(low: u64, high: u64) -> Self {
        LatencyModel::Uniform {
            low: SimDuration::from_millis(low),
            high: SimDuration::from_millis(high),
        }
    }

    /// Lognormal latency parameterised by its *median* (in milliseconds) and
    /// the sigma of the underlying normal. The median form is easier to
    /// calibrate against observed data than `mu` directly.
    pub fn lognormal_median_millis(median_ms: f64, sigma: f64) -> Self {
        LatencyModel::LogNormal {
            mu: (median_ms / 1000.0).ln(),
            sigma,
        }
    }

    /// Draws one duration from the model.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { low, high } => {
                if high <= low {
                    *low
                } else {
                    SimDuration::from_micros(rng.uniform_u64(low.as_micros(), high.as_micros()))
                }
            }
            LatencyModel::LogNormal { mu, sigma } => {
                SimDuration::from_secs_f64(rng.lognormal(*mu, *sigma))
            }
            LatencyModel::Exponential { mean } => {
                SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
            LatencyModel::Shifted { offset, base } => *offset + base.sample(rng),
        }
    }

    /// Approximates the `q`-quantile (0 < q < 1) empirically with `n` samples
    /// from a throwaway generator — used to derive timeout settings "at the
    /// 95% percentile" the way the paper's implementation does.
    pub fn quantile(&self, q: f64, n: usize, seed: u64) -> SimDuration {
        assert!(q > 0.0 && q < 1.0, "quantile requires 0 < q < 1");
        assert!(n > 0, "quantile requires at least one sample");
        let mut rng = SimRng::seed_from(seed);
        let mut samples: Vec<u64> = (0..n).map(|_| self.sample(&mut rng).as_micros()).collect();
        samples.sort_unstable();
        let idx = ((n as f64) * q).ceil() as usize - 1;
        SimDuration::from_micros(samples[idx.min(n - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = SimRng::seed_from(0);
        let m = LatencyModel::fixed_millis(80);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(80));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(1);
        let m = LatencyModel::uniform_millis(10, 20);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(10) && d < SimDuration::from_millis(20));
        }
    }

    #[test]
    fn degenerate_uniform_returns_low() {
        let mut rng = SimRng::seed_from(1);
        let m = LatencyModel::Uniform {
            low: SimDuration::from_millis(5),
            high: SimDuration::from_millis(5),
        };
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
    }

    #[test]
    fn lognormal_median_is_calibrated() {
        let m = LatencyModel::lognormal_median_millis(80.0, 0.3);
        let median = m.quantile(0.5, 20_000, 42);
        let ms = median.as_millis() as f64;
        assert!((ms - 80.0).abs() < 5.0, "median {ms}ms");
    }

    #[test]
    fn shifted_adds_floor() {
        let mut rng = SimRng::seed_from(2);
        let m = LatencyModel::Shifted {
            offset: SimDuration::from_millis(50),
            base: Box::new(LatencyModel::Exponential {
                mean: SimDuration::from_millis(10),
            }),
        };
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= SimDuration::from_millis(50));
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let m = LatencyModel::lognormal_median_millis(80.0, 0.5);
        let p50 = m.quantile(0.5, 5000, 7);
        let p95 = m.quantile(0.95, 5000, 7);
        let p99 = m.quantile(0.99, 5000, 7);
        assert!(p50 < p95 && p95 < p99);
    }
}
