//! A shared virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A shared handle to the simulation's virtual clock.
///
/// The clock is advanced by whichever component drives the simulation (the
/// scenario runner or the event loop); every other component holds a clone of
/// the handle and reads the current time for timestamps.
///
/// Cloning a `Clock` is cheap and all clones observe the same time.
///
/// # Examples
///
/// ```
/// use pod_sim::{Clock, SimDuration, SimTime};
///
/// let clock = Clock::new();
/// let reader = clock.clone();
/// clock.advance(SimDuration::from_millis(250));
/// assert_eq!(reader.now(), SimTime::from_millis(250));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    micros: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock {
            micros: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let new = self.micros.fetch_add(d.as_micros(), Ordering::SeqCst) + d.as_micros();
        SimTime::from_micros(new)
    }

    /// Moves the clock forward to `t`. Does nothing if `t` is in the past —
    /// virtual time never runs backwards.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_micros();
        let mut cur = self.micros.load(Ordering::SeqCst);
        while cur < target {
            match self
                .micros
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_micros(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(5));
        assert_eq!(b.now(), SimTime::from_millis(5));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = Clock::new();
        c.advance_to(SimTime::from_millis(100));
        c.advance_to(SimTime::from_millis(50));
        assert_eq!(c.now(), SimTime::from_millis(100));
    }

    #[test]
    fn advance_returns_new_time() {
        let c = Clock::new();
        let t = c.advance(SimDuration::from_millis(3));
        assert_eq!(t, SimTime::from_millis(3));
    }
}
