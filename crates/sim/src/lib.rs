//! Discrete-event simulation substrate for POD-Diagnosis.
//!
//! This crate provides the virtual-time foundation every other crate in the
//! workspace builds on:
//!
//! - [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time;
//! - [`Clock`] — a cheaply clonable shared handle to the current time;
//! - [`EventQueue`] — a deterministic future-event list for discrete-event
//!   simulation, generic over the event payload;
//! - [`SimRng`] — seeded randomness with normal / lognormal / exponential
//!   samplers implemented in-crate;
//! - [`LatencyModel`] — calibrated latency distributions for simulated cloud
//!   API calls.
//!
//! Everything is deterministic under a seed: two runs with the same seed
//! produce identical logs, identical diagnosis transcripts and identical
//! metric tables. This is what lets the evaluation replay the paper's
//! 160-run fault-injection campaign in milliseconds.
//!
//! # Examples
//!
//! ```
//! use pod_sim::{Clock, EventQueue, LatencyModel, SimRng, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { ApiReply, Timeout }
//!
//! let clock = Clock::new();
//! let mut rng = SimRng::seed_from(42);
//! let mut queue = EventQueue::new();
//! let api = LatencyModel::uniform_millis(70, 90);
//!
//! queue.schedule(clock.now() + api.sample(&mut rng), Ev::ApiReply);
//! queue.schedule(SimTime::from_secs(30), Ev::Timeout);
//!
//! let (t, ev) = queue.pop().unwrap();
//! clock.advance_to(t);
//! assert_eq!(ev, Ev::ApiReply);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod events;
mod latency;
mod rng;
mod time;

pub use clock::Clock;
pub use events::{EventId, EventQueue};
pub use latency::LatencyModel;
pub use rng::SimRng;
pub use time::{ParseTimeError, SimDuration, SimTime};
