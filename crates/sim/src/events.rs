//! A deterministic discrete-event queue.
//!
//! The queue is generic over the event payload so each simulation layer can
//! define its own event enum and keep full ownership of its state while the
//! queue only orders *when* things happen. Ties at the same virtual time are
//! broken by insertion order, which keeps runs reproducible.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, used to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list for discrete-event simulation.
///
/// # Examples
///
/// ```
/// use pod_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), "b");
/// q.schedule(SimTime::from_millis(10), "a");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_millis(10), "a"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at virtual time `at`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Scheduled {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: mark and skip at pop time.
        if self.heap.iter().any(|s| s.id == id) {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// ones. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.id) {
                continue;
            }
            return Some((s.at, s.payload));
        }
        None
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let skip = match self.heap.peek() {
                Some(s) if self.cancelled.contains(&s.id) => true,
                Some(s) => return Some(s.at),
                None => return None,
            };
            if skip {
                let s = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&s.id);
            }
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, "first");
        q.schedule(t, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), "gone");
        q.schedule(SimTime::from_millis(2), "kept");
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "kept");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(7), ());
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
