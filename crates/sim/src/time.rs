//! Virtual time primitives.
//!
//! All simulation time is measured in integer **microseconds** from the start
//! of the simulation. Using a fixed integer resolution keeps arithmetic exact
//! and the whole simulation deterministic across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since simulation start.
///
/// `SimTime` is ordered, copyable and cheap; it is the timestamp attached to
/// every log event, API call and diagnosis step in the simulator.
///
/// # Examples
///
/// ```
/// use pod_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t.to_string(), "1.500s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time stamp from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time stamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time stamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two time stamps.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000;
        write!(f, "{}.{:03}s", total_ms / 1_000, total_ms % 1_000)
    }
}

/// Error returned when a string is not a recognizable [`SimTime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeError {
    input: String,
}

impl fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unparseable sim time {:?}", self.input)
    }
}

impl std::error::Error for ParseTimeError {}

impl std::str::FromStr for SimTime {
    type Err = ParseTimeError;

    /// Parses the [`Display`](fmt::Display) form (`"12.345s"`, fractional
    /// digits optional) or a bare microsecond count (`"12345000"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTimeError {
            input: s.to_string(),
        };
        let s = s.trim();
        if let Some(body) = s.strip_suffix('s') {
            let (secs, frac) = match body.split_once('.') {
                Some((secs, frac)) => (secs, frac),
                None => (body, ""),
            };
            if frac.len() > 6 || !frac.chars().all(|c| c.is_ascii_digit()) {
                return Err(err());
            }
            let secs: u64 = secs.parse().map_err(|_| err())?;
            // Right-pad the fraction to microseconds: "5" means 500ms.
            let mut frac_us: u64 = 0;
            for c in frac.chars().chain(std::iter::repeat('0')).take(6) {
                frac_us = frac_us * 10 + (c as u64 - '0' as u64);
            }
            Ok(SimTime(secs * 1_000_000 + frac_us))
        } else {
            s.parse().map(SimTime).map_err(|_| err())
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of virtual time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use pod_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2300);
/// assert_eq!(d.as_secs_f64(), 2.3);
/// assert_eq!(d * 2, SimDuration::from_millis(4600));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1_000_000.0).round() as u64)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            let ms = self.0 / 1_000;
            write!(f, "{}.{:03}s", ms / 1_000, ms % 1_000)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d) - t, d);
        assert_eq!(
            t.duration_since(SimTime::ZERO),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn duration_since_saturates() {
        let t = SimTime::from_millis(10);
        let later = SimTime::from_millis(20);
        assert_eq!(t.duration_since(later), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(2300).to_string(), "2.300s");
        assert_eq!(SimDuration::from_micros(800).to_string(), "800us");
        assert_eq!(SimDuration::from_millis(83).to_string(), "83ms");
        assert_eq!(SimDuration::from_millis(10440).to_string(), "10.440s");
    }

    #[test]
    fn parse_round_trips_display() {
        for t in [
            SimTime::ZERO,
            SimTime::from_millis(1_500),
            SimTime::from_secs(82),
        ] {
            let parsed: SimTime = t.to_string().parse().unwrap();
            assert_eq!(parsed, t);
        }
        assert_eq!(
            "2.5s".parse::<SimTime>().unwrap(),
            SimTime::from_millis(2_500)
        );
        assert_eq!("90s".parse::<SimTime>().unwrap(), SimTime::from_secs(90));
        assert_eq!(
            "1500".parse::<SimTime>().unwrap(),
            SimTime::from_micros(1_500)
        );
        for bad in ["", "s", "abc", "1.2345678s", "1.x2s", "-4s"] {
            assert!(bad.parse::<SimTime>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.0000015),
            SimDuration::from_micros(2)
        );
        assert_eq!(
            SimDuration::from_secs_f64(2.3),
            SimDuration::from_millis(2300)
        );
    }

    #[test]
    fn duration_ops() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d.checked_sub(SimDuration::from_millis(200)), None);
        assert_eq!(
            d.saturating_sub(SimDuration::from_millis(200)),
            SimDuration::ZERO
        );
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(300));
    }
}
