//! A simulated AWS-like cloud: the substrate POD-Diagnosis operates on.
//!
//! The paper evaluates on real AWS (EC2 instances in an auto-scaling group
//! behind an elastic load balancer, launched from launch configurations that
//! reference AMIs, security groups and key pairs). POD-Diagnosis observes
//! that environment *only* through API reads and logs, so this crate
//! reproduces exactly those observable surfaces:
//!
//! - the resource model ([`Ami`], [`SecurityGroup`], [`KeyPair`],
//!   [`LaunchConfig`], [`Instance`], [`AutoScalingGroup`], [`Elb`]);
//! - a metered API ([`Cloud`]) with per-call latency, token-bucket
//!   **throttling**, transient failures and AWS-style error codes
//!   ([`ApiError`]);
//! - **eventual consistency**: describe-calls may observe a stale view
//!   (bounded version history per resource, [`Versioned`]);
//! - the ASG **reconciliation engine**: desired-capacity convergence,
//!   asynchronous boots and terminations, ELB auto-registration, and a
//!   scaling-activity history ([`ScalingActivity`]) — the feed an
//!   Asgard-like orchestrator polls;
//! - `admin_*` god-mode mutations used by the evaluation for environment
//!   setup, fault injection (the paper's 8 fault types) and interference
//!   (scale-in, random terminations, a second team consuming the shared
//!   account's instance limit).
//!
//! Everything runs on virtual time from [`pod_sim`] and is deterministic
//! under a seed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cloud;
mod error;
mod ids;
mod resources;
mod state;
mod versioned;

pub use cloud::{AsgUpdate, Cloud, CloudConfig, LaunchConfigUpdate};
pub use error::ApiError;
pub use ids::{
    AmiId, AsgName, ElbName, InstanceId, KeyPairName, LaunchConfigName, SecurityGroupId,
};
pub use resources::{
    ActivityStatus, Ami, AutoScalingGroup, Elb, Instance, InstanceState, KeyPair, LaunchConfig,
    ScalingActivity, SecurityGroup,
};
pub use state::CloudState;
pub use versioned::Versioned;
