//! The authoritative resource state of the simulated cloud.

use std::collections::HashMap;

use pod_sim::SimTime;

use crate::ids::{
    AmiId, AsgName, ElbName, InstanceId, KeyPairName, LaunchConfigName, SecurityGroupId,
};
use crate::resources::{
    Ami, AutoScalingGroup, Elb, Instance, KeyPair, LaunchConfig, ScalingActivity, SecurityGroup,
};
use crate::versioned::Versioned;

/// All resource records, each with version history for eventually-consistent
/// reads. Mutations must go through the [`crate::Cloud`] handle so that
/// versions are stamped with the current virtual time.
#[derive(Debug, Default)]
pub struct CloudState {
    /// Machine images by id.
    pub amis: HashMap<AmiId, Versioned<Ami>>,
    /// Security groups by id.
    pub security_groups: HashMap<SecurityGroupId, Versioned<SecurityGroup>>,
    /// Key pairs by name.
    pub key_pairs: HashMap<KeyPairName, Versioned<KeyPair>>,
    /// Launch configurations by name.
    pub launch_configs: HashMap<LaunchConfigName, Versioned<LaunchConfig>>,
    /// Instances by id (terminated instances are retained).
    pub instances: HashMap<InstanceId, Versioned<Instance>>,
    /// Auto-scaling groups by name.
    pub asgs: HashMap<AsgName, Versioned<AutoScalingGroup>>,
    /// Load balancers by name.
    pub elbs: HashMap<ElbName, Versioned<Elb>>,
    /// Scaling-activity history (append-only).
    pub activities: Vec<ScalingActivity>,
    /// Account-wide cap on active instances.
    pub instance_limit: usize,
}

impl CloudState {
    /// Creates an empty account with the given instance limit.
    pub fn new(instance_limit: usize) -> CloudState {
        CloudState {
            instance_limit,
            ..CloudState::default()
        }
    }

    /// Number of instances currently counting against the limit.
    pub fn active_instance_count(&self) -> usize {
        self.instances
            .values()
            .filter(|v| v.latest().state.is_active())
            .count()
    }

    /// Active member instances of an ASG, as of the authoritative state.
    pub fn asg_active_instances(&self, asg: &AsgName) -> Vec<&Instance> {
        let Some(group) = self.asgs.get(asg) else {
            return Vec::new();
        };
        group
            .latest()
            .instances
            .iter()
            .filter_map(|id| self.instances.get(id))
            .map(|v| v.latest())
            .filter(|i| i.state.is_active())
            .collect()
    }

    /// Records a scaling activity.
    pub fn record_activity(&mut self, activity: ScalingActivity) {
        self.activities.push(activity);
    }

    /// Activities for `asg` at or after `since`.
    pub fn activities_for(&self, asg: &AsgName, since: SimTime) -> Vec<&ScalingActivity> {
        self.activities
            .iter()
            .filter(|a| a.asg == *asg && a.at >= since)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{ActivityStatus, InstanceState};

    fn instance(id: &str, state: InstanceState) -> Instance {
        Instance {
            id: InstanceId::new(id),
            state,
            ami: AmiId::new("ami-1"),
            version: "1.0".into(),
            instance_type: "m1.small".into(),
            key_pair: KeyPairName::new("kp"),
            security_group: SecurityGroupId::new("sg-1"),
            launch_config: None,
            asg: None,
            registered_with_elb: false,
            launched_at: SimTime::ZERO,
        }
    }

    #[test]
    fn active_count_ignores_terminated() {
        let mut s = CloudState::new(20);
        s.instances.insert(
            InstanceId::new("i-1"),
            Versioned::new(SimTime::ZERO, instance("i-1", InstanceState::InService)),
        );
        s.instances.insert(
            InstanceId::new("i-2"),
            Versioned::new(SimTime::ZERO, instance("i-2", InstanceState::Terminated)),
        );
        s.instances.insert(
            InstanceId::new("i-3"),
            Versioned::new(SimTime::ZERO, instance("i-3", InstanceState::Pending)),
        );
        assert_eq!(s.active_instance_count(), 2);
    }

    #[test]
    fn activities_filter_by_asg_and_time() {
        let mut s = CloudState::new(20);
        for (t, name) in [(1u64, "a"), (2, "a"), (3, "b")] {
            s.record_activity(ScalingActivity {
                at: SimTime::from_secs(t),
                asg: AsgName::new(name),
                description: "launch".into(),
                status: ActivityStatus::Successful,
            });
        }
        assert_eq!(
            s.activities_for(&AsgName::new("a"), SimTime::from_secs(2))
                .len(),
            1
        );
        assert_eq!(s.activities_for(&AsgName::new("a"), SimTime::ZERO).len(), 2);
    }
}
