//! The cloud simulator: API front-end, ASG reconciliation engine, eventual
//! consistency and throttling.

use std::sync::Arc;

use parking_lot::Mutex;
use pod_obs::{Counter, Histogram, Obs};
use pod_sim::{Clock, EventQueue, LatencyModel, SimDuration, SimRng, SimTime};

use crate::error::ApiError;
use crate::ids::{
    AmiId, AsgName, ElbName, InstanceId, KeyPairName, LaunchConfigName, SecurityGroupId,
};
use crate::resources::{
    ActivityStatus, Ami, AutoScalingGroup, Elb, Instance, InstanceState, KeyPair, LaunchConfig,
    ScalingActivity, SecurityGroup,
};
use crate::state::CloudState;
use crate::versioned::Versioned;

/// Tunables of the simulated cloud.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Round-trip latency of one API call (the paper's diagnosis log shows
    /// ≈ 70–90 ms per call).
    pub api_latency: LatencyModel,
    /// Time from launch request to `InService`.
    pub boot_time: LatencyModel,
    /// Time from terminate request to `Terminated`.
    pub terminate_time: LatencyModel,
    /// How often each ASG reconciles desired vs. actual capacity.
    pub reconcile_interval: SimDuration,
    /// Probability that a describe-call observes a stale view.
    pub stale_read_prob: f64,
    /// How far behind a stale view lags.
    pub consistency_lag: LatencyModel,
    /// Probability of a spontaneous transient API failure.
    pub api_failure_prob: f64,
    /// Account-wide active-instance cap.
    pub instance_limit: usize,
    /// Token-bucket burst capacity for throttling.
    pub throttle_capacity: f64,
    /// Token-bucket refill rate (requests per second).
    pub throttle_refill_per_sec: f64,
}

impl Default for CloudConfig {
    fn default() -> CloudConfig {
        CloudConfig {
            api_latency: LatencyModel::uniform_millis(70, 90),
            boot_time: LatencyModel::lognormal_median_millis(50_000.0, 0.25),
            terminate_time: LatencyModel::lognormal_median_millis(25_000.0, 0.2),
            reconcile_interval: SimDuration::from_secs(10),
            stale_read_prob: 0.08,
            consistency_lag: LatencyModel::Exponential {
                mean: SimDuration::from_millis(1_500),
            },
            api_failure_prob: 0.0,
            instance_limit: 40,
            throttle_capacity: 50.0,
            throttle_refill_per_sec: 20.0,
        }
    }
}

/// Fields of a launch configuration that can be changed by
/// [`Cloud::admin_update_launch_config`] (the fault-injection surface for
/// configuration faults).
#[derive(Debug, Clone, Default)]
pub struct LaunchConfigUpdate {
    /// New AMI, if changing.
    pub ami: Option<AmiId>,
    /// New instance type, if changing.
    pub instance_type: Option<String>,
    /// New key pair, if changing.
    pub key_pair: Option<KeyPairName>,
    /// New security group, if changing.
    pub security_group: Option<SecurityGroupId>,
}

/// Updatable ASG fields for [`Cloud::update_asg`].
#[derive(Debug, Clone, Default)]
pub struct AsgUpdate {
    /// New launch configuration.
    pub launch_config: Option<LaunchConfigName>,
    /// New minimum size.
    pub min_size: Option<u32>,
    /// New maximum size.
    pub max_size: Option<u32>,
    /// New desired capacity.
    pub desired_capacity: Option<u32>,
}

#[derive(Debug)]
enum CloudEvent {
    BootComplete(InstanceId),
    TerminateComplete(InstanceId),
    Reconcile(AsgName),
}

#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
    last: SimTime,
}

impl TokenBucket {
    fn new(capacity: f64, refill_per_sec: f64) -> TokenBucket {
        TokenBucket {
            tokens: capacity,
            capacity,
            refill_per_sec,
            last: SimTime::ZERO,
        }
    }

    fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[derive(Debug)]
struct Inner {
    rng: SimRng,
    state: CloudState,
    events: EventQueue<CloudEvent>,
    config: CloudConfig,
    throttle: TokenBucket,
    processed_until: SimTime,
}

/// A handle to the simulated cloud. Cloning is cheap; all clones share the
/// same account state and virtual clock.
///
/// API methods (`describe_*`, `create_*`, `terminate_*`, …) behave like the
/// real thing: they consume virtual time, can be throttled, can fail
/// transiently, and reads may be stale. `admin_*` methods are the
/// experimenter's god-mode — instantaneous, reliable mutations used for
/// environment setup and fault injection.
///
/// # Examples
///
/// ```
/// use pod_cloud::{Cloud, CloudConfig};
/// use pod_sim::{Clock, SimRng};
///
/// let cloud = Cloud::new(Clock::new(), SimRng::seed_from(1), CloudConfig::default());
/// let ami = cloud.admin_create_ami("app", "1.0.0");
/// let sg = cloud.admin_create_security_group("web", &[80]);
/// let kp = cloud.admin_create_key_pair("prod-key");
/// let elb = cloud.admin_create_elb("front");
/// let lc = cloud.admin_create_launch_config("lc-1", ami, "m1.small", kp, sg);
/// let asg = cloud.admin_create_asg("app-asg", lc, 4, 8, 4, Some(elb));
/// assert_eq!(cloud.describe_asg(&asg).unwrap().desired_capacity, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Cloud {
    inner: Arc<Mutex<Inner>>,
    clock: Clock,
    obs: Obs,
    metrics: CloudMetrics,
}

/// Cached handles for the cloud-layer metrics, bumped on the API hot path
/// without touching the registry lock.
#[derive(Debug, Clone)]
struct CloudMetrics {
    calls: Counter,
    throttled: Counter,
    errors: Counter,
    stale_reads: Counter,
    latency_us: Histogram,
}

impl CloudMetrics {
    fn new(obs: &Obs) -> CloudMetrics {
        CloudMetrics {
            calls: obs.counter("cloud.api.calls"),
            throttled: obs.counter("cloud.api.throttled"),
            errors: obs.counter("cloud.api.errors"),
            stale_reads: obs.counter("cloud.api.stale_reads"),
            latency_us: obs.histogram("cloud.api.latency_us", pod_obs::LATENCY_BOUNDS_US),
        }
    }
}

impl Cloud {
    /// Creates a fresh, empty account.
    pub fn new(clock: Clock, rng: SimRng, config: CloudConfig) -> Cloud {
        let obs = Obs::new(clock.clone());
        let metrics = CloudMetrics::new(&obs);
        Cloud {
            inner: Arc::new(Mutex::new(Inner {
                rng,
                state: CloudState::new(config.instance_limit),
                events: EventQueue::new(),
                throttle: TokenBucket::new(
                    config.throttle_capacity,
                    config.throttle_refill_per_sec,
                ),
                config,
                processed_until: SimTime::ZERO,
            })),
            clock,
            obs,
            metrics,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared observability context. Every component holding a cloud
    /// handle records its metrics and spans here, so one snapshot covers
    /// the whole pipeline.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Advances the clock by `d` and lets the cloud engine catch up —
    /// the simulation's replacement for `sleep`.
    pub fn sleep(&self, d: SimDuration) {
        let now = self.clock.advance(d);
        self.inner.lock().run_until(now);
    }

    /// Processes engine events up to the current clock time without
    /// consuming any additional time.
    pub fn settle(&self) {
        let now = self.clock.now();
        self.inner.lock().run_until(now);
    }

    // ---------------------------------------------------------------
    // Metered API calls
    // ---------------------------------------------------------------

    fn call<T>(
        &self,
        f: impl FnOnce(&mut Inner, SimTime) -> Result<T, ApiError>,
    ) -> Result<T, ApiError> {
        // Outcome-conditional tracing: healthy calls are fully accounted
        // by the `calls`/`latency_us` metrics (with exemplars), so they
        // pay only a clock read here; a span is materialised
        // retroactively for the anomalous outcomes diagnosis cares about.
        let started_at = self.clock.now();
        let mut inner = self.inner.lock();
        let model = inner.config.api_latency.clone();
        let latency = model.sample(&mut inner.rng);
        let now = self.clock.advance(latency);
        inner.run_until(now);
        self.metrics.calls.incr();
        self.metrics.latency_us.record(latency.as_micros());
        if !inner.throttle.try_take(now) {
            self.metrics.throttled.incr();
            self.obs.record_span(
                "cloud.api.call",
                started_at,
                vec![("outcome", "throttled".to_string())],
            );
            return Err(ApiError::Throttling);
        }
        let failure_prob = inner.config.api_failure_prob;
        if failure_prob > 0.0 && inner.rng.chance(failure_prob) {
            self.metrics.errors.incr();
            self.obs.record_span(
                "cloud.api.call",
                started_at,
                vec![("outcome", "transient-error".to_string())],
            );
            return Err(ApiError::Internal("transient service error".into()));
        }
        f(&mut inner, now)
    }

    /// The effective time a read resolves against (models eventual
    /// consistency).
    fn read_time(&self, inner: &mut Inner, now: SimTime) -> SimTime {
        if inner.rng.chance(inner.config.stale_read_prob) {
            self.metrics.stale_reads.incr();
            let lag = inner.config.consistency_lag.sample(&mut inner.rng);
            SimTime::from_micros(now.as_micros().saturating_sub(lag.as_micros()))
        } else {
            now
        }
    }

    /// Describes an auto-scaling group (possibly stale).
    pub fn describe_asg(&self, name: &AsgName) -> Result<AutoScalingGroup, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            inner
                .state
                .asgs
                .get(name)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "auto-scaling-group",
                    id: name.to_string(),
                })
        })
    }

    /// Describes a launch configuration (possibly stale).
    pub fn describe_launch_config(
        &self,
        name: &LaunchConfigName,
    ) -> Result<LaunchConfig, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            inner
                .state
                .launch_configs
                .get(name)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "launch-configuration",
                    id: name.to_string(),
                })
        })
    }

    /// Describes one instance (possibly stale).
    pub fn describe_instance(&self, id: &InstanceId) -> Result<Instance, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            inner
                .state
                .instances
                .get(id)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "instance",
                    id: id.to_string(),
                })
        })
    }

    /// Describes all member instances of an ASG (possibly stale).
    pub fn describe_asg_instances(&self, name: &AsgName) -> Result<Vec<Instance>, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            let group = inner
                .state
                .asgs
                .get(name)
                .ok_or_else(|| ApiError::NotFound {
                    kind: "auto-scaling-group",
                    id: name.to_string(),
                })?;
            let ids = group.at(t).instances.clone();
            Ok(ids
                .iter()
                .filter_map(|id| inner.state.instances.get(id))
                .map(|v| v.at(t).clone())
                .collect())
        })
    }

    /// Describes a machine image (possibly stale).
    pub fn describe_ami(&self, id: &AmiId) -> Result<Ami, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            inner
                .state
                .amis
                .get(id)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "ami",
                    id: id.to_string(),
                })
        })
    }

    /// Describes a key pair (possibly stale).
    pub fn describe_key_pair(&self, name: &KeyPairName) -> Result<KeyPair, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            inner
                .state
                .key_pairs
                .get(name)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "key-pair",
                    id: name.to_string(),
                })
        })
    }

    /// Describes a security group (possibly stale).
    pub fn describe_security_group(&self, id: &SecurityGroupId) -> Result<SecurityGroup, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            inner
                .state
                .security_groups
                .get(id)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "security-group",
                    id: id.to_string(),
                })
        })
    }

    /// Describes a load balancer (possibly stale). Fails with
    /// [`ApiError::ServiceUnavailable`] while the ELB service is down.
    pub fn describe_elb(&self, name: &ElbName) -> Result<Elb, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            let elb = inner
                .state
                .elbs
                .get(name)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "elb",
                    id: name.to_string(),
                })?;
            if !elb.available {
                return Err(ApiError::ServiceUnavailable {
                    service: format!("elb {name}"),
                });
            }
            Ok(elb)
        })
    }

    /// Health of every instance registered with a load balancer, the way an
    /// Edda-like monitor reports it: an instance is healthy when it is
    /// registered and in service. Fails while the ELB is unavailable.
    pub fn describe_elb_health(&self, name: &ElbName) -> Result<Vec<(InstanceId, bool)>, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            let elb = inner
                .state
                .elbs
                .get(name)
                .map(|v| v.at(t).clone())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "elb",
                    id: name.to_string(),
                })?;
            if !elb.available {
                return Err(ApiError::ServiceUnavailable {
                    service: format!("elb {name}"),
                });
            }
            Ok(elb
                .registered
                .iter()
                .map(|id| {
                    let healthy = inner
                        .state
                        .instances
                        .get(id)
                        .map(|v| v.at(t).state == InstanceState::InService)
                        .unwrap_or(false);
                    (id.clone(), healthy)
                })
                .collect())
        })
    }

    /// Scaling activities for `asg` at or after `since` (authoritative, the
    /// activity log is strongly consistent like CloudTrail's console feed).
    pub fn describe_scaling_activities(
        &self,
        asg: &AsgName,
        since: SimTime,
    ) -> Result<Vec<ScalingActivity>, ApiError> {
        self.call(|inner, _| {
            Ok(inner
                .state
                .activities_for(asg, since)
                .into_iter()
                .cloned()
                .collect())
        })
    }

    /// Number of active instances in the account (possibly stale).
    pub fn count_active_instances(&self) -> Result<usize, ApiError> {
        self.call(|inner, now| {
            let t = self.read_time(inner, now);
            Ok(inner
                .state
                .instances
                .values()
                .filter(|v| v.at(t).state.is_active())
                .count())
        })
    }

    /// Creates a launch configuration.
    pub fn create_launch_config(
        &self,
        name: impl Into<String>,
        ami: AmiId,
        instance_type: impl Into<String>,
        key_pair: KeyPairName,
        security_group: SecurityGroupId,
    ) -> Result<LaunchConfigName, ApiError> {
        let name = LaunchConfigName::new(name);
        let instance_type = instance_type.into();
        self.call(move |inner, now| {
            if inner.state.launch_configs.contains_key(&name) {
                return Err(ApiError::Validation(format!(
                    "launch configuration {name} already exists"
                )));
            }
            if !inner.state.amis.contains_key(&ami) {
                return Err(ApiError::NotFound {
                    kind: "ami",
                    id: ami.to_string(),
                });
            }
            let lc = LaunchConfig {
                name: name.clone(),
                ami,
                instance_type,
                key_pair,
                security_group,
                created_at: now,
            };
            inner
                .state
                .launch_configs
                .insert(name.clone(), Versioned::new(now, lc));
            Ok(name)
        })
    }

    /// Deletes a launch configuration.
    pub fn delete_launch_config(&self, name: &LaunchConfigName) -> Result<(), ApiError> {
        self.call(|inner, _| {
            inner
                .state
                .launch_configs
                .remove(name)
                .map(|_| ())
                .ok_or_else(|| ApiError::NotFound {
                    kind: "launch-configuration",
                    id: name.to_string(),
                })
        })
    }

    /// Updates ASG fields (launch config, sizes).
    pub fn update_asg(&self, name: &AsgName, update: AsgUpdate) -> Result<(), ApiError> {
        self.call(|inner, now| {
            if let Some(lc) = &update.launch_config {
                if !inner.state.launch_configs.contains_key(lc) {
                    return Err(ApiError::NotFound {
                        kind: "launch-configuration",
                        id: lc.to_string(),
                    });
                }
            }
            let group = inner
                .state
                .asgs
                .get_mut(name)
                .ok_or_else(|| ApiError::NotFound {
                    kind: "auto-scaling-group",
                    id: name.to_string(),
                })?;
            let mut g = group.latest().clone();
            if let Some(lc) = update.launch_config {
                g.launch_config = lc;
            }
            if let Some(min) = update.min_size {
                g.min_size = min;
            }
            if let Some(max) = update.max_size {
                g.max_size = max;
            }
            if let Some(desired) = update.desired_capacity {
                if desired < g.min_size || desired > g.max_size {
                    return Err(ApiError::Validation(format!(
                        "desired capacity {desired} outside [{}, {}]",
                        g.min_size, g.max_size
                    )));
                }
                g.desired_capacity = desired;
            }
            group.set(now, g);
            Ok(())
        })
    }

    /// Terminates an instance in an ASG, optionally decrementing desired
    /// capacity so it is not replaced.
    pub fn terminate_instance(
        &self,
        id: &InstanceId,
        decrement_desired: bool,
    ) -> Result<(), ApiError> {
        self.call(|inner, now| {
            let record = inner
                .state
                .instances
                .get_mut(id)
                .ok_or_else(|| ApiError::NotFound {
                    kind: "instance",
                    id: id.to_string(),
                })?;
            let mut instance = record.latest().clone();
            if !instance.state.is_active() {
                return Err(ApiError::Validation(format!(
                    "instance {id} is not running"
                )));
            }
            instance.state = InstanceState::Terminating;
            let asg = instance.asg.clone();
            record.set(now, instance);
            let delay = inner.config.terminate_time.sample(&mut inner.rng);
            inner
                .events
                .schedule(now + delay, CloudEvent::TerminateComplete(id.clone()));
            if let Some(asg_name) = asg {
                if decrement_desired {
                    if let Some(group) = inner.state.asgs.get_mut(&asg_name) {
                        let mut g = group.latest().clone();
                        g.desired_capacity = g.desired_capacity.saturating_sub(1);
                        group.set(now, g);
                    }
                }
                inner.state.record_activity(ScalingActivity {
                    at: now,
                    asg: asg_name,
                    description: format!("Terminating EC2 instance: {id}"),
                    status: ActivityStatus::InProgress,
                });
            }
            Ok(())
        })
    }

    /// Deregisters an instance from a load balancer.
    pub fn deregister_from_elb(
        &self,
        elb: &ElbName,
        instance: &InstanceId,
    ) -> Result<(), ApiError> {
        self.call(|inner, now| {
            let record = inner
                .state
                .elbs
                .get_mut(elb)
                .ok_or_else(|| ApiError::NotFound {
                    kind: "elb",
                    id: elb.to_string(),
                })?;
            if !record.latest().available {
                return Err(ApiError::ServiceUnavailable {
                    service: format!("elb {elb}"),
                });
            }
            let mut e = record.latest().clone();
            e.registered.retain(|i| i != instance);
            record.set(now, e);
            if let Some(rec) = inner.state.instances.get_mut(instance) {
                let mut i = rec.latest().clone();
                i.registered_with_elb = false;
                rec.set(now, i);
            }
            Ok(())
        })
    }

    /// Registers an instance with a load balancer.
    pub fn register_with_elb(&self, elb: &ElbName, instance: &InstanceId) -> Result<(), ApiError> {
        self.call(|inner, now| {
            let record = inner
                .state
                .elbs
                .get_mut(elb)
                .ok_or_else(|| ApiError::NotFound {
                    kind: "elb",
                    id: elb.to_string(),
                })?;
            if !record.latest().available {
                return Err(ApiError::ServiceUnavailable {
                    service: format!("elb {elb}"),
                });
            }
            let mut e = record.latest().clone();
            if !e.registered.contains(instance) {
                e.registered.push(instance.clone());
            }
            record.set(now, e);
            if let Some(rec) = inner.state.instances.get_mut(instance) {
                let mut i = rec.latest().clone();
                i.registered_with_elb = true;
                rec.set(now, i);
            }
            Ok(())
        })
    }

    // ---------------------------------------------------------------
    // Admin / god-mode (setup and fault injection)
    // ---------------------------------------------------------------

    fn admin<T>(&self, f: impl FnOnce(&mut Inner, SimTime) -> T) -> T {
        let mut inner = self.inner.lock();
        let now = self.clock.now();
        inner.run_until(now);
        f(&mut inner, now)
    }

    /// Registers a new AMI and returns its id.
    pub fn admin_create_ami(&self, name: &str, version: &str) -> AmiId {
        self.admin(|inner, now| {
            let id = AmiId::generate(&mut inner.rng);
            let ami = Ami {
                id: id.clone(),
                name: name.to_string(),
                version: version.to_string(),
                available: true,
            };
            inner
                .state
                .amis
                .insert(id.clone(), Versioned::new(now, ami));
            id
        })
    }

    /// Creates a security group.
    pub fn admin_create_security_group(&self, name: &str, ports: &[u16]) -> SecurityGroupId {
        self.admin(|inner, now| {
            let id = SecurityGroupId::generate(&mut inner.rng);
            let sg = SecurityGroup {
                id: id.clone(),
                name: name.to_string(),
                ingress_ports: ports.to_vec(),
                available: true,
            };
            inner
                .state
                .security_groups
                .insert(id.clone(), Versioned::new(now, sg));
            id
        })
    }

    /// Creates a key pair.
    pub fn admin_create_key_pair(&self, name: &str) -> KeyPairName {
        self.admin(|inner, now| {
            let kp_name = KeyPairName::new(name);
            let fingerprint = format!("fp-{:016x}", inner.rng.uniform_u64(0, u64::MAX - 1));
            let kp = KeyPair {
                name: kp_name.clone(),
                fingerprint,
                available: true,
            };
            inner
                .state
                .key_pairs
                .insert(kp_name.clone(), Versioned::new(now, kp));
            kp_name
        })
    }

    /// Creates a load balancer.
    pub fn admin_create_elb(&self, name: &str) -> ElbName {
        self.admin(|inner, now| {
            let elb_name = ElbName::new(name);
            let elb = Elb {
                name: elb_name.clone(),
                registered: Vec::new(),
                available: true,
            };
            inner
                .state
                .elbs
                .insert(elb_name.clone(), Versioned::new(now, elb));
            elb_name
        })
    }

    /// Creates a launch configuration without latency or validation beyond
    /// AMI existence.
    pub fn admin_create_launch_config(
        &self,
        name: &str,
        ami: AmiId,
        instance_type: &str,
        key_pair: KeyPairName,
        security_group: SecurityGroupId,
    ) -> LaunchConfigName {
        self.admin(|inner, now| {
            let lc_name = LaunchConfigName::new(name);
            let lc = LaunchConfig {
                name: lc_name.clone(),
                ami,
                instance_type: instance_type.to_string(),
                key_pair,
                security_group,
                created_at: now,
            };
            inner
                .state
                .launch_configs
                .insert(lc_name.clone(), Versioned::new(now, lc));
            lc_name
        })
    }

    /// Creates an ASG already at its desired capacity: `desired` instances
    /// are materialised `InService` and registered with the ELB. This is the
    /// steady-state cluster a rolling upgrade starts from.
    pub fn admin_create_asg(
        &self,
        name: &str,
        launch_config: LaunchConfigName,
        min_size: u32,
        max_size: u32,
        desired: u32,
        elb: Option<ElbName>,
    ) -> AsgName {
        self.admin(|inner, now| {
            let asg_name = AsgName::new(name);
            let lc = inner
                .state
                .launch_configs
                .get(&launch_config)
                .expect("launch config must exist before creating an ASG")
                .latest()
                .clone();
            let ami_version = inner
                .state
                .amis
                .get(&lc.ami)
                .map(|a| a.latest().version.clone())
                .unwrap_or_default();
            let mut ids = Vec::new();
            for _ in 0..desired {
                let id = InstanceId::generate(&mut inner.rng);
                let instance = Instance {
                    id: id.clone(),
                    state: InstanceState::InService,
                    ami: lc.ami.clone(),
                    version: ami_version.clone(),
                    instance_type: lc.instance_type.clone(),
                    key_pair: lc.key_pair.clone(),
                    security_group: lc.security_group.clone(),
                    launch_config: Some(launch_config.clone()),
                    asg: Some(asg_name.clone()),
                    registered_with_elb: elb.is_some(),
                    launched_at: now,
                };
                inner
                    .state
                    .instances
                    .insert(id.clone(), Versioned::new(now, instance));
                ids.push(id);
            }
            if let Some(elb_name) = &elb {
                if let Some(rec) = inner.state.elbs.get_mut(elb_name) {
                    let mut e = rec.latest().clone();
                    e.registered.extend(ids.iter().cloned());
                    rec.set(now, e);
                }
            }
            let group = AutoScalingGroup {
                name: asg_name.clone(),
                launch_config,
                min_size,
                max_size,
                desired_capacity: desired,
                instances: ids,
                elb,
            };
            inner
                .state
                .asgs
                .insert(asg_name.clone(), Versioned::new(now, group));
            inner.events.schedule(
                now + inner.config.reconcile_interval,
                CloudEvent::Reconcile(asg_name.clone()),
            );
            asg_name
        })
    }

    /// Marks an AMI available/unavailable (fault type 5).
    pub fn admin_set_ami_available(&self, id: &AmiId, available: bool) {
        self.admin(|inner, now| {
            if let Some(rec) = inner.state.amis.get_mut(id) {
                let mut a = rec.latest().clone();
                a.available = available;
                rec.set(now, a);
            }
        });
    }

    /// Marks a key pair available/unavailable (fault type 6).
    pub fn admin_set_key_pair_available(&self, name: &KeyPairName, available: bool) {
        self.admin(|inner, now| {
            if let Some(rec) = inner.state.key_pairs.get_mut(name) {
                let mut k = rec.latest().clone();
                k.available = available;
                rec.set(now, k);
            }
        });
    }

    /// Marks a security group available/unavailable (fault type 7).
    pub fn admin_set_security_group_available(&self, id: &SecurityGroupId, available: bool) {
        self.admin(|inner, now| {
            if let Some(rec) = inner.state.security_groups.get_mut(id) {
                let mut s = rec.latest().clone();
                s.available = available;
                rec.set(now, s);
            }
        });
    }

    /// Marks an ELB available/unavailable (fault type 8).
    pub fn admin_set_elb_available(&self, name: &ElbName, available: bool) {
        self.admin(|inner, now| {
            if let Some(rec) = inner.state.elbs.get_mut(name) {
                let mut e = rec.latest().clone();
                e.available = available;
                rec.set(now, e);
            }
        });
    }

    /// Rewrites launch-configuration fields in place (fault types 1–4:
    /// concurrent AMI push, key-pair / security-group / instance-type
    /// misconfiguration).
    pub fn admin_update_launch_config(&self, name: &LaunchConfigName, update: LaunchConfigUpdate) {
        self.admin(|inner, now| {
            if let Some(rec) = inner.state.launch_configs.get_mut(name) {
                let mut lc = rec.latest().clone();
                if let Some(ami) = update.ami {
                    lc.ami = ami;
                }
                if let Some(it) = update.instance_type {
                    lc.instance_type = it;
                }
                if let Some(kp) = update.key_pair {
                    lc.key_pair = kp;
                }
                if let Some(sg) = update.security_group {
                    lc.security_group = sg;
                }
                rec.set(now, lc);
            }
        });
    }

    /// Terminates an instance outside any API accounting — the "random
    /// termination" interference of the evaluation.
    pub fn admin_terminate_instance(&self, id: &InstanceId) {
        self.admin(|inner, now| {
            if let Some(rec) = inner.state.instances.get_mut(id) {
                let mut i = rec.latest().clone();
                if i.state.is_active() {
                    i.state = InstanceState::Terminating;
                    rec.set(now, i);
                    let delay = inner.config.terminate_time.sample(&mut inner.rng);
                    inner
                        .events
                        .schedule(now + delay, CloudEvent::TerminateComplete(id.clone()));
                }
            }
        });
    }

    /// Changes the account instance limit (shared-account interference).
    pub fn admin_set_instance_limit(&self, limit: usize) {
        self.admin(|inner, _| inner.state.instance_limit = limit);
    }

    /// Launches `count` standalone instances outside any ASG — the
    /// independent team consuming account capacity.
    pub fn admin_launch_standalone(&self, count: usize, ami: &AmiId) -> Vec<InstanceId> {
        self.admin(|inner, now| {
            let version = inner
                .state
                .amis
                .get(ami)
                .map(|a| a.latest().version.clone())
                .unwrap_or_default();
            let mut ids = Vec::new();
            for _ in 0..count {
                let id = InstanceId::generate(&mut inner.rng);
                let instance = Instance {
                    id: id.clone(),
                    state: InstanceState::InService,
                    ami: ami.clone(),
                    version: version.clone(),
                    instance_type: "m1.small".to_string(),
                    key_pair: KeyPairName::new("other-team-key"),
                    security_group: SecurityGroupId::new("sg-other"),
                    launch_config: None,
                    asg: None,
                    registered_with_elb: false,
                    launched_at: now,
                };
                inner
                    .state
                    .instances
                    .insert(id.clone(), Versioned::new(now, instance));
                ids.push(id);
            }
            ids
        })
    }

    /// Terminates standalone instances (releasing account capacity).
    pub fn admin_release_standalone(&self, ids: &[InstanceId]) {
        self.admin(|inner, now| {
            for id in ids {
                if let Some(rec) = inner.state.instances.get_mut(id) {
                    let mut i = rec.latest().clone();
                    i.state = InstanceState::Terminated;
                    rec.set(now, i);
                }
            }
        });
    }

    /// Authoritative (non-stale) snapshot of an ASG, for test assertions and
    /// ground-truth checks in the evaluation harness.
    pub fn admin_describe_asg(&self, name: &AsgName) -> Option<AutoScalingGroup> {
        self.admin(|inner, _| inner.state.asgs.get(name).map(|v| v.latest().clone()))
    }

    /// Authoritative snapshot of an instance.
    pub fn admin_describe_instance(&self, id: &InstanceId) -> Option<Instance> {
        self.admin(|inner, _| inner.state.instances.get(id).map(|v| v.latest().clone()))
    }

    /// Authoritative snapshot of all active member instances of an ASG.
    pub fn admin_asg_active_instances(&self, name: &AsgName) -> Vec<Instance> {
        self.admin(|inner, _| {
            inner
                .state
                .asg_active_instances(name)
                .into_iter()
                .cloned()
                .collect()
        })
    }

    /// Authoritative count of active instances in the account.
    pub fn admin_active_instance_count(&self) -> usize {
        self.admin(|inner, _| inner.state.active_instance_count())
    }

    /// Authoritative snapshot of a launch configuration.
    pub fn admin_describe_launch_config(&self, name: &LaunchConfigName) -> Option<LaunchConfig> {
        self.admin(|inner, _| {
            inner
                .state
                .launch_configs
                .get(name)
                .map(|v| v.latest().clone())
        })
    }
}

impl Inner {
    /// Processes all engine events scheduled at or before `now`.
    fn run_until(&mut self, now: SimTime) {
        if now <= self.processed_until {
            return;
        }
        while let Some(at) = self.events.peek_time() {
            if at > now {
                break;
            }
            let (at, event) = self.events.pop().expect("peeked event exists");
            match event {
                CloudEvent::BootComplete(id) => self.on_boot_complete(at, &id),
                CloudEvent::TerminateComplete(id) => self.on_terminate_complete(at, &id),
                CloudEvent::Reconcile(asg) => self.on_reconcile(at, &asg),
            }
        }
        self.processed_until = now;
    }

    fn on_boot_complete(&mut self, at: SimTime, id: &InstanceId) {
        let Some(rec) = self.state.instances.get_mut(id) else {
            return;
        };
        let mut instance = rec.latest().clone();
        if instance.state != InstanceState::Pending {
            return;
        }
        instance.state = InstanceState::InService;
        let asg_name = instance.asg.clone();
        rec.set(at, instance);
        let Some(asg_name) = asg_name else { return };
        self.state.record_activity(ScalingActivity {
            at,
            asg: asg_name.clone(),
            description: format!("Launched EC2 instance: {id}"),
            status: ActivityStatus::Successful,
        });
        // Auto-register with the attached ELB, like AWS ASG-ELB integration.
        let elb_name = self
            .state
            .asgs
            .get(&asg_name)
            .and_then(|g| g.latest().elb.clone());
        if let Some(elb_name) = elb_name {
            let available = self
                .state
                .elbs
                .get(&elb_name)
                .map(|e| e.latest().available)
                .unwrap_or(false);
            if available {
                if let Some(erec) = self.state.elbs.get_mut(&elb_name) {
                    let mut e = erec.latest().clone();
                    if !e.registered.contains(id) {
                        e.registered.push(id.clone());
                    }
                    erec.set(at, e);
                }
                if let Some(irec) = self.state.instances.get_mut(id) {
                    let mut i = irec.latest().clone();
                    i.registered_with_elb = true;
                    irec.set(at, i);
                }
            } else {
                self.state.record_activity(ScalingActivity {
                    at,
                    asg: asg_name,
                    description: format!(
                        "Failed to register instance {id} with ELB {elb_name}: ServiceUnavailable"
                    ),
                    status: ActivityStatus::Failed("ServiceUnavailable".into()),
                });
            }
        }
    }

    fn on_terminate_complete(&mut self, at: SimTime, id: &InstanceId) {
        let Some(rec) = self.state.instances.get_mut(id) else {
            return;
        };
        let mut instance = rec.latest().clone();
        if instance.state == InstanceState::Terminated {
            return;
        }
        instance.state = InstanceState::Terminated;
        instance.registered_with_elb = false;
        let asg_name = instance.asg.clone();
        rec.set(at, instance);
        if let Some(asg_name) = &asg_name {
            if let Some(grec) = self.state.asgs.get_mut(asg_name) {
                let mut g = grec.latest().clone();
                g.instances.retain(|i| i != id);
                grec.set(at, g);
            }
            self.state.record_activity(ScalingActivity {
                at,
                asg: asg_name.clone(),
                description: format!("Terminated EC2 instance: {id}"),
                status: ActivityStatus::Successful,
            });
        }
        // Remove from any ELB registration.
        let elb_names: Vec<ElbName> = self
            .state
            .elbs
            .iter()
            .filter(|(_, e)| e.latest().registered.contains(id))
            .map(|(n, _)| n.clone())
            .collect();
        for elb_name in elb_names {
            if let Some(erec) = self.state.elbs.get_mut(&elb_name) {
                let mut e = erec.latest().clone();
                e.registered.retain(|i| i != id);
                erec.set(at, e);
            }
        }
    }

    fn on_reconcile(&mut self, at: SimTime, asg_name: &AsgName) {
        let Some(grec) = self.state.asgs.get(asg_name) else {
            return; // ASG deleted; stop rescheduling.
        };
        let group = grec.latest().clone();
        let active: Vec<InstanceId> = group
            .instances
            .iter()
            .filter(|id| {
                self.state
                    .instances
                    .get(id)
                    .is_some_and(|v| v.latest().state.is_active())
            })
            .cloned()
            .collect();
        let desired = group.desired_capacity as usize;
        if active.len() < desired {
            for _ in 0..(desired - active.len()) {
                self.try_launch(at, asg_name);
            }
        } else if active.len() > desired {
            // Scale in: newest first, deterministic.
            let mut candidates: Vec<(SimTime, InstanceId)> = active
                .iter()
                .filter_map(|id| {
                    self.state
                        .instances
                        .get(id)
                        .map(|v| (v.latest().launched_at, id.clone()))
                })
                .collect();
            candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            for (_, id) in candidates.into_iter().take(active.len() - desired) {
                if let Some(rec) = self.state.instances.get_mut(&id) {
                    let mut i = rec.latest().clone();
                    i.state = InstanceState::Terminating;
                    rec.set(at, i);
                }
                let delay = self.config.terminate_time.sample(&mut self.rng);
                self.events
                    .schedule(at + delay, CloudEvent::TerminateComplete(id.clone()));
                self.state.record_activity(ScalingActivity {
                    at,
                    asg: asg_name.clone(),
                    description: format!("Terminating EC2 instance (scale in): {id}"),
                    status: ActivityStatus::InProgress,
                });
            }
        }
        self.events.schedule(
            at + self.config.reconcile_interval,
            CloudEvent::Reconcile(asg_name.clone()),
        );
    }

    /// Attempts to launch one instance into `asg_name`, recording a failed
    /// scaling activity when a referenced resource is missing or a limit is
    /// hit. These activity messages are what the operation node's log later
    /// surfaces as errors.
    fn try_launch(&mut self, at: SimTime, asg_name: &AsgName) {
        let Some(grec) = self.state.asgs.get(asg_name) else {
            return;
        };
        let group = grec.latest().clone();
        let fail = |state: &mut CloudState, message: String| {
            state.record_activity(ScalingActivity {
                at,
                asg: asg_name.clone(),
                description: message.clone(),
                status: ActivityStatus::Failed(message),
            });
        };
        let Some(lc_rec) = self.state.launch_configs.get(&group.launch_config) else {
            fail(
                &mut self.state,
                format!(
                    "Failed to launch instance: launch configuration {} not found",
                    group.launch_config
                ),
            );
            return;
        };
        let lc = lc_rec.latest().clone();
        let ami_ok = self
            .state
            .amis
            .get(&lc.ami)
            .map(|a| a.latest().available)
            .unwrap_or(false);
        if !ami_ok {
            fail(
                &mut self.state,
                format!("Failed to launch instance: AMI {} is unavailable", lc.ami),
            );
            return;
        }
        let kp_ok = self
            .state
            .key_pairs
            .get(&lc.key_pair)
            .map(|k| k.latest().available)
            .unwrap_or(false);
        if !kp_ok {
            fail(
                &mut self.state,
                format!(
                    "Failed to launch instance: key pair {} does not exist",
                    lc.key_pair
                ),
            );
            return;
        }
        let sg_ok = self
            .state
            .security_groups
            .get(&lc.security_group)
            .map(|s| s.latest().available)
            .unwrap_or(false);
        if !sg_ok {
            fail(
                &mut self.state,
                format!(
                    "Failed to launch instance: security group {} does not exist",
                    lc.security_group
                ),
            );
            return;
        }
        if self.state.active_instance_count() >= self.state.instance_limit {
            let limit = self.state.instance_limit;
            fail(
                &mut self.state,
                format!("Failed to launch instance: InstanceLimitExceeded (limit {limit})"),
            );
            return;
        }
        let version = self
            .state
            .amis
            .get(&lc.ami)
            .map(|a| a.latest().version.clone())
            .unwrap_or_default();
        let id = InstanceId::generate(&mut self.rng);
        let instance = Instance {
            id: id.clone(),
            state: InstanceState::Pending,
            ami: lc.ami.clone(),
            version,
            instance_type: lc.instance_type.clone(),
            key_pair: lc.key_pair.clone(),
            security_group: lc.security_group.clone(),
            launch_config: Some(group.launch_config.clone()),
            asg: Some(asg_name.clone()),
            registered_with_elb: false,
            launched_at: at,
        };
        self.state
            .instances
            .insert(id.clone(), Versioned::new(at, instance));
        if let Some(grec) = self.state.asgs.get_mut(asg_name) {
            let mut g = grec.latest().clone();
            g.instances.push(id.clone());
            grec.set(at, g);
        }
        let boot = self.config.boot_time.sample(&mut self.rng);
        self.events
            .schedule(at + boot, CloudEvent::BootComplete(id.clone()));
        self.state.record_activity(ScalingActivity {
            at,
            asg: asg_name.clone(),
            description: format!("Launching a new EC2 instance: {id}"),
            status: ActivityStatus::InProgress,
        });
    }
}
