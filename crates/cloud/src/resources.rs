//! Resource records for the simulated cloud.

use pod_sim::SimTime;

use crate::ids::{
    AmiId, AsgName, ElbName, InstanceId, KeyPairName, LaunchConfigName, SecurityGroupId,
};

/// A machine image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ami {
    /// The image id.
    pub id: AmiId,
    /// Human-readable name.
    pub name: String,
    /// The application version baked into the image (e.g. `1.1.0`).
    pub version: String,
    /// Whether the image is currently available for launching.
    pub available: bool,
}

/// A security group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityGroup {
    /// The group id.
    pub id: SecurityGroupId,
    /// Human-readable name.
    pub name: String,
    /// Open ingress ports (simplified rule model).
    pub ingress_ports: Vec<u16>,
    /// Whether the group still exists / is usable.
    pub available: bool,
}

/// An SSH key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// The key name.
    pub name: KeyPairName,
    /// Fingerprint (opaque).
    pub fingerprint: String,
    /// Whether the key still exists.
    pub available: bool,
}

/// A launch configuration: the template an ASG launches instances from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchConfig {
    /// The configuration name.
    pub name: LaunchConfigName,
    /// Image to launch.
    pub ami: AmiId,
    /// Instance type (e.g. `m1.small`).
    pub instance_type: String,
    /// Key pair for SSH access.
    pub key_pair: KeyPairName,
    /// Security group applied to instances.
    pub security_group: SecurityGroupId,
    /// Creation time.
    pub created_at: SimTime,
}

/// Lifecycle state of an EC2 instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Requested, still booting.
    Pending,
    /// Booted and passing health checks.
    InService,
    /// Termination requested.
    Terminating,
    /// Gone.
    Terminated,
}

impl InstanceState {
    /// Whether the instance still counts against capacity.
    pub fn is_active(self) -> bool {
        matches!(self, InstanceState::Pending | InstanceState::InService)
    }
}

/// An EC2 instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The instance id.
    pub id: InstanceId,
    /// Lifecycle state.
    pub state: InstanceState,
    /// The image it was launched from.
    pub ami: AmiId,
    /// The application version of that image at launch time.
    pub version: String,
    /// Instance type.
    pub instance_type: String,
    /// Key pair configured at launch.
    pub key_pair: KeyPairName,
    /// Security group configured at launch.
    pub security_group: SecurityGroupId,
    /// The launch configuration used, if launched by an ASG.
    pub launch_config: Option<LaunchConfigName>,
    /// The owning ASG, if any.
    pub asg: Option<AsgName>,
    /// Whether the instance is registered with its ELB.
    pub registered_with_elb: bool,
    /// Launch request time.
    pub launched_at: SimTime,
}

/// An auto-scaling group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoScalingGroup {
    /// Group name.
    pub name: AsgName,
    /// Launch configuration new instances use.
    pub launch_config: LaunchConfigName,
    /// Minimum size.
    pub min_size: u32,
    /// Maximum size.
    pub max_size: u32,
    /// Desired capacity; the reconciler drives actual size toward this.
    pub desired_capacity: u32,
    /// Ids of member instances (any active state).
    pub instances: Vec<InstanceId>,
    /// Attached load balancer.
    pub elb: Option<ElbName>,
}

/// An elastic load balancer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elb {
    /// Balancer name.
    pub name: ElbName,
    /// Instances currently registered.
    pub registered: Vec<InstanceId>,
    /// Whether the service is up (fault type 8 marks it unavailable).
    pub available: bool,
}

/// One entry in the ASG's scaling-activity history (what Asgard polls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingActivity {
    /// Time the activity was recorded.
    pub at: SimTime,
    /// The ASG concerned.
    pub asg: AsgName,
    /// What happened.
    pub description: String,
    /// Whether it succeeded.
    pub status: ActivityStatus,
}

/// Outcome of a scaling activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivityStatus {
    /// Completed successfully.
    Successful,
    /// Failed, with the cloud-side error message.
    Failed(String),
    /// Still in progress.
    InProgress,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_state_activity() {
        assert!(InstanceState::Pending.is_active());
        assert!(InstanceState::InService.is_active());
        assert!(!InstanceState::Terminating.is_active());
        assert!(!InstanceState::Terminated.is_active());
    }
}
