//! Typed identifiers for cloud resources.
//!
//! Using newtypes instead of raw strings prevents the classic bug of passing
//! an AMI id where an instance id is expected, and gives each id family its
//! AWS-style prefix (`i-`, `ami-`, `sg-`).

use std::fmt;

use pod_sim::SimRng;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(String);

        impl $name {
            /// Wraps an existing id string.
            pub fn new(id: impl Into<String>) -> Self {
                $name(id.into())
            }

            /// Generates a fresh random id with the family prefix.
            pub fn generate(rng: &mut SimRng) -> Self {
                let mut s = String::from($prefix);
                for _ in 0..8 {
                    let d = rng.uniform_u64(0, 16);
                    s.push(char::from_digit(d as u32, 16).expect("hex digit"));
                }
                $name(s)
            }

            /// The id as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name(s.to_string())
            }
        }
    };
}

id_type!(
    /// An EC2 instance id (`i-…`).
    InstanceId,
    "i-"
);
id_type!(
    /// A machine-image id (`ami-…`).
    AmiId,
    "ami-"
);
id_type!(
    /// A security-group id (`sg-…`).
    SecurityGroupId,
    "sg-"
);

/// A key-pair name (key pairs are addressed by name in AWS).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyPairName(String);

impl KeyPairName {
    /// Wraps a name.
    pub fn new(name: impl Into<String>) -> Self {
        KeyPairName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for KeyPairName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A launch-configuration name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaunchConfigName(String);

impl LaunchConfigName {
    /// Wraps a name.
    pub fn new(name: impl Into<String>) -> Self {
        LaunchConfigName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for LaunchConfigName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An auto-scaling-group name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsgName(String);

impl AsgName {
    /// Wraps a name.
    pub fn new(name: impl Into<String>) -> Self {
        AsgName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AsgName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An elastic-load-balancer name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElbName(String);

impl ElbName {
    /// Wraps a name.
    pub fn new(name: impl Into<String>) -> Self {
        ElbName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ElbName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_have_prefix_and_are_unique() {
        let mut rng = SimRng::seed_from(1);
        let a = InstanceId::generate(&mut rng);
        let b = InstanceId::generate(&mut rng);
        assert!(a.as_str().starts_with("i-"));
        assert_ne!(a, b);
        assert!(AmiId::generate(&mut rng).as_str().starts_with("ami-"));
        assert!(SecurityGroupId::generate(&mut rng)
            .as_str()
            .starts_with("sg-"));
    }

    #[test]
    fn ids_display_as_their_string() {
        let id = InstanceId::new("i-7df34041");
        assert_eq!(id.to_string(), "i-7df34041");
        assert_eq!(AsgName::new("pm--asg").to_string(), "pm--asg");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        assert_eq!(InstanceId::generate(&mut r1), InstanceId::generate(&mut r2));
    }
}
