//! API error codes for the simulated cloud.

use std::fmt;

/// An error returned by a cloud API call, mirroring the AWS error-code
/// families the paper's operations have to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The request was throttled (`RequestLimitExceeded`).
    Throttling,
    /// A referenced resource does not exist or has been deleted.
    NotFound {
        /// Resource kind, e.g. `ami`, `key-pair`.
        kind: &'static str,
        /// The id or name that failed to resolve.
        id: String,
    },
    /// The account instance limit would be exceeded (`InstanceLimitExceeded`).
    LimitExceeded {
        /// The configured account limit.
        limit: usize,
    },
    /// A dependent service (e.g. the ELB) is unavailable.
    ServiceUnavailable {
        /// The unavailable service.
        service: String,
    },
    /// The request failed validation (bad argument, wrong state).
    Validation(String),
    /// A transient internal failure.
    Internal(String),
}

impl ApiError {
    /// Whether retrying the same call may succeed — the consistent-API layer
    /// only retries these.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::Throttling | ApiError::Internal(_) | ApiError::ServiceUnavailable { .. }
        )
    }

    /// The AWS-style error code string, as it would appear in logs.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::Throttling => "RequestLimitExceeded",
            ApiError::NotFound { .. } => "InvalidResource.NotFound",
            ApiError::LimitExceeded { .. } => "InstanceLimitExceeded",
            ApiError::ServiceUnavailable { .. } => "ServiceUnavailable",
            ApiError::Validation(_) => "ValidationError",
            ApiError::Internal(_) => "InternalError",
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Throttling => write!(f, "RequestLimitExceeded: request was throttled"),
            ApiError::NotFound { kind, id } => {
                write!(f, "InvalidResource.NotFound: {kind} `{id}` does not exist")
            }
            ApiError::LimitExceeded { limit } => {
                write!(
                    f,
                    "InstanceLimitExceeded: account limit of {limit} instances reached"
                )
            }
            ApiError::ServiceUnavailable { service } => {
                write!(f, "ServiceUnavailable: {service} is not responding")
            }
            ApiError::Validation(msg) => write!(f, "ValidationError: {msg}"),
            ApiError::Internal(msg) => write!(f, "InternalError: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(ApiError::Throttling.is_retryable());
        assert!(ApiError::Internal("x".into()).is_retryable());
        assert!(ApiError::ServiceUnavailable {
            service: "elb".into()
        }
        .is_retryable());
        assert!(!ApiError::NotFound {
            kind: "ami",
            id: "ami-1".into()
        }
        .is_retryable());
        assert!(!ApiError::LimitExceeded { limit: 20 }.is_retryable());
        assert!(!ApiError::Validation("bad".into()).is_retryable());
    }

    #[test]
    fn display_includes_code_and_detail() {
        let e = ApiError::NotFound {
            kind: "key-pair",
            id: "prod-key".into(),
        };
        let s = e.to_string();
        assert!(s.contains("NotFound") && s.contains("prod-key"));
        assert_eq!(e.code(), "InvalidResource.NotFound");
    }
}
