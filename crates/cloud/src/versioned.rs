//! Version history for eventually-consistent reads.
//!
//! AWS describe-calls are eventually consistent: a read shortly after a write
//! may return the previous state. The simulator reproduces this by keeping a
//! bounded version history per resource; a stale read resolves against a
//! past effective time instead of "now".

use pod_sim::SimTime;

/// How many past versions to retain per resource. Staleness windows are a
/// few seconds while writes are much rarer, so a small bound suffices.
const MAX_VERSIONS: usize = 8;

/// A value with a bounded modification history.
///
/// # Examples
///
/// ```
/// use pod_cloud::Versioned;
/// use pod_sim::SimTime;
///
/// let mut v = Versioned::new(SimTime::ZERO, "v1");
/// v.set(SimTime::from_secs(10), "v2");
/// assert_eq!(*v.latest(), "v2");
/// assert_eq!(*v.at(SimTime::from_secs(5)), "v1");
/// assert_eq!(*v.at(SimTime::from_secs(10)), "v2");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned<T> {
    /// `(effective_from, value)`, sorted ascending by time.
    versions: Vec<(SimTime, T)>,
}

impl<T> Versioned<T> {
    /// Creates a history with one initial version.
    pub fn new(at: SimTime, value: T) -> Versioned<T> {
        Versioned {
            versions: vec![(at, value)],
        }
    }

    /// Records a new version effective from `at`. Versions must be recorded
    /// in non-decreasing time order; same-instant writes replace.
    pub fn set(&mut self, at: SimTime, value: T) {
        if let Some(last) = self.versions.last() {
            debug_assert!(at >= last.0, "versions must be recorded in time order");
            if last.0 == at {
                let last = self.versions.last_mut().expect("non-empty");
                last.1 = value;
                return;
            }
        }
        self.versions.push((at, value));
        if self.versions.len() > MAX_VERSIONS {
            let excess = self.versions.len() - MAX_VERSIONS;
            self.versions.drain(..excess);
        }
    }

    /// The newest value.
    pub fn latest(&self) -> &T {
        &self.versions.last().expect("history is never empty").1
    }

    /// Mutable access to the newest value. Use only for corrections that
    /// should not create a new visible version.
    pub fn latest_mut(&mut self) -> &mut T {
        &mut self.versions.last_mut().expect("history is never empty").1
    }

    /// The value visible at effective time `t`: the newest version whose
    /// effective-from is `<= t`, or the oldest retained version if `t`
    /// precedes the whole history.
    pub fn at(&self, t: SimTime) -> &T {
        match self.versions.iter().rev().find(|(from, _)| *from <= t) {
            Some((_, v)) => v,
            None => &self.versions.first().expect("history is never empty").1,
        }
    }

    /// Time of the most recent modification.
    pub fn modified_at(&self) -> SimTime {
        self.versions.last().expect("history is never empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_reads_see_old_versions() {
        let mut v = Versioned::new(SimTime::from_secs(0), 1);
        v.set(SimTime::from_secs(10), 2);
        v.set(SimTime::from_secs(20), 3);
        assert_eq!(*v.at(SimTime::from_secs(0)), 1);
        assert_eq!(*v.at(SimTime::from_secs(15)), 2);
        assert_eq!(*v.at(SimTime::from_secs(25)), 3);
        assert_eq!(*v.latest(), 3);
        assert_eq!(v.modified_at(), SimTime::from_secs(20));
    }

    #[test]
    fn same_instant_write_replaces() {
        let mut v = Versioned::new(SimTime::from_secs(1), "a");
        v.set(SimTime::from_secs(1), "b");
        assert_eq!(*v.latest(), "b");
        assert_eq!(*v.at(SimTime::from_secs(1)), "b");
    }

    #[test]
    fn history_is_bounded() {
        let mut v = Versioned::new(SimTime::ZERO, 0);
        for i in 1..100u64 {
            v.set(SimTime::from_secs(i), i);
        }
        assert_eq!(*v.latest(), 99);
        // A read far in the past resolves to the oldest retained version.
        assert_eq!(*v.at(SimTime::ZERO), 92);
    }

    #[test]
    fn latest_mut_edits_in_place() {
        let mut v = Versioned::new(SimTime::ZERO, vec![1]);
        v.latest_mut().push(2);
        assert_eq!(*v.latest(), vec![1, 2]);
        assert_eq!(v.modified_at(), SimTime::ZERO);
    }
}
