//! Behavioural tests of the cloud engine: reconciliation, fault injection,
//! eventual consistency, throttling and limits.

use pod_cloud::{ApiError, AsgUpdate, Cloud, CloudConfig, InstanceState, LaunchConfigUpdate};
use pod_sim::{Clock, LatencyModel, SimDuration, SimRng};

struct Env {
    cloud: Cloud,
    asg: pod_cloud::AsgName,
    lc: pod_cloud::LaunchConfigName,
    elb: pod_cloud::ElbName,
    ami_v1: pod_cloud::AmiId,
    kp: pod_cloud::KeyPairName,
    sg: pod_cloud::SecurityGroupId,
}

fn env_with(config: CloudConfig, desired: u32) -> Env {
    let cloud = Cloud::new(Clock::new(), SimRng::seed_from(7), config);
    let ami_v1 = cloud.admin_create_ami("app", "1.0.0");
    let sg = cloud.admin_create_security_group("web", &[80, 443]);
    let kp = cloud.admin_create_key_pair("prod-key");
    let elb = cloud.admin_create_elb("front");
    let lc = cloud.admin_create_launch_config(
        "lc-v1",
        ami_v1.clone(),
        "m1.small",
        kp.clone(),
        sg.clone(),
    );
    let asg = cloud.admin_create_asg("app-asg", lc.clone(), 1, 30, desired, Some(elb.clone()));
    Env {
        cloud,
        asg,
        lc,
        elb,
        ami_v1,
        kp,
        sg,
    }
}

fn env() -> Env {
    env_with(
        CloudConfig {
            stale_read_prob: 0.0,
            ..CloudConfig::default()
        },
        4,
    )
}

#[test]
fn asg_starts_at_desired_capacity_and_registered() {
    let e = env();
    let g = e.cloud.admin_describe_asg(&e.asg).unwrap();
    assert_eq!(g.instances.len(), 4);
    for i in e.cloud.admin_asg_active_instances(&e.asg) {
        assert_eq!(i.state, InstanceState::InService);
        assert!(i.registered_with_elb);
        assert_eq!(i.version, "1.0.0");
    }
}

#[test]
fn terminated_instance_is_replaced_by_reconciler() {
    let e = env();
    let victim = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
    e.cloud.terminate_instance(&victim, false).unwrap();
    // Wait long enough for terminate + reconcile + boot.
    e.cloud.sleep(SimDuration::from_secs(180));
    let active = e.cloud.admin_asg_active_instances(&e.asg);
    assert_eq!(
        active.len(),
        4,
        "ASG should replace the terminated instance"
    );
    assert!(active.iter().all(|i| i.id != victim));
    let replacement = active
        .iter()
        .find(|i| i.state == InstanceState::InService && i.launched_at > pod_sim::SimTime::ZERO);
    assert!(replacement.is_some());
}

#[test]
fn terminate_with_decrement_shrinks_group() {
    let e = env();
    let victim = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
    e.cloud.terminate_instance(&victim, true).unwrap();
    e.cloud.sleep(SimDuration::from_secs(180));
    assert_eq!(e.cloud.admin_asg_active_instances(&e.asg).len(), 3);
    assert_eq!(
        e.cloud.admin_describe_asg(&e.asg).unwrap().desired_capacity,
        3
    );
}

#[test]
fn scale_out_launches_new_instances() {
    let e = env();
    e.cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(6),
                ..AsgUpdate::default()
            },
        )
        .unwrap();
    e.cloud.sleep(SimDuration::from_secs(180));
    assert_eq!(e.cloud.admin_asg_active_instances(&e.asg).len(), 6);
}

#[test]
fn scale_in_terminates_excess() {
    let e = env();
    e.cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(2),
                ..AsgUpdate::default()
            },
        )
        .unwrap();
    e.cloud.sleep(SimDuration::from_secs(180));
    assert_eq!(e.cloud.admin_asg_active_instances(&e.asg).len(), 2);
}

#[test]
fn desired_outside_bounds_is_rejected() {
    let e = env();
    let err = e
        .cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(99),
                ..AsgUpdate::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, ApiError::Validation(_)));
}

#[test]
fn unavailable_ami_blocks_replacement_with_failed_activity() {
    let e = env();
    e.cloud.admin_set_ami_available(&e.ami_v1, false);
    let victim = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
    let start = e.cloud.clock().now();
    e.cloud.terminate_instance(&victim, false).unwrap();
    e.cloud.sleep(SimDuration::from_secs(120));
    assert_eq!(e.cloud.admin_asg_active_instances(&e.asg).len(), 3);
    let acts = e.cloud.describe_scaling_activities(&e.asg, start).unwrap();
    assert!(acts
        .iter()
        .any(|a| matches!(&a.status, pod_cloud::ActivityStatus::Failed(m) if m.contains("AMI"))));
}

#[test]
fn deleted_key_pair_blocks_launches() {
    let e = env();
    e.cloud.admin_set_key_pair_available(&e.kp, false);
    let start = e.cloud.clock().now();
    e.cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(5),
                ..AsgUpdate::default()
            },
        )
        .unwrap();
    e.cloud.sleep(SimDuration::from_secs(60));
    let acts = e.cloud.describe_scaling_activities(&e.asg, start).unwrap();
    assert!(acts.iter().any(
        |a| matches!(&a.status, pod_cloud::ActivityStatus::Failed(m) if m.contains("key pair"))
    ));
}

#[test]
fn unavailable_sg_blocks_launches() {
    let e = env();
    e.cloud.admin_set_security_group_available(&e.sg, false);
    let start = e.cloud.clock().now();
    e.cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(5),
                ..AsgUpdate::default()
            },
        )
        .unwrap();
    e.cloud.sleep(SimDuration::from_secs(60));
    let acts = e.cloud.describe_scaling_activities(&e.asg, start).unwrap();
    assert!(acts.iter().any(
        |a| matches!(&a.status, pod_cloud::ActivityStatus::Failed(m) if m.contains("security group"))
    ));
}

#[test]
fn unavailable_elb_blocks_registration() {
    let e = env();
    e.cloud.admin_set_elb_available(&e.elb, false);
    let victim = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
    let start = e.cloud.clock().now();
    e.cloud.terminate_instance(&victim, false).unwrap();
    e.cloud.sleep(SimDuration::from_secs(240));
    // Replacement boots but cannot register.
    let active = e.cloud.admin_asg_active_instances(&e.asg);
    assert_eq!(active.len(), 4);
    let unregistered: Vec<_> = active.iter().filter(|i| !i.registered_with_elb).collect();
    assert_eq!(unregistered.len(), 1);
    let acts = e.cloud.describe_scaling_activities(&e.asg, start).unwrap();
    assert!(acts
        .iter()
        .any(|a| a.description.contains("Failed to register")));
    assert!(matches!(
        e.cloud.describe_elb(&e.elb).unwrap_err(),
        ApiError::ServiceUnavailable { .. }
    ));
}

#[test]
fn changed_launch_config_produces_wrong_version_instances() {
    let e = env();
    // Simulate a concurrent team pushing a different AMI (fault type 1).
    let ami_v2 = e.cloud.admin_create_ami("app", "2.0.0-other");
    e.cloud.admin_update_launch_config(
        &e.lc,
        LaunchConfigUpdate {
            ami: Some(ami_v2.clone()),
            ..LaunchConfigUpdate::default()
        },
    );
    let victim = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
    e.cloud.terminate_instance(&victim, false).unwrap();
    e.cloud.sleep(SimDuration::from_secs(180));
    let active = e.cloud.admin_asg_active_instances(&e.asg);
    assert_eq!(active.len(), 4);
    let wrong: Vec<_> = active.iter().filter(|i| i.ami == ami_v2).collect();
    assert_eq!(wrong.len(), 1, "the replacement uses the wrong AMI");
    assert_eq!(wrong[0].version, "2.0.0-other");
}

#[test]
fn instance_limit_blocks_launches_and_is_reported() {
    let e = env();
    e.cloud.admin_set_instance_limit(4); // exactly current usage
    let start = e.cloud.clock().now();
    e.cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(5),
                ..AsgUpdate::default()
            },
        )
        .unwrap();
    e.cloud.sleep(SimDuration::from_secs(60));
    assert_eq!(e.cloud.admin_asg_active_instances(&e.asg).len(), 4);
    let acts = e.cloud.describe_scaling_activities(&e.asg, start).unwrap();
    assert!(acts
        .iter()
        .any(|a| a.description.contains("InstanceLimitExceeded")));
}

#[test]
fn standalone_instances_consume_limit() {
    let e = env();
    let other_ami = e.cloud.admin_create_ami("other-app", "0.9");
    let ids = e.cloud.admin_launch_standalone(10, &other_ami);
    assert_eq!(e.cloud.admin_active_instance_count(), 14);
    e.cloud.admin_release_standalone(&ids);
    assert_eq!(e.cloud.admin_active_instance_count(), 4);
}

#[test]
fn api_calls_consume_virtual_time() {
    let e = env();
    let t0 = e.cloud.clock().now();
    e.cloud.describe_asg(&e.asg).unwrap();
    let dt = e.cloud.clock().now() - t0;
    assert!(dt >= SimDuration::from_millis(70) && dt < SimDuration::from_millis(90));
}

#[test]
fn throttling_kicks_in_under_burst() {
    let config = CloudConfig {
        stale_read_prob: 0.0,
        throttle_capacity: 5.0,
        throttle_refill_per_sec: 0.001,
        api_latency: LatencyModel::fixed_millis(1),
        ..CloudConfig::default()
    };
    let e = env_with(config, 2);
    let mut throttled = 0;
    for _ in 0..20 {
        if matches!(e.cloud.describe_asg(&e.asg), Err(ApiError::Throttling)) {
            throttled += 1;
        }
    }
    assert!(
        throttled >= 10,
        "expected heavy throttling, got {throttled}"
    );
}

#[test]
fn stale_reads_can_observe_old_state() {
    let config = CloudConfig {
        stale_read_prob: 1.0,
        consistency_lag: LatencyModel::Fixed(SimDuration::from_secs(3600)),
        ..CloudConfig::default()
    };
    let e = env_with(config, 2);
    // Write a new desired capacity; a guaranteed-stale read still sees 2.
    e.cloud
        .update_asg(
            &e.asg,
            AsgUpdate {
                desired_capacity: Some(3),
                ..AsgUpdate::default()
            },
        )
        .unwrap();
    let seen = e.cloud.describe_asg(&e.asg).unwrap().desired_capacity;
    assert_eq!(seen, 2, "stale read must observe the pre-write value");
    // Authoritative state has the write.
    assert_eq!(
        e.cloud.admin_describe_asg(&e.asg).unwrap().desired_capacity,
        3
    );
}

#[test]
fn describe_missing_resources_errors() {
    let e = env();
    assert!(matches!(
        e.cloud
            .describe_instance(&pod_cloud::InstanceId::new("i-nope")),
        Err(ApiError::NotFound {
            kind: "instance",
            ..
        })
    ));
    assert!(matches!(
        e.cloud.describe_ami(&pod_cloud::AmiId::new("ami-nope")),
        Err(ApiError::NotFound { .. })
    ));
}

#[test]
fn deregister_and_register_elb_round_trip() {
    let e = env();
    let id = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
    e.cloud.deregister_from_elb(&e.elb, &id).unwrap();
    assert!(
        !e.cloud
            .admin_describe_instance(&id)
            .unwrap()
            .registered_with_elb
    );
    e.cloud.register_with_elb(&e.elb, &id).unwrap();
    assert!(
        e.cloud
            .admin_describe_instance(&id)
            .unwrap()
            .registered_with_elb
    );
}

#[test]
fn create_launch_config_validates_ami() {
    let e = env();
    let err = e
        .cloud
        .create_launch_config(
            "lc-bad",
            pod_cloud::AmiId::new("ami-missing"),
            "m1.small",
            e.kp.clone(),
            e.sg.clone(),
        )
        .unwrap_err();
    assert!(matches!(err, ApiError::NotFound { kind: "ami", .. }));
    // And duplicate names are rejected.
    let err = e
        .cloud
        .create_launch_config(
            "lc-v1",
            e.ami_v1.clone(),
            "m1.small",
            e.kp.clone(),
            e.sg.clone(),
        )
        .unwrap_err();
    assert!(matches!(err, ApiError::Validation(_)));
}

#[test]
fn elb_health_reports_registered_instances() {
    let e = env();
    let health = e.cloud.describe_elb_health(&e.elb).unwrap();
    assert_eq!(health.len(), 4);
    assert!(health.iter().all(|(_, healthy)| *healthy));
    // A terminating instance that is still registered shows unhealthy.
    let victim = health[0].0.clone();
    e.cloud.admin_terminate_instance(&victim);
    let health = e.cloud.describe_elb_health(&e.elb).unwrap();
    let entry = health.iter().find(|(id, _)| *id == victim).unwrap();
    assert!(!entry.1, "terminating instance is unhealthy");
    // Once the ELB is down, the monitor errors like any other caller.
    e.cloud.admin_set_elb_available(&e.elb, false);
    assert!(matches!(
        e.cloud.describe_elb_health(&e.elb),
        Err(ApiError::ServiceUnavailable { .. })
    ));
}

#[test]
fn runs_are_deterministic_under_a_seed() {
    let run = || {
        let e = env();
        let victim = e.cloud.admin_describe_asg(&e.asg).unwrap().instances[0].clone();
        e.cloud.terminate_instance(&victim, false).unwrap();
        e.cloud.sleep(SimDuration::from_secs(200));
        let mut ids: Vec<String> = e
            .cloud
            .admin_asg_active_instances(&e.asg)
            .iter()
            .map(|i| i.id.to_string())
            .collect();
        ids.sort();
        (ids, e.cloud.clock().now())
    };
    assert_eq!(run(), run());
}
