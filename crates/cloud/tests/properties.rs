//! Property-based invariants of the cloud simulator.

use pod_cloud::{AsgUpdate, Cloud, CloudConfig, InstanceState};
use pod_sim::{Clock, SimDuration, SimRng};
use proptest::prelude::*;

fn cluster(seed: u64, desired: u32, limit: usize) -> (Cloud, pod_cloud::AsgName) {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig {
            stale_read_prob: 0.0,
            instance_limit: limit,
            ..CloudConfig::default()
        },
    );
    let ami = cloud.admin_create_ami("app", "1.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("kp");
    let elb = cloud.admin_create_elb("front");
    let lc = cloud.admin_create_launch_config("lc", ami, "m1.small", kp, sg);
    let asg = cloud.admin_create_asg("g", lc, 1, 25, desired, Some(elb));
    (cloud, asg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reconciler always converges to the desired capacity (within the
    /// account limit), from any sequence of desired-capacity changes.
    #[test]
    fn asg_converges_to_desired(
        seed in 1u64..1000,
        changes in prop::collection::vec(1u32..10, 1..5),
    ) {
        let (cloud, asg) = cluster(seed, 4, 40);
        let mut last = 4;
        for desired in changes {
            let _ = cloud.update_asg(&asg, AsgUpdate {
                desired_capacity: Some(desired),
                ..AsgUpdate::default()
            });
            if cloud.admin_describe_asg(&asg).unwrap().desired_capacity == desired {
                last = desired;
            }
            cloud.sleep(SimDuration::from_secs(30));
        }
        // Give the engine time to settle fully.
        cloud.sleep(SimDuration::from_secs(300));
        let active = cloud.admin_asg_active_instances(&asg).len();
        prop_assert_eq!(active as u32, last);
        // Everything active is InService by now.
        for i in cloud.admin_asg_active_instances(&asg) {
            prop_assert_eq!(i.state, InstanceState::InService);
        }
    }

    /// The account instance limit is never exceeded, no matter how high
    /// desired capacity is pushed.
    #[test]
    fn instance_limit_is_never_exceeded(seed in 1u64..500, desired in 5u32..25) {
        let (cloud, asg) = cluster(seed, 4, 8);
        let _ = cloud.update_asg(&asg, AsgUpdate {
            desired_capacity: Some(desired),
            ..AsgUpdate::default()
        });
        for _ in 0..20 {
            cloud.sleep(SimDuration::from_secs(20));
            prop_assert!(cloud.admin_active_instance_count() <= 8);
        }
    }

    /// Terminated instances never come back, and membership shrinks
    /// accordingly when desired is decremented.
    #[test]
    fn terminated_instances_stay_terminated(seed in 1u64..500) {
        let (cloud, asg) = cluster(seed, 4, 40);
        let victim = cloud.admin_describe_asg(&asg).unwrap().instances[0].clone();
        cloud.terminate_instance(&victim, true).unwrap();
        for _ in 0..10 {
            cloud.sleep(SimDuration::from_secs(30));
            let state = cloud.admin_describe_instance(&victim).unwrap().state;
            prop_assert!(
                matches!(state, InstanceState::Terminating | InstanceState::Terminated)
            );
        }
        prop_assert!(!cloud
            .admin_describe_asg(&asg)
            .unwrap()
            .instances
            .contains(&victim));
    }

    /// ELB registration is consistent with membership: every in-service,
    /// registered member of a healthy ELB shows up in its registered set.
    #[test]
    fn elb_registration_is_consistent(seed in 1u64..500) {
        let (cloud, asg) = cluster(seed, 4, 40);
        let victim = cloud.admin_describe_asg(&asg).unwrap().instances[0].clone();
        cloud.terminate_instance(&victim, false).unwrap();
        cloud.sleep(SimDuration::from_secs(300));
        let elb = cloud.describe_elb(&pod_cloud::ElbName::new("front")).unwrap();
        for i in cloud.admin_asg_active_instances(&asg) {
            if i.state == InstanceState::InService && i.registered_with_elb {
                prop_assert!(elb.registered.contains(&i.id), "{} missing from ELB", i.id);
            }
        }
        prop_assert!(!elb.registered.contains(&victim));
    }

    /// Stale reads only ever return *past* states: a guaranteed-stale read
    /// of a monotonically increasing value never exceeds the true value.
    #[test]
    fn stale_reads_are_from_the_past(seed in 1u64..500, steps in 1usize..6) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(seed),
            CloudConfig {
                stale_read_prob: 0.5,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "1.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("kp");
        let lc = cloud.admin_create_launch_config("lc", ami, "m1.small", kp, sg);
        let asg = cloud.admin_create_asg("g", lc, 1, 30, 2, None);
        // Desired capacity only ever increases in this scenario.
        for step in 0..steps {
            let desired = 3 + step as u32;
            cloud.update_asg(&asg, AsgUpdate {
                desired_capacity: Some(desired),
                ..AsgUpdate::default()
            }).unwrap();
            let seen = cloud.describe_asg(&asg).unwrap().desired_capacity;
            prop_assert!(seen <= desired, "read {seen} > true {desired}");
            prop_assert!(seen >= 2, "read {seen} below any historical value");
            cloud.sleep(SimDuration::from_secs(5));
        }
    }
}
