//! Token-replay fitness: to which degree do a log and a model fit?
//!
//! Implements the classic fitness formula from van der Aalst's token replay:
//! `f = ½(1 − missing/consumed) + ½(1 − remaining/produced)`, replayed with
//! forced firing so non-conforming traces still yield a score. Process
//! discovery uses this to evaluate mined models against held-out traces.

use crate::model::ProcessModel;
use crate::petri::PetriNet;

/// Aggregate token counts from replaying a set of traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayCounts {
    /// Tokens produced (including initial tokens).
    pub produced: usize,
    /// Tokens consumed (including final consumption).
    pub consumed: usize,
    /// Tokens that had to be created artificially.
    pub missing: usize,
    /// Tokens left over at the end of each trace.
    pub remaining: usize,
}

impl ReplayCounts {
    /// The fitness value in `[0, 1]`.
    pub fn fitness(&self) -> f64 {
        let m = self.missing as f64;
        let c = self.consumed.max(1) as f64;
        let r = self.remaining as f64;
        let p = self.produced.max(1) as f64;
        0.5 * (1.0 - m / c) + 0.5 * (1.0 - r / p)
    }
}

/// Replays `traces` (each a sequence of activity names) against `model` and
/// returns the aggregate token counts.
///
/// Events whose activity does not exist in the model count one missing and
/// one consumed token each, so "garbage" traces are penalised rather than
/// ignored.
///
/// # Examples
///
/// ```
/// use pod_process::{replay_fitness, ProcessModelBuilder};
///
/// let mut b = ProcessModelBuilder::new("m");
/// let s = b.start();
/// let a = b.task("a");
/// let t = b.task("b");
/// let e = b.end();
/// b.flow(s, a);
/// b.flow(a, t);
/// b.flow(t, e);
/// let model = b.build().unwrap();
///
/// let perfect = replay_fitness(&model, &[vec!["a".into(), "b".into()]]);
/// assert_eq!(perfect.fitness(), 1.0);
///
/// let broken = replay_fitness(&model, &[vec!["b".into()]]);
/// assert!(broken.fitness() < 1.0);
/// ```
pub fn replay_fitness(model: &ProcessModel, traces: &[Vec<String>]) -> ReplayCounts {
    let net = PetriNet::compile(model);
    let mut counts = ReplayCounts::default();
    for trace in traces {
        let mut marking = net.initial_marking();
        // Initial tokens count as produced; they will be consumed by the
        // trace or counted as remaining.
        counts.produced += net.remaining_tokens(&marking);
        for activity in trace {
            match net.replay_forced(&marking, activity) {
                Some((next, missing)) => {
                    counts.missing += missing;
                    // Each labelled firing consumes one token and produces
                    // the transition's outputs; approximate per-event counts
                    // from the marking delta plus one consume/produce pair.
                    let before = net.remaining_tokens(&marking);
                    let after = net.remaining_tokens(&next);
                    counts.consumed += 1;
                    counts.produced += (after + 1).saturating_sub(before);
                    marking = next;
                }
                None => {
                    // Unknown activity: fully non-fitting event.
                    counts.missing += 1;
                    counts.consumed += 1;
                }
            }
        }
        if net.is_complete(&marking) {
            // Completion consumes the end token cleanly.
            counts.consumed += net.remaining_tokens(&marking).min(1);
        } else {
            counts.remaining += net.remaining_tokens(&marking);
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProcessModelBuilder;

    fn model() -> ProcessModel {
        let mut b = ProcessModelBuilder::new("m");
        let s = b.start();
        let a = b.task("a");
        let t = b.task("b");
        let c = b.task("c");
        let e = b.end();
        b.flow(s, a);
        b.flow(a, t);
        b.flow(t, c);
        b.flow(c, e);
        b.build().unwrap()
    }

    fn trace(acts: &[&str]) -> Vec<String> {
        acts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_traces_have_fitness_one() {
        let traces = vec![trace(&["a", "b", "c"]); 5];
        let counts = replay_fitness(&model(), &traces);
        assert_eq!(counts.missing, 0);
        assert_eq!(counts.remaining, 0);
        assert!((counts.fitness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skipping_reduces_fitness() {
        let full = replay_fitness(&model(), &[trace(&["a", "b", "c"])]).fitness();
        let skip = replay_fitness(&model(), &[trace(&["a", "c"])]).fitness();
        assert!(skip < full);
        assert!(skip > 0.0);
    }

    #[test]
    fn unknown_activities_are_penalised() {
        let counts = replay_fitness(&model(), &[trace(&["a", "zzz", "b", "c"])]);
        assert!(counts.missing >= 1);
        assert!(counts.fitness() < 1.0);
    }

    #[test]
    fn incomplete_trace_leaves_remaining_tokens() {
        let counts = replay_fitness(&model(), &[trace(&["a", "b"])]);
        assert!(counts.remaining >= 1);
        assert!(counts.fitness() < 1.0);
    }

    #[test]
    fn more_broken_traces_score_lower() {
        let slightly = replay_fitness(&model(), &[trace(&["a", "c"])]).fitness();
        let badly = replay_fitness(&model(), &[trace(&["c", "a", "zzz"])]).fitness();
        assert!(badly < slightly);
    }

    #[test]
    fn empty_trace_set_is_neutral() {
        let counts = replay_fitness(&model(), &[]);
        assert_eq!(counts, ReplayCounts::default());
    }
}
