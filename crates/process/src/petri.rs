//! Compilation of a BPMN-subset model to a Petri net.
//!
//! The paper's conformance checking adapts the token-replay technique of
//! van der Aalst (Process Mining, ch. 7.2) from Petri nets to BPMN
//! semantics. We do the same by compiling the BPMN model to an equivalent
//! labelled Petri net: every sequence flow becomes a place; tasks become
//! labelled transitions; gateways and events become silent transitions.

use std::collections::{HashSet, VecDeque};

use crate::model::{GatewayKind, NodeKind, ProcessModel};

/// A marking: token count per place.
pub type Marking = Vec<u8>;

/// One Petri-net transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Activity name for task transitions; `None` for silent ones.
    pub label: Option<String>,
    /// Places a token is consumed from.
    pub consume: Vec<usize>,
    /// Places a token is produced on.
    pub produce: Vec<usize>,
}

/// Bound on the number of distinct markings explored when saturating silent
/// transitions; generous for operations processes (which have few gateways).
const CLOSURE_BOUND: usize = 4096;

/// A labelled Petri net compiled from a [`ProcessModel`].
///
/// # Examples
///
/// ```
/// use pod_process::{PetriNet, ProcessModelBuilder};
///
/// let mut b = ProcessModelBuilder::new("m");
/// let s = b.start();
/// let a = b.task("a");
/// let e = b.end();
/// b.flow(s, a);
/// b.flow(a, e);
/// let net = PetriNet::compile(&b.build().unwrap());
///
/// let m0 = net.initial_marking();
/// assert_eq!(net.enabled_labels(&m0), vec!["a".to_string()]);
/// let m1 = net.replay(&m0, "a").unwrap();
/// assert!(net.is_complete(&m1));
/// ```
#[derive(Debug, Clone)]
pub struct PetriNet {
    n_places: usize,
    transitions: Vec<Transition>,
    initial: Marking,
    done_place: usize,
}

impl PetriNet {
    /// Compiles a validated model.
    pub fn compile(model: &ProcessModel) -> PetriNet {
        // One place per sequence flow, plus a final "done" place.
        let n_flows = model.flows().len();
        let done_place = n_flows;
        let n_places = n_flows + 1;
        let mut transitions = Vec::new();
        let mut initial = vec![0u8; n_places];

        for node in model.nodes() {
            let inc: Vec<usize> = model.incoming(node.id).iter().map(|f| f.0).collect();
            let out: Vec<usize> = model.outgoing(node.id).iter().map(|f| f.0).collect();
            match &node.kind {
                NodeKind::Start => {
                    // The start event marks each outgoing flow initially.
                    for o in &out {
                        initial[*o] = 1;
                    }
                }
                NodeKind::End => {
                    // One silent transition per incoming flow into "done".
                    for i in &inc {
                        transitions.push(Transition {
                            label: None,
                            consume: vec![*i],
                            produce: vec![done_place],
                        });
                    }
                }
                NodeKind::Task(name) => {
                    // BPMN: multiple incoming = implicit XOR-merge (fire on
                    // any one); multiple outgoing = implicit AND-split.
                    for i in &inc {
                        transitions.push(Transition {
                            label: Some(name.clone()),
                            consume: vec![*i],
                            produce: out.clone(),
                        });
                    }
                }
                NodeKind::Gateway(GatewayKind::Exclusive) => {
                    for i in &inc {
                        for o in &out {
                            transitions.push(Transition {
                                label: None,
                                consume: vec![*i],
                                produce: vec![*o],
                            });
                        }
                    }
                }
                NodeKind::Gateway(GatewayKind::Parallel) => {
                    transitions.push(Transition {
                        label: None,
                        consume: inc.clone(),
                        produce: out.clone(),
                    });
                }
            }
        }
        PetriNet {
            n_places,
            transitions,
            initial,
            done_place,
        }
    }

    /// The marking before any activity has executed.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// Number of places (including the synthetic done place).
    pub fn place_count(&self) -> usize {
        self.n_places
    }

    /// The transitions of the net.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Whether `t` is enabled in `m`.
    fn enabled(&self, m: &Marking, t: &Transition) -> bool {
        // A transition consuming the same place twice needs two tokens.
        let mut need = vec![0u8; self.n_places];
        for p in &t.consume {
            need[*p] += 1;
        }
        need.iter().zip(m.iter()).all(|(n, have)| have >= n)
    }

    /// Fires `t` in `m`; caller must have checked enablement.
    fn fire(&self, m: &Marking, t: &Transition) -> Marking {
        let mut next = m.clone();
        for p in &t.consume {
            next[*p] -= 1;
        }
        for p in &t.produce {
            next[*p] = next[*p].saturating_add(1);
        }
        next
    }

    /// All markings reachable from `m` by firing only silent transitions
    /// (including `m` itself), bounded.
    fn silent_closure(&self, m: &Marking) -> Vec<Marking> {
        let mut seen: HashSet<Marking> = HashSet::new();
        let mut queue: VecDeque<Marking> = VecDeque::new();
        seen.insert(m.clone());
        queue.push_back(m.clone());
        let mut result = Vec::new();
        while let Some(cur) = queue.pop_front() {
            result.push(cur.clone());
            if seen.len() >= CLOSURE_BOUND {
                break;
            }
            for t in self.transitions.iter().filter(|t| t.label.is_none()) {
                if self.enabled(&cur, t) {
                    let next = self.fire(&cur, t);
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
        }
        result
    }

    /// Activity labels executable from `m`, allowing silent moves first.
    /// Sorted and deduplicated.
    pub fn enabled_labels(&self, m: &Marking) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for marking in self.silent_closure(m) {
            for t in &self.transitions {
                if let Some(label) = &t.label {
                    if self.enabled(&marking, t) && !labels.contains(label) {
                        labels.push(label.clone());
                    }
                }
            }
        }
        labels.sort();
        labels
    }

    /// Attempts to replay `activity` from `m`: silently saturates gateways
    /// until a transition labelled `activity` is enabled, fires it, and
    /// returns the new marking. Returns `None` when the activity cannot be
    /// executed in the current state (non-conformance).
    pub fn replay(&self, m: &Marking, activity: &str) -> Option<Marking> {
        for marking in self.silent_closure(m) {
            for t in &self.transitions {
                if t.label.as_deref() == Some(activity) && self.enabled(&marking, t) {
                    return Some(self.fire(&marking, t));
                }
            }
        }
        None
    }

    /// Replays `activity` even if it is not enabled, creating the missing
    /// tokens, and reports how many were missing — the forced firing used
    /// for the token-replay *fitness* metric. Returns the new marking and
    /// the missing-token count. `None` if the net has no transition with
    /// that label at all.
    pub fn replay_forced(&self, m: &Marking, activity: &str) -> Option<(Marking, usize)> {
        if let Some(next) = self.replay(m, activity) {
            return Some((next, 0));
        }
        // Pick the variant with the fewest missing tokens from the raw
        // marking (no silent saturation — a deliberate simplification that
        // keeps forced replay deterministic).
        let mut best: Option<(Marking, usize)> = None;
        for t in &self.transitions {
            if t.label.as_deref() != Some(activity) {
                continue;
            }
            let mut missing = 0usize;
            let mut patched = m.clone();
            for p in &t.consume {
                if patched[*p] == 0 {
                    patched[*p] = 1;
                    missing += 1;
                }
            }
            let next = self.fire(&patched, t);
            if best.as_ref().is_none_or(|(_, b)| missing < *b) {
                best = Some((next, missing));
            }
        }
        best
    }

    /// Whether the process instance has reached an end event.
    pub fn is_complete(&self, m: &Marking) -> bool {
        // The done place may not be directly marked yet if only silent
        // moves separate us from the end event.
        self.silent_closure(m)
            .iter()
            .any(|marking| marking[self.done_place] > 0)
    }

    /// Total tokens left on non-done places (used by the fitness metric).
    pub fn remaining_tokens(&self, m: &Marking) -> usize {
        m.iter()
            .enumerate()
            .filter(|(p, _)| *p != self.done_place)
            .map(|(_, c)| *c as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProcessModelBuilder;

    fn loop_model() -> ProcessModel {
        // start -> a -> join -> b -> c -> split -> (back to join | end)
        let mut bld = ProcessModelBuilder::new("loop");
        let s = bld.start();
        let a = bld.task("a");
        let join = bld.exclusive_gateway();
        let b = bld.task("b");
        let c = bld.task("c");
        let split = bld.exclusive_gateway();
        let e = bld.end();
        bld.flow(s, a);
        bld.flow(a, join);
        bld.flow(join, b);
        bld.flow(b, c);
        bld.flow(c, split);
        bld.flow(split, join);
        bld.flow(split, e);
        bld.build().unwrap()
    }

    use crate::model::ProcessModel;

    #[test]
    fn replays_loop_iterations() {
        let net = PetriNet::compile(&loop_model());
        let mut m = net.initial_marking();
        m = net.replay(&m, "a").unwrap();
        for _ in 0..3 {
            m = net.replay(&m, "b").unwrap();
            m = net.replay(&m, "c").unwrap();
        }
        assert!(net.is_complete(&m), "split can route to end");
    }

    #[test]
    fn out_of_order_activity_is_rejected() {
        let net = PetriNet::compile(&loop_model());
        let m = net.initial_marking();
        assert!(net.replay(&m, "b").is_none(), "b before a is unfit");
        assert!(net.replay(&m, "c").is_none());
        let m = net.replay(&m, "a").unwrap();
        assert!(net.replay(&m, "c").is_none(), "c before b is unfit");
    }

    #[test]
    fn enabled_labels_follow_the_flow() {
        let net = PetriNet::compile(&loop_model());
        let m = net.initial_marking();
        assert_eq!(net.enabled_labels(&m), vec!["a"]);
        let m = net.replay(&m, "a").unwrap();
        assert_eq!(net.enabled_labels(&m), vec!["b"]);
        let m = net.replay(&m, "b").unwrap();
        assert_eq!(net.enabled_labels(&m), vec!["c"]);
        let m = net.replay(&m, "c").unwrap();
        // After the split we may loop (b) — end is silent.
        assert_eq!(net.enabled_labels(&m), vec!["b"]);
    }

    #[test]
    fn unknown_activity_cannot_be_replayed() {
        let net = PetriNet::compile(&loop_model());
        let m = net.initial_marking();
        assert!(net.replay(&m, "zzz").is_none());
        assert!(net.replay_forced(&m, "zzz").is_none());
    }

    #[test]
    fn forced_replay_counts_missing_tokens() {
        let net = PetriNet::compile(&loop_model());
        let m = net.initial_marking();
        let (m2, missing) = net.replay_forced(&m, "b").unwrap();
        assert_eq!(missing, 1, "b's input place was empty");
        // After the forced fire, c is genuinely enabled.
        assert!(net.replay(&m2, "c").is_some());
    }

    #[test]
    fn parallel_gateway_synchronises() {
        // start -> split(+) -> {x, y} -> join(+) -> end
        let mut b = ProcessModelBuilder::new("par");
        let s = b.start();
        let split = b.parallel_gateway();
        let x = b.task("x");
        let y = b.task("y");
        let join = b.parallel_gateway();
        let e = b.end();
        b.flow(s, split);
        b.flow(split, x);
        b.flow(split, y);
        b.flow(x, join);
        b.flow(y, join);
        b.flow(join, e);
        let net = PetriNet::compile(&b.build().unwrap());
        let m = net.initial_marking();
        // Both x and y enabled after the parallel split.
        assert_eq!(net.enabled_labels(&m), vec!["x", "y"]);
        let m = net.replay(&m, "y").unwrap();
        assert!(!net.is_complete(&m));
        assert_eq!(net.enabled_labels(&m), vec!["x"]);
        let m = net.replay(&m, "x").unwrap();
        assert!(net.is_complete(&m), "join fires silently once both done");
    }

    #[test]
    fn remaining_tokens_counts_non_done_places() {
        let net = PetriNet::compile(&loop_model());
        let m = net.initial_marking();
        assert_eq!(net.remaining_tokens(&m), 1);
    }
}
