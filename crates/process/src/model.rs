//! A BPMN-subset process model.
//!
//! The paper models sporadic operations (Figure 2: rolling upgrade) in BPMN.
//! The subset implemented here covers what operations processes need: start
//! and end events, tasks (activities), and exclusive (XOR) / parallel (AND)
//! gateways, connected by sequence flows. Loops are expressed with XOR
//! gateways, exactly like the upgrade loop in Figure 2.

use std::collections::HashMap;
use std::fmt;

/// Index of a node within its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Index of a sequence flow within its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) usize);

/// The two gateway semantics supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayKind {
    /// Exclusive (XOR): route one token along exactly one branch.
    Exclusive,
    /// Parallel (AND): synchronise all incoming, fork all outgoing.
    Parallel,
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The process start event.
    Start,
    /// A process end event.
    End,
    /// An activity, identified by its (unique) name.
    Task(String),
    /// A gateway.
    Gateway(GatewayKind),
}

/// One node of the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Its kind.
    pub kind: NodeKind,
}

/// A directed sequence flow between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// The flow's id.
    pub id: FlowId,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// A validation problem found by [`ProcessModelBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The model has no start event.
    MissingStart,
    /// The model has no end event.
    MissingEnd,
    /// More than one start event.
    MultipleStarts,
    /// A node is unreachable from the start event.
    Unreachable(String),
    /// Two tasks share a name.
    DuplicateTaskName(String),
    /// A node has no outgoing flow but is not an end event.
    DeadEnd(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingStart => f.write_str("model has no start event"),
            ModelError::MissingEnd => f.write_str("model has no end event"),
            ModelError::MultipleStarts => f.write_str("model has more than one start event"),
            ModelError::Unreachable(n) => write!(f, "node `{n}` is unreachable from start"),
            ModelError::DuplicateTaskName(n) => write!(f, "duplicate task name `{n}`"),
            ModelError::DeadEnd(n) => write!(f, "non-end node `{n}` has no outgoing flow"),
        }
    }
}

impl std::error::Error for ModelError {}

/// An immutable, validated process model. Build one with
/// [`ProcessModelBuilder`].
///
/// # Examples
///
/// ```
/// use pod_process::ProcessModelBuilder;
///
/// // start -> a -> (loop: b -> c -> xor) -> end
/// let mut b = ProcessModelBuilder::new("demo");
/// let start = b.start();
/// let a = b.task("a");
/// let join = b.exclusive_gateway();
/// let t_b = b.task("b");
/// let t_c = b.task("c");
/// let split = b.exclusive_gateway();
/// let end = b.end();
/// b.flow(start, a);
/// b.flow(a, join);
/// b.flow(join, t_b);
/// b.flow(t_b, t_c);
/// b.flow(t_c, split);
/// b.flow(split, join); // loop back
/// b.flow(split, end);
/// let model = b.build().unwrap();
/// assert_eq!(model.task_names(), vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessModel {
    name: String,
    nodes: Vec<Node>,
    flows: Vec<Flow>,
}

impl ProcessModel {
    /// The model's name (process id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All sequence flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// The start node.
    pub fn start(&self) -> NodeId {
        self.nodes
            .iter()
            .find(|n| n.kind == NodeKind::Start)
            .expect("validated model has a start")
            .id
    }

    /// Task names in node order.
    pub fn task_names(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Task(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Finds a task node by name.
    pub fn task(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find_map(|n| match &n.kind {
            NodeKind::Task(t) if t == name => Some(n.id),
            _ => None,
        })
    }

    /// The node for an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Incoming flows of a node.
    pub fn incoming(&self, id: NodeId) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| f.to == id)
            .map(|f| f.id)
            .collect()
    }

    /// Outgoing flows of a node.
    pub fn outgoing(&self, id: NodeId) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| f.from == id)
            .map(|f| f.id)
            .collect()
    }

    /// Renders the model in Graphviz DOT format (tasks as boxes, gateways as
    /// diamonds) — the shape Figure 2 is drawn in.
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}\" {{\n  rankdir=TB;\n", self.name);
        for n in &self.nodes {
            let (shape, label) = match &n.kind {
                NodeKind::Start => ("circle", "start".to_string()),
                NodeKind::End => ("doublecircle", "end".to_string()),
                NodeKind::Task(t) => ("box", t.clone()),
                NodeKind::Gateway(GatewayKind::Exclusive) => ("diamond", "X".to_string()),
                NodeKind::Gateway(GatewayKind::Parallel) => ("diamond", "+".to_string()),
            };
            out.push_str(&format!(
                "  n{} [shape={shape}, label=\"{label}\"];\n",
                n.id.0
            ));
        }
        for f in &self.flows {
            out.push_str(&format!("  n{} -> n{};\n", f.from.0, f.to.0));
        }
        out.push_str("}\n");
        out
    }
}

/// Builder for [`ProcessModel`].
#[derive(Debug, Clone)]
pub struct ProcessModelBuilder {
    name: String,
    nodes: Vec<Node>,
    flows: Vec<Flow>,
}

impl ProcessModelBuilder {
    /// Starts building a model with the given name.
    pub fn new(name: impl Into<String>) -> ProcessModelBuilder {
        ProcessModelBuilder {
            name: name.into(),
            nodes: Vec::new(),
            flows: Vec::new(),
        }
    }

    fn add(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, kind });
        id
    }

    /// Adds the start event.
    pub fn start(&mut self) -> NodeId {
        self.add(NodeKind::Start)
    }

    /// Adds an end event.
    pub fn end(&mut self) -> NodeId {
        self.add(NodeKind::End)
    }

    /// Adds a task (activity).
    pub fn task(&mut self, name: impl Into<String>) -> NodeId {
        self.add(NodeKind::Task(name.into()))
    }

    /// Adds an exclusive (XOR) gateway.
    pub fn exclusive_gateway(&mut self) -> NodeId {
        self.add(NodeKind::Gateway(GatewayKind::Exclusive))
    }

    /// Adds a parallel (AND) gateway.
    pub fn parallel_gateway(&mut self) -> NodeId {
        self.add(NodeKind::Gateway(GatewayKind::Parallel))
    }

    /// Connects two nodes with a sequence flow.
    pub fn flow(&mut self, from: NodeId, to: NodeId) -> FlowId {
        let id = FlowId(self.flows.len());
        self.flows.push(Flow { id, from, to });
        id
    }

    /// Validates and freezes the model.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found: missing/multiple start,
    /// missing end, duplicate task names, unreachable nodes, or dead ends.
    pub fn build(self) -> Result<ProcessModel, ModelError> {
        let starts: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Start)
            .collect();
        if starts.is_empty() {
            return Err(ModelError::MissingStart);
        }
        if starts.len() > 1 {
            return Err(ModelError::MultipleStarts);
        }
        if !self.nodes.iter().any(|n| n.kind == NodeKind::End) {
            return Err(ModelError::MissingEnd);
        }
        let mut names: HashMap<&str, usize> = HashMap::new();
        for n in &self.nodes {
            if let NodeKind::Task(t) = &n.kind {
                *names.entry(t.as_str()).or_default() += 1;
            }
        }
        if let Some((name, _)) = names.iter().find(|(_, c)| **c > 1) {
            return Err(ModelError::DuplicateTaskName(name.to_string()));
        }
        // Reachability from the start event.
        let start = starts[0].id;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start.0] = true;
        while let Some(n) = stack.pop() {
            for f in self.flows.iter().filter(|f| f.from == n) {
                if !seen[f.to.0] {
                    seen[f.to.0] = true;
                    stack.push(f.to);
                }
            }
        }
        for (i, reached) in seen.iter().enumerate() {
            if !reached {
                return Err(ModelError::Unreachable(describe(&self.nodes[i])));
            }
        }
        // Every non-end node needs an outgoing flow.
        for n in &self.nodes {
            if n.kind != NodeKind::End && !self.flows.iter().any(|f| f.from == n.id) {
                return Err(ModelError::DeadEnd(describe(n)));
            }
        }
        Ok(ProcessModel {
            name: self.name,
            nodes: self.nodes,
            flows: self.flows,
        })
    }
}

fn describe(n: &Node) -> String {
    match &n.kind {
        NodeKind::Start => "start".to_string(),
        NodeKind::End => format!("end#{}", n.id.0),
        NodeKind::Task(t) => t.clone(),
        NodeKind::Gateway(_) => format!("gateway#{}", n.id.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> ProcessModel {
        let mut b = ProcessModelBuilder::new("linear");
        let s = b.start();
        let a = b.task("a");
        let t_b = b.task("b");
        let e = b.end();
        b.flow(s, a);
        b.flow(a, t_b);
        b.flow(t_b, e);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_queries_linear_model() {
        let m = linear();
        assert_eq!(m.task_names(), vec!["a", "b"]);
        let a = m.task("a").unwrap();
        assert_eq!(m.incoming(a).len(), 1);
        assert_eq!(m.outgoing(a).len(), 1);
        assert!(m.task("zzz").is_none());
    }

    #[test]
    fn missing_start_is_rejected() {
        let mut b = ProcessModelBuilder::new("x");
        let a = b.task("a");
        let e = b.end();
        b.flow(a, e);
        assert_eq!(b.build().unwrap_err(), ModelError::MissingStart);
    }

    #[test]
    fn missing_end_is_rejected() {
        let mut b = ProcessModelBuilder::new("x");
        let s = b.start();
        let a = b.task("a");
        b.flow(s, a);
        b.flow(a, s); // cycle, no end
        assert_eq!(b.build().unwrap_err(), ModelError::MissingEnd);
    }

    #[test]
    fn duplicate_task_names_are_rejected() {
        let mut b = ProcessModelBuilder::new("x");
        let s = b.start();
        let a1 = b.task("a");
        let a2 = b.task("a");
        let e = b.end();
        b.flow(s, a1);
        b.flow(a1, a2);
        b.flow(a2, e);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::DuplicateTaskName("a".into())
        );
    }

    #[test]
    fn unreachable_node_is_rejected() {
        let mut b = ProcessModelBuilder::new("x");
        let s = b.start();
        let a = b.task("a");
        let orphan = b.task("orphan");
        let e = b.end();
        b.flow(s, a);
        b.flow(a, e);
        b.flow(orphan, e);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::Unreachable("orphan".into())
        );
    }

    #[test]
    fn dead_end_is_rejected() {
        let mut b = ProcessModelBuilder::new("x");
        let s = b.start();
        let a = b.task("a");
        let e = b.end();
        b.flow(s, a);
        b.flow(s, e);
        // `a` has no outgoing flow.
        assert_eq!(b.build().unwrap_err(), ModelError::DeadEnd("a".into()));
    }

    #[test]
    fn dot_output_contains_all_tasks() {
        let dot = linear().to_dot();
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("->"));
    }
}
