//! The conformance-checking service (Section III.B.2 of the paper).
//!
//! The service receives, per log line, the process model id, the trace id
//! (process-instance id) and the activity the line was classified as. It
//! replays the activity against the model by token replay and classifies the
//! line as *fit*, *unfit*, *error* or *unclassified*. Any classification
//! other than *fit* is a detected error and carries the error context needed
//! by diagnosis: the last valid activity, what was expected instead, and the
//! hypothesised skipped activities.

use std::collections::HashMap;

use pod_obs::{Counter, Obs};

use crate::model::ProcessModel;
use crate::petri::{Marking, PetriNet};

/// How a checked log line relates to the process model — the paper's four
/// conformance tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conformance {
    /// The activity was expected in the current state.
    Fit,
    /// The activity belongs to the model but executed out of turn.
    Unfit {
        /// Activities the model expected instead.
        expected: Vec<String>,
        /// Activities that would have to be skipped for this one to occur,
        /// when a forward-skip explains the observation.
        skipped: Vec<String>,
    },
    /// The line matched a known-error pattern.
    Error,
    /// The line could not be classified at all.
    Unclassified,
}

impl Conformance {
    /// Whether this classification is a detected error (everything but fit).
    pub fn is_error(&self) -> bool {
        !matches!(self, Conformance::Fit)
    }

    /// The tag string used in the annotated logs, e.g. `conformance:fit`.
    pub fn tag(&self) -> &'static str {
        match self {
            Conformance::Fit => "conformance:fit",
            Conformance::Unfit { .. } => "conformance:unfit",
            Conformance::Error => "conformance:error",
            Conformance::Unclassified => "conformance:unclassified",
        }
    }
}

/// The state of one process instance (trace) being checked.
#[derive(Debug, Clone)]
struct InstanceState {
    marking: Marking,
    history: Vec<String>,
    nonconforming_events: usize,
}

/// Error context derived when conformance detects a problem — "the last
/// valid state of the process before the error, the last activity that
/// executed successfully, and the hypothesized skipped/undone activities."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorContext {
    /// The trace the error occurred in.
    pub trace_id: String,
    /// Last activity that replayed successfully, if any.
    pub last_valid_activity: Option<String>,
    /// Activities the model expected at the point of error.
    pub expected: Vec<String>,
    /// The offending activity (when known to the model).
    pub activity: Option<String>,
}

/// The conformance-checking service: one [`ProcessModel`], many traces.
///
/// # Examples
///
/// ```
/// use pod_process::{Conformance, ConformanceChecker, ProcessModelBuilder};
///
/// let mut b = ProcessModelBuilder::new("demo");
/// let s = b.start();
/// let a = b.task("a");
/// let t = b.task("b");
/// let e = b.end();
/// b.flow(s, a);
/// b.flow(a, t);
/// b.flow(t, e);
/// let mut checker = ConformanceChecker::new(&b.build().unwrap());
///
/// assert_eq!(checker.replay("run-1", "a"), Conformance::Fit);
/// assert!(matches!(checker.replay("run-1", "a"), Conformance::Unfit { .. }));
/// assert_eq!(checker.replay("run-1", "b"), Conformance::Fit);
/// assert!(checker.is_complete("run-1"));
/// ```
#[derive(Debug)]
pub struct ConformanceChecker {
    net: PetriNet,
    model_name: String,
    instances: HashMap<String, InstanceState>,
    metrics: ConformanceMetrics,
    obs: Obs,
    last_event: Option<pod_obs::EventId>,
}

/// Cached classification counters. The replay hot path must stay well
/// under the paper's ≈10 ms envelope, so instrumentation here is counter
/// bumps and one causal-event emission only — replay *latency* is recorded
/// by the engine from virtual time, off this path.
#[derive(Debug, Clone)]
struct ConformanceMetrics {
    replays: Counter,
    fit: Counter,
    unfit: Counter,
    error: Counter,
    unclassified: Counter,
}

impl ConformanceMetrics {
    fn new(obs: &Obs) -> ConformanceMetrics {
        ConformanceMetrics {
            replays: obs.counter("conformance.replays"),
            fit: obs.counter("conformance.fit"),
            unfit: obs.counter("conformance.unfit"),
            error: obs.counter("conformance.error"),
            unclassified: obs.counter("conformance.unclassified"),
        }
    }
}

impl ConformanceChecker {
    /// Creates a checker for one process model with a detached
    /// observability context (see [`ConformanceChecker::with_obs`]).
    pub fn new(model: &ProcessModel) -> ConformanceChecker {
        let obs = Obs::detached();
        ConformanceChecker {
            net: PetriNet::compile(model),
            model_name: model.name().to_string(),
            instances: HashMap::new(),
            metrics: ConformanceMetrics::new(&obs),
            obs,
            last_event: None,
        }
    }

    /// Rebinds the checker's classification counters and causal events to a
    /// shared observability context (the engine passes the cloud-wide one).
    pub fn with_obs(mut self, obs: &Obs) -> ConformanceChecker {
        self.metrics = ConformanceMetrics::new(obs);
        self.obs = obs.clone();
        self
    }

    /// Emits the `conformance.verdict` causal event for a classification
    /// just made, remembering its id for [`last_verdict_event`].
    ///
    /// [`last_verdict_event`]: ConformanceChecker::last_verdict_event
    fn emit_verdict(&mut self, activity: Option<&str>, verdict: &Conformance) {
        // Per-line hot path: check the mode before building any strings,
        // and land the event in a single lock via the batched emitter. No
        // `trace` attribute: the event ring is per-trace already (see
        // `EventLog::begin_trace`), so repeating the id per verdict only
        // burned an allocation per line.
        if !self.obs.mode().records_traces() {
            self.last_event = None;
            return;
        }
        // Outcome-conditional tracing: fit verdicts — the overwhelming
        // majority at fleet scale — are already counted (`conformance.fit`
        // in the replay path), so they are not traced. Detections only
        // ever parent on non-fit verdicts (`Conformance::is_error`), so
        // every incident chain stays complete.
        if !verdict.is_error() {
            self.last_event = None;
            return;
        }
        let mut attrs = Vec::with_capacity(2);
        if let Some(activity) = activity {
            attrs.push(("activity", activity.to_string()));
        }
        if let Conformance::Unfit { expected, skipped } = verdict {
            attrs.push(("expected", expected.join("|")));
            if !skipped.is_empty() {
                attrs.push(("skipped", skipped.join("|")));
            }
        }
        self.last_event = self
            .obs
            .event_with("conformance.verdict", verdict.tag(), attrs);
    }

    /// The causal event of the most recent verdict (replay or recorded
    /// error), so the engine can parent its detection on it.
    pub fn last_verdict_event(&self) -> Option<pod_obs::EventId> {
        self.last_event
    }

    /// The model this checker validates against.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    fn instance(&mut self, trace_id: &str) -> &mut InstanceState {
        let net = &self.net;
        self.instances
            .entry(trace_id.to_string())
            .or_insert_with(|| InstanceState {
                marking: net.initial_marking(),
                history: Vec::new(),
                nonconforming_events: 0,
            })
    }

    /// Replays one classified activity for a trace, creating the trace on
    /// first contact. Returns the conformance verdict; on [`Conformance::Unfit`]
    /// the instance state is left unchanged (the paper does not advance the
    /// token replay on unfit events).
    pub fn replay(&mut self, trace_id: &str, activity: &str) -> Conformance {
        let net = self.net.clone();
        self.metrics.replays.incr();
        let inst = self.instance(trace_id);
        let verdict = match net.replay(&inst.marking, activity) {
            Some(next) => {
                inst.marking = next;
                inst.history.push(activity.to_string());
                self.metrics.fit.incr();
                Conformance::Fit
            }
            None => {
                inst.nonconforming_events += 1;
                let expected = net.enabled_labels(&inst.marking);
                let skipped = Self::hypothesise_skips(&net, &inst.marking, activity, &expected);
                self.metrics.unfit.incr();
                Conformance::Unfit { expected, skipped }
            }
        };
        self.emit_verdict(Some(activity), &verdict);
        verdict
    }

    /// Finds the shortest forward path of other activities whose execution
    /// would enable `activity` — the hypothesised skipped activities.
    /// Searches up to three levels deep.
    fn hypothesise_skips(
        net: &PetriNet,
        marking: &Marking,
        activity: &str,
        expected: &[String],
    ) -> Vec<String> {
        // Breadth-first over sequences of expected activities.
        let mut frontier: Vec<(Marking, Vec<String>)> = vec![(marking.clone(), Vec::new())];
        for _depth in 0..3 {
            let mut next_frontier = Vec::new();
            for (m, path) in &frontier {
                let labels = if path.is_empty() {
                    expected.to_vec()
                } else {
                    net.enabled_labels(m)
                };
                for label in labels {
                    if let Some(m2) = net.replay(m, &label) {
                        let mut p2 = path.clone();
                        p2.push(label.clone());
                        if net.replay(&m2, activity).is_some() {
                            return p2;
                        }
                        next_frontier.push((m2, p2));
                    }
                }
            }
            if next_frontier.is_empty() {
                break;
            }
            frontier = next_frontier;
        }
        Vec::new()
    }

    /// Marks a non-replay error (known-error line or unclassified line)
    /// against the trace's counters and returns the matching verdict.
    pub fn record_error(&mut self, trace_id: &str, known_error: bool) -> Conformance {
        self.metrics.replays.incr();
        let inst = self.instance(trace_id);
        inst.nonconforming_events += 1;
        let verdict = if known_error {
            self.metrics.error.incr();
            Conformance::Error
        } else {
            self.metrics.unclassified.incr();
            Conformance::Unclassified
        };
        self.emit_verdict(None, &verdict);
        verdict
    }

    /// Activities currently expected for a trace.
    pub fn expected(&mut self, trace_id: &str) -> Vec<String> {
        let net = self.net.clone();
        let inst = self.instance(trace_id);
        net.enabled_labels(&inst.marking)
    }

    /// The last successfully replayed activity of a trace.
    pub fn last_activity(&self, trace_id: &str) -> Option<&str> {
        self.instances
            .get(trace_id)?
            .history
            .last()
            .map(String::as_str)
    }

    /// Full replay history of a trace.
    pub fn history(&self, trace_id: &str) -> &[String] {
        self.instances
            .get(trace_id)
            .map(|i| i.history.as_slice())
            .unwrap_or(&[])
    }

    /// Whether a trace has reached the end event.
    pub fn is_complete(&self, trace_id: &str) -> bool {
        self.instances
            .get(trace_id)
            .is_some_and(|i| self.net.is_complete(&i.marking))
    }

    /// Number of non-conforming events recorded for a trace.
    pub fn nonconforming_events(&self, trace_id: &str) -> usize {
        self.instances
            .get(trace_id)
            .map(|i| i.nonconforming_events)
            .unwrap_or(0)
    }

    /// Builds the error context for a detected problem in `trace_id`.
    pub fn error_context(&mut self, trace_id: &str, activity: Option<&str>) -> ErrorContext {
        let expected = self.expected(trace_id);
        ErrorContext {
            trace_id: trace_id.to_string(),
            last_valid_activity: self.last_activity(trace_id).map(str::to_string),
            expected,
            activity: activity.map(str::to_string),
        }
    }

    /// Discards a trace's state.
    pub fn reset(&mut self, trace_id: &str) {
        self.instances.remove(trace_id);
    }

    /// Number of traces currently tracked.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProcessModelBuilder;

    fn checker() -> ConformanceChecker {
        // start -> a -> join -> b -> c -> split -> (join | end)
        let mut bld = ProcessModelBuilder::new("loop");
        let s = bld.start();
        let a = bld.task("a");
        let join = bld.exclusive_gateway();
        let b = bld.task("b");
        let c = bld.task("c");
        let split = bld.exclusive_gateway();
        let e = bld.end();
        bld.flow(s, a);
        bld.flow(a, join);
        bld.flow(join, b);
        bld.flow(b, c);
        bld.flow(c, split);
        bld.flow(split, join);
        bld.flow(split, e);
        ConformanceChecker::new(&bld.build().unwrap())
    }

    #[test]
    fn fit_sequence_completes() {
        let mut ch = checker();
        for act in ["a", "b", "c", "b", "c"] {
            assert_eq!(ch.replay("t", act), Conformance::Fit);
        }
        assert!(ch.is_complete("t"));
        assert_eq!(ch.history("t"), ["a", "b", "c", "b", "c"]);
        assert_eq!(ch.nonconforming_events("t"), 0);
    }

    #[test]
    fn skipped_activity_is_unfit_with_context() {
        let mut ch = checker();
        assert_eq!(ch.replay("t", "a"), Conformance::Fit);
        // Skipping b: c is unfit, expected=[b], skipped=[b].
        match ch.replay("t", "c") {
            Conformance::Unfit { expected, skipped } => {
                assert_eq!(expected, vec!["b"]);
                assert_eq!(skipped, vec!["b"]);
            }
            other => panic!("expected unfit, got {other:?}"),
        }
        // State unchanged: b still replays fine.
        assert_eq!(ch.replay("t", "b"), Conformance::Fit);
    }

    #[test]
    fn traces_are_independent() {
        let mut ch = checker();
        assert_eq!(ch.replay("t1", "a"), Conformance::Fit);
        // t2 starts fresh: "b" first is unfit there.
        assert!(ch.replay("t2", "b").is_error());
        assert_eq!(ch.instance_count(), 2);
        ch.reset("t2");
        assert_eq!(ch.instance_count(), 1);
    }

    #[test]
    fn error_context_reports_last_valid_state() {
        let mut ch = checker();
        ch.replay("t", "a");
        ch.replay("t", "b");
        let ctx = ch.error_context("t", Some("a"));
        assert_eq!(ctx.last_valid_activity.as_deref(), Some("b"));
        assert_eq!(ctx.expected, vec!["c"]);
        assert_eq!(ctx.activity.as_deref(), Some("a"));
    }

    #[test]
    fn record_error_classifications() {
        let mut ch = checker();
        assert_eq!(ch.record_error("t", true), Conformance::Error);
        assert_eq!(ch.record_error("t", false), Conformance::Unclassified);
        assert_eq!(ch.nonconforming_events("t"), 2);
    }

    #[test]
    fn verdicts_emit_causal_events_parented_to_the_ambient_cause() {
        let obs = Obs::detached();
        obs.begin_run("t");
        let mut ch = checker().with_obs(&obs);
        let line = obs.event("log.line", "asgard.log");
        let _scope = obs.events().scope(Some(line.id()));
        // Outcome-conditional tracing: a fit replay is counted, not traced.
        ch.replay("t", "a");
        assert_eq!(ch.last_verdict_event(), None);
        assert_eq!(obs.snapshot().counter("conformance.fit"), 1);
        match ch.replay("t", "c") {
            Conformance::Unfit { .. } => {}
            other => panic!("expected unfit, got {other:?}"),
        }
        let verdict_event = ch
            .last_verdict_event()
            .expect("unfit replay emits an event");
        let records = obs.events().records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].id, verdict_event.get());
        assert_eq!(records[1].kind, "conformance.verdict");
        assert_eq!(records[1].name, "conformance:unfit");
        assert_eq!(records[1].parent, Some(line.id().get()));
        assert!(records[1].attrs.contains(&("expected", "b".to_string())));
    }

    #[test]
    fn conformance_tags_match_paper() {
        assert_eq!(Conformance::Fit.tag(), "conformance:fit");
        assert_eq!(Conformance::Error.tag(), "conformance:error");
        assert_eq!(Conformance::Unclassified.tag(), "conformance:unclassified");
        assert_eq!(
            (Conformance::Unfit {
                expected: vec![],
                skipped: vec![]
            })
            .tag(),
            "conformance:unfit"
        );
        assert!(!Conformance::Fit.is_error());
        assert!(Conformance::Error.is_error());
    }
}
