//! Process models and conformance checking for POD-Diagnosis.
//!
//! This crate implements the process side of the paper:
//!
//! - [`ProcessModel`] — a validated BPMN subset (start/end events, tasks,
//!   exclusive and parallel gateways) built with [`ProcessModelBuilder`];
//!   the rolling-upgrade model of Figure 2 is an instance of it;
//! - [`PetriNet`] — the model compiled to a labelled Petri net, following
//!   the paper's adaptation of token replay from Petri nets to BPMN
//!   semantics;
//! - [`ConformanceChecker`] — the near-real-time conformance service: one
//!   model, many traces, classifying each event as fit / unfit / error /
//!   unclassified ([`Conformance`]) and deriving the [`ErrorContext`]
//!   (last valid activity, expected activities, hypothesised skips) that
//!   error diagnosis consumes;
//! - [`replay_fitness`] — the token-replay fitness metric used to evaluate
//!   models discovered by process mining.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conformance;
mod fitness;
mod model;
mod petri;

pub use conformance::{Conformance, ConformanceChecker, ErrorContext};
pub use fitness::{replay_fitness, ReplayCounts};
pub use model::{
    Flow, FlowId, GatewayKind, ModelError, Node, NodeId, NodeKind, ProcessModel,
    ProcessModelBuilder,
};
pub use petri::{Marking, PetriNet, Transition};
