//! Property-based tests on token replay and fitness.

use pod_process::{replay_fitness, Conformance, ConformanceChecker, ProcessModelBuilder};
use proptest::prelude::*;

/// Builds a linear model a→b→…→ with `n` tasks.
fn linear_model(n: usize) -> pod_process::ProcessModel {
    let mut b = ProcessModelBuilder::new("linear");
    let start = b.start();
    let mut prev = start;
    for i in 0..n {
        let t = b.task(format!("t{i}"));
        b.flow(prev, t);
        prev = t;
    }
    let end = b.end();
    b.flow(prev, end);
    b.build().unwrap()
}

/// The rolling-upgrade-shaped loop model.
fn loop_model() -> pod_process::ProcessModel {
    let mut b = ProcessModelBuilder::new("loop");
    let s = b.start();
    let setup = b.task("setup");
    let join = b.exclusive_gateway();
    let work = b.task("work");
    let check = b.task("check");
    let split = b.exclusive_gateway();
    let done = b.task("done");
    let e = b.end();
    b.flow(s, setup);
    b.flow(setup, join);
    b.flow(join, work);
    b.flow(work, check);
    b.flow(check, split);
    b.flow(split, join);
    b.flow(split, done);
    b.flow(done, e);
    b.build().unwrap()
}

proptest! {
    /// A linear model replays exactly its own sequence and completes.
    #[test]
    fn linear_replay_completes(n in 1usize..12) {
        let model = linear_model(n);
        let mut ch = ConformanceChecker::new(&model);
        for i in 0..n {
            let act = format!("t{i}");
            let verdict = ch.replay("t", &act);
            prop_assert_eq!(verdict, Conformance::Fit);
        }
        prop_assert!(ch.is_complete("t"));
    }

    /// Any loop count replays in the loop model with fitness 1.
    #[test]
    fn loop_model_accepts_any_iteration_count(loops in 1usize..20) {
        let model = loop_model();
        let mut trace = vec!["setup".to_string()];
        for _ in 0..loops {
            trace.push("work".to_string());
            trace.push("check".to_string());
        }
        trace.push("done".to_string());
        let counts = replay_fitness(&model, std::slice::from_ref(&trace));
        prop_assert_eq!(counts.fitness(), 1.0);
        let mut ch = ConformanceChecker::new(&model);
        for act in &trace {
            let verdict = ch.replay("t", act);
            prop_assert_eq!(verdict, Conformance::Fit, "at {}", act);
        }
        prop_assert!(ch.is_complete("t"));
    }

    /// Skipping any single required activity in a linear model makes the
    /// trace unfit at or before the end, and fitness drops below 1.
    #[test]
    fn skipping_breaks_linear_fitness(n in 2usize..10, skip in 0usize..10) {
        let skip = skip % n;
        let model = linear_model(n);
        let trace: Vec<String> = (0..n)
            .filter(|i| *i != skip)
            .map(|i| format!("t{i}"))
            .collect();
        let counts = replay_fitness(&model, std::slice::from_ref(&trace));
        prop_assert!(counts.fitness() < 1.0);
        let mut ch = ConformanceChecker::new(&model);
        let any_error = trace.iter().any(|act| ch.replay("t", act).is_error());
        prop_assert!(any_error || !ch.is_complete("t"));
    }

    /// Fitness is in [0, 1] for arbitrary traces over the model alphabet.
    #[test]
    fn fitness_is_bounded(
        trace in prop::collection::vec(prop::sample::select(vec![
            "setup".to_string(), "work".to_string(), "check".to_string(),
            "done".to_string(), "garbage".to_string(),
        ]), 0..25),
    ) {
        let counts = replay_fitness(&loop_model(), &[trace]);
        let f = counts.fitness();
        prop_assert!((0.0..=1.0).contains(&f), "fitness {f}");
    }

    /// The checker's state advances only on fit events: unfit events leave
    /// the expected-set unchanged.
    #[test]
    fn unfit_events_do_not_advance_state(
        bad in prop::sample::select(vec!["check", "done", "garbage"]),
    ) {
        let model = loop_model();
        let mut ch = ConformanceChecker::new(&model);
        ch.replay("t", "setup");
        let before = ch.expected("t");
        let verdict = ch.replay("t", bad);
        prop_assert!(verdict.is_error());
        prop_assert_eq!(ch.expected("t"), before);
        // And the valid continuation still works.
        prop_assert_eq!(ch.replay("t", "work"), Conformance::Fit);
    }

    /// Traces are fully independent: interleaving many traces gives each
    /// the same verdicts as running it alone.
    #[test]
    fn traces_are_isolated(loops_per_trace in prop::collection::vec(1usize..4, 2..5)) {
        let model = loop_model();
        let mut ch = ConformanceChecker::new(&model);
        // Interleave: all setups, then loop bodies round-robin.
        for (t, _) in loops_per_trace.iter().enumerate() {
            let trace_id = format!("t{t}");
            let verdict = ch.replay(&trace_id, "setup");
            prop_assert_eq!(verdict, Conformance::Fit);
        }
        let max_loops = *loops_per_trace.iter().max().unwrap();
        for round in 0..max_loops {
            for (t, loops) in loops_per_trace.iter().enumerate() {
                if round < *loops {
                    let trace_id = format!("t{t}");
                    let work = ch.replay(&trace_id, "work");
                    prop_assert_eq!(work, Conformance::Fit);
                    let check = ch.replay(&trace_id, "check");
                    prop_assert_eq!(check, Conformance::Fit);
                }
            }
        }
        for (t, _) in loops_per_trace.iter().enumerate() {
            let trace_id = format!("t{t}");
            let verdict = ch.replay(&trace_id, "done");
            prop_assert_eq!(verdict, Conformance::Fit);
            prop_assert!(ch.is_complete(&trace_id));
        }
    }
}
