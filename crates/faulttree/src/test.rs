//! On-demand diagnostic tests: how a fault-tree node is confirmed or
//! excluded at diagnosis time.

use pod_assert::{AssertionOutcome, CloudAssertion, ConsistentApi, ExpectedEnv};
use pod_cloud::{ActivityStatus, InstanceId};
use pod_regex::Regex;
use pod_sim::SimTime;

/// The outcome of one diagnostic test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// The fault is present.
    Present,
    /// The fault is excluded.
    Absent,
    /// The test could not be performed (e.g. it needs an instance id the
    /// trigger did not carry, or the monitoring source is unavailable).
    Inconclusive {
        /// Why the test could not run.
        reason: String,
    },
}

/// Per-instance checks that require an instance id from the error context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceCheck {
    /// The instance runs the expected AMI.
    UsesExpectedAmi,
    /// The instance is registered with the ELB.
    RegisteredWithElb,
    /// The instance is in service.
    InService,
}

/// A diagnostic test bound to a fault-tree node.
#[derive(Debug, Clone)]
pub enum DiagnosticTest {
    /// Run an on-demand assertion; the fault is present iff it **fails**.
    AssertionFails(CloudAssertion),
    /// Run a per-instance assertion against the instance from the error
    /// context; inconclusive when the context has no instance id (the
    /// paper's first wrong-diagnosis class: purely timer-based triggers
    /// carry no instance id).
    InstanceAssertionFails(InstanceCheck),
    /// Consult the scaling-activity feed: the fault is present iff a
    /// **failed** activity since operation start matches the pattern.
    FailedActivityMatching {
        /// Pattern over activity descriptions.
        pattern: String,
    },
    /// Consult the scaling-activity feed: present iff **any** activity
    /// since operation start matches the pattern (used for legitimate
    /// concurrent operations such as scale-in).
    ActivityMatching {
        /// Pattern over activity descriptions.
        pattern: String,
    },
    /// Consult the scaling-activity feed for an instance that completed
    /// termination without any recorded termination *request* — the
    /// signature of a termination outside every known operation. The cause
    /// cannot be established without API-call logs (CloudTrail), so this
    /// test confirms the *event* but never a root cause.
    UnexpectedTermination,
    /// The ASG's desired capacity no longer matches the configuration
    /// repository — the signature of a concurrent scale-in/out by another
    /// operation.
    DesiredCapacityDiffersFromExpected,
}

/// Everything a diagnostic test may need at run time.
#[derive(Debug, Clone)]
pub struct DiagnosisContext {
    /// Expected environment (configuration repository snapshot).
    pub env: ExpectedEnv,
    /// The process step the triggering error belongs to, if known.
    pub step: Option<String>,
    /// The cloud instance implicated by the triggering log line, if any.
    pub instance: Option<InstanceId>,
    /// When the operation started (activity-feed queries look from here).
    pub operation_started: SimTime,
}

impl DiagnosticTest {
    /// A rough cost estimate in API calls, used by the cost-ordered visit
    /// strategy (the paper's "another option would be to consider the
    /// expected time/cost of the diagnostic tests").
    pub fn cost_estimate(&self) -> u32 {
        match self {
            DiagnosticTest::AssertionFails(a) => match a.level() {
                pod_assert::AssertionLevel::High => 4,
                pod_assert::AssertionLevel::Low => 1,
            },
            DiagnosticTest::InstanceAssertionFails(_) => 1,
            DiagnosticTest::FailedActivityMatching { .. }
            | DiagnosticTest::ActivityMatching { .. }
            | DiagnosticTest::UnexpectedTermination => 2,
            DiagnosticTest::DesiredCapacityDiffersFromExpected => 1,
        }
    }

    /// Runs the test.
    pub fn run(&self, api: &ConsistentApi, ctx: &DiagnosisContext) -> TestResult {
        match self {
            DiagnosticTest::AssertionFails(assertion) => match assertion.evaluate(api, &ctx.env) {
                AssertionOutcome::Passed => TestResult::Absent,
                AssertionOutcome::Failed { .. } => TestResult::Present,
            },
            DiagnosticTest::InstanceAssertionFails(check) => {
                let Some(instance) = &ctx.instance else {
                    return TestResult::Inconclusive {
                        reason: "no instance id in the error context".to_string(),
                    };
                };
                let assertion = match check {
                    InstanceCheck::UsesExpectedAmi => CloudAssertion::InstanceUsesAmi {
                        instance: instance.clone(),
                    },
                    InstanceCheck::RegisteredWithElb => CloudAssertion::InstanceRegisteredWithElb {
                        instance: instance.clone(),
                    },
                    InstanceCheck::InService => CloudAssertion::InstanceInService {
                        instance: instance.clone(),
                    },
                };
                match assertion.evaluate(api, &ctx.env) {
                    AssertionOutcome::Passed => TestResult::Absent,
                    AssertionOutcome::Failed { .. } => TestResult::Present,
                }
            }
            DiagnosticTest::FailedActivityMatching { pattern } => {
                self.match_activities(api, ctx, pattern, true)
            }
            DiagnosticTest::ActivityMatching { pattern } => {
                self.match_activities(api, ctx, pattern, false)
            }
            DiagnosticTest::UnexpectedTermination => self.unexpected_termination(api, ctx),
            DiagnosticTest::DesiredCapacityDiffersFromExpected => {
                let expected = ctx.env.expected_count;
                match api.execute(|c| c.describe_asg(&ctx.env.asg)) {
                    Ok(group) => {
                        if group.desired_capacity != expected {
                            TestResult::Present
                        } else {
                            TestResult::Absent
                        }
                    }
                    Err(e) => TestResult::Inconclusive {
                        reason: format!("cannot read ASG: {e}"),
                    },
                }
            }
        }
    }

    /// Looks for a completed termination with no matching termination
    /// request in the activity feed.
    fn unexpected_termination(&self, api: &ConsistentApi, ctx: &DiagnosisContext) -> TestResult {
        let requested =
            Regex::new(r"Terminating EC2 instance.*: (?P<id>i-[0-9a-f]+)").expect("static pattern");
        let completed =
            Regex::new(r"Terminated EC2 instance: (?P<id>i-[0-9a-f]+)").expect("static pattern");
        let activities =
            api.execute(|c| c.describe_scaling_activities(&ctx.env.asg, ctx.operation_started));
        match activities {
            Ok(acts) => {
                let mut asked: Vec<String> = Vec::new();
                let mut done: Vec<String> = Vec::new();
                for a in &acts {
                    if let Some(caps) = requested.captures(&a.description) {
                        asked.push(caps.name("id").expect("captured").as_str().to_string());
                    } else if let Some(caps) = completed.captures(&a.description) {
                        done.push(caps.name("id").expect("captured").as_str().to_string());
                    }
                }
                if done.iter().any(|id| !asked.contains(id)) {
                    TestResult::Present
                } else {
                    TestResult::Absent
                }
            }
            Err(e) => TestResult::Inconclusive {
                reason: format!("activity feed unavailable: {e}"),
            },
        }
    }

    fn match_activities(
        &self,
        api: &ConsistentApi,
        ctx: &DiagnosisContext,
        pattern: &str,
        failed_only: bool,
    ) -> TestResult {
        let re = match Regex::new(pattern) {
            Ok(re) => re,
            Err(e) => {
                return TestResult::Inconclusive {
                    reason: format!("invalid activity pattern: {e}"),
                }
            }
        };
        let activities =
            api.execute(|c| c.describe_scaling_activities(&ctx.env.asg, ctx.operation_started));
        match activities {
            Ok(acts) => {
                let hit = acts.iter().any(|a| {
                    let status_ok = !failed_only || matches!(a.status, ActivityStatus::Failed(_));
                    status_ok && re.is_match(&a.description)
                });
                if hit {
                    TestResult::Present
                } else {
                    TestResult::Absent
                }
            }
            Err(e) => TestResult::Inconclusive {
                reason: format!("activity feed unavailable: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_assert::RetryPolicy;
    use pod_cloud::{Cloud, CloudConfig};
    use pod_sim::{Clock, SimDuration, SimRng};

    fn setup() -> (ConsistentApi, DiagnosisContext, Cloud) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(4),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc =
            cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
        let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc,
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 2,
        };
        let ctx = DiagnosisContext {
            env,
            step: None,
            instance: None,
            operation_started: SimTime::ZERO,
        };
        let policy = RetryPolicy {
            max_retries: 2,
            timeout: SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        (ConsistentApi::new(cloud.clone(), policy), ctx, cloud)
    }

    #[test]
    fn assertion_test_inverts_outcome() {
        let (api, ctx, cloud) = setup();
        let t = DiagnosticTest::AssertionFails(CloudAssertion::AmiAvailable);
        assert_eq!(t.run(&api, &ctx), TestResult::Absent);
        cloud.admin_set_ami_available(&ctx.env.expected_ami, false);
        assert_eq!(t.run(&api, &ctx), TestResult::Present);
    }

    #[test]
    fn instance_test_needs_context() {
        let (api, mut ctx, cloud) = setup();
        let t = DiagnosticTest::InstanceAssertionFails(InstanceCheck::UsesExpectedAmi);
        assert!(matches!(t.run(&api, &ctx), TestResult::Inconclusive { .. }));
        let id = cloud.admin_describe_asg(&ctx.env.asg).unwrap().instances[0].clone();
        ctx.instance = Some(id);
        assert_eq!(t.run(&api, &ctx), TestResult::Absent);
    }

    #[test]
    fn failed_activity_test_sees_launch_failures() {
        let (api, ctx, cloud) = setup();
        let t = DiagnosticTest::FailedActivityMatching {
            pattern: "AMI .* unavailable".to_string(),
        };
        assert_eq!(t.run(&api, &ctx), TestResult::Absent);
        // Break the AMI and force a replacement launch.
        cloud.admin_set_ami_available(&ctx.env.expected_ami, false);
        let victim = cloud.admin_describe_asg(&ctx.env.asg).unwrap().instances[0].clone();
        cloud.admin_terminate_instance(&victim);
        cloud.sleep(SimDuration::from_secs(120));
        assert_eq!(t.run(&api, &ctx), TestResult::Present);
    }

    #[test]
    fn scale_in_activity_is_visible() {
        let (api, ctx, cloud) = setup();
        let t = DiagnosticTest::ActivityMatching {
            pattern: "scale in".to_string(),
        };
        assert_eq!(t.run(&api, &ctx), TestResult::Absent);
        cloud
            .update_asg(
                &ctx.env.asg,
                pod_cloud::AsgUpdate {
                    desired_capacity: Some(1),
                    ..pod_cloud::AsgUpdate::default()
                },
            )
            .unwrap();
        cloud.sleep(SimDuration::from_secs(60));
        assert_eq!(t.run(&api, &ctx), TestResult::Present);
    }

    #[test]
    fn cost_estimates_rank_high_level_higher() {
        let high =
            DiagnosticTest::AssertionFails(CloudAssertion::AsgHasInstancesWithVersion { count: 4 });
        let low = DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi);
        assert!(high.cost_estimate() > low.cost_estimate());
    }
}
