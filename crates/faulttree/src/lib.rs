//! Fault trees and error diagnosis for POD-Diagnosis.
//!
//! Implements Section III.B.4 of the paper:
//!
//! - [`FaultTree`] / [`FaultNode`] — one tree per assertion, structuring
//!   known errors, intermediate events and root-cause faults, with `{VAR}`
//!   placeholders instantiated from the runtime request and per-node
//!   process-step contexts used for pruning;
//! - [`DiagnosticTest`] — the on-demand checks bound to tree nodes:
//!   inverted assertions, per-instance checks (inconclusive without an
//!   instance id in the error context), and scaling-activity-feed queries;
//! - [`DiagnosisEngine`] — top-down traversal ordered by fault probability
//!   (or test cost), with memoised test results and a paper-style
//!   transcript ("4 potential faults in total … 2/4 faults are excluded …
//!   One root cause is identified") written to central log storage;
//! - [`rolling_upgrade_repository`] — the knowledge base for the rolling
//!   upgrade case study, covering the evaluation's eight fault types, the
//!   scale-in interference and (in the amended version) the shared-account
//!   instance-limit cause.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod library;
mod test;
mod tree;

pub use engine::{DiagnosedCause, DiagnosisEngine, DiagnosisReport, DiagnosisVerdict, TestOrder};
pub use library::{rolling_upgrade_repository, steps, version_count_tree};
pub use test::{DiagnosisContext, DiagnosticTest, InstanceCheck, TestResult};
pub use tree::{FaultNode, FaultTree, FaultTreeRepository, Gate};
