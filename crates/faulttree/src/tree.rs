//! Fault-tree structures (Section III.B.4 of the paper).
//!
//! "The events including possible failures/errors, their associated
//! potential faults, and on-demand assertions can be naturally organized
//! into tree-like structures. … In contrast to traditional fault tree
//! analysis for hardware architectures, the fault trees here are constructed
//! from and based on application system functions and knowledge of their
//! possible faults. Note that the fault trees are not employed for FTA;
//! instead we use them to structure data in a repository."
//!
//! There is **one fault tree per assertion**; node descriptions may contain
//! `{VAR}` placeholders instantiated from the runtime request.

use crate::test::DiagnosticTest;

/// How a node's children relate to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Any child fault can cause this event.
    Or,
    /// All child faults together cause this event.
    And,
}

/// One node of a fault tree: an (intermediate) error event or a root-cause
/// fault, with an optional on-demand diagnostic test.
#[derive(Debug, Clone)]
pub struct FaultNode {
    /// Stable identifier, used for test-result caching.
    pub id: String,
    /// Description; `{VAR}` placeholders are instantiated at diagnosis time.
    pub description: String,
    /// Relationship of children to this node.
    pub gate: Gate,
    /// Child events / faults, ordered arbitrarily (the engine re-orders).
    pub children: Vec<FaultNode>,
    /// When set, the node is only relevant if the error's process context
    /// matches this activity — the pruning key.
    pub step_context: Option<String>,
    /// The on-demand check confirming or excluding this event. Nodes
    /// without a test are structural and are visited through their children.
    pub test: Option<DiagnosticTest>,
    /// Prior fault probability, used to order sibling visits.
    pub probability: f64,
    /// Whether confirming this node identifies an actionable root cause.
    pub is_root_cause: bool,
}

impl FaultNode {
    /// Creates a structural (untested) OR node.
    pub fn branch(id: impl Into<String>, description: impl Into<String>) -> FaultNode {
        FaultNode {
            id: id.into(),
            description: description.into(),
            gate: Gate::Or,
            children: Vec::new(),
            step_context: None,
            test: None,
            probability: 0.5,
            is_root_cause: false,
        }
    }

    /// Creates a testable leaf that, when confirmed, is a root cause.
    pub fn root_cause(
        id: impl Into<String>,
        description: impl Into<String>,
        test: DiagnosticTest,
        probability: f64,
    ) -> FaultNode {
        FaultNode {
            id: id.into(),
            description: description.into(),
            gate: Gate::Or,
            children: Vec::new(),
            step_context: None,
            test: Some(test),
            probability,
            is_root_cause: true,
        }
    }

    /// Attaches a diagnostic test to a branch node.
    pub fn with_test(mut self, test: DiagnosticTest) -> FaultNode {
        self.test = Some(test);
        self
    }

    /// Restricts the node (and its subtree) to one process step.
    pub fn in_step(mut self, activity: impl Into<String>) -> FaultNode {
        self.step_context = Some(activity.into());
        self
    }

    /// Sets the prior probability.
    pub fn with_probability(mut self, p: f64) -> FaultNode {
        self.probability = p;
        self
    }

    /// Sets the gate.
    pub fn with_gate(mut self, gate: Gate) -> FaultNode {
        self.gate = gate;
        self
    }

    /// Adds a child.
    pub fn child(mut self, node: FaultNode) -> FaultNode {
        self.children.push(node);
        self
    }

    /// Instantiates `{VAR}` placeholders in the description.
    pub fn instantiate(&self, variables: &[(String, String)]) -> String {
        let mut text = self.description.clone();
        for (k, v) in variables {
            text = text.replace(&format!("{{{k}}}"), v);
        }
        text
    }

    /// Number of testable leaves under (and including) this node, after
    /// pruning against an optional step context.
    pub fn potential_faults(&self, step: Option<&str>) -> usize {
        if !self.relevant_for(step) {
            return 0;
        }
        if self.children.is_empty() {
            usize::from(self.test.is_some())
        } else {
            self.children.iter().map(|c| c.potential_faults(step)).sum()
        }
    }

    /// Whether the node survives pruning for `step`.
    pub fn relevant_for(&self, step: Option<&str>) -> bool {
        match (&self.step_context, step) {
            (Some(required), Some(actual)) => required == actual,
            // No step context on the node, or no context in the request:
            // keep (the paper only prunes when both sides are known).
            _ => true,
        }
    }

    /// Depth-first iterator over all node ids (for tests/tooling).
    pub fn ids(&self) -> Vec<&str> {
        let mut out = vec![self.id.as_str()];
        for c in &self.children {
            out.extend(c.ids());
        }
        out
    }

    fn collect_root_causes<'a>(&'a self, step: Option<&str>, out: &mut Vec<&'a FaultNode>) {
        if !self.relevant_for(step) {
            return;
        }
        if self.is_root_cause && self.children.is_empty() {
            out.push(self);
        }
        for c in &self.children {
            c.collect_root_causes(step, out);
        }
    }
}

/// A fault tree: the repository entry for one assertion.
#[derive(Debug, Clone)]
pub struct FaultTree {
    /// The assertion key this tree is selected by (one tree per assertion).
    pub assertion_key: String,
    /// The top event (the failed assertion itself).
    pub root: FaultNode,
}

impl FaultTree {
    /// Creates a tree for an assertion key.
    pub fn new(assertion_key: impl Into<String>, root: FaultNode) -> FaultTree {
        FaultTree {
            assertion_key: assertion_key.into(),
            root,
        }
    }

    /// Root-cause candidates still plausible before any diagnostic test has
    /// run: every testable root-cause leaf surviving step-context pruning,
    /// most probable first (ties broken by id for determinism). Used by the
    /// recovery fast path to pre-stage plans while the tree walk is underway.
    pub fn plausible_root_causes(&self, step: Option<&str>) -> Vec<&FaultNode> {
        let mut out = Vec::new();
        self.root.collect_root_causes(step, &mut out);
        out.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        out
    }
}

/// The repository of fault trees, selected by assertion key.
#[derive(Debug, Clone, Default)]
pub struct FaultTreeRepository {
    trees: Vec<FaultTree>,
}

impl FaultTreeRepository {
    /// Creates an empty repository.
    pub fn new() -> FaultTreeRepository {
        FaultTreeRepository::default()
    }

    /// Adds a tree.
    pub fn add(&mut self, tree: FaultTree) {
        self.trees.push(tree);
    }

    /// Selects the tree for a failed assertion.
    pub fn select(&self, assertion_key: &str) -> Option<&FaultTree> {
        self.trees.iter().find(|t| t.assertion_key == assertion_key)
    }

    /// All trees.
    pub fn trees(&self) -> &[FaultTree] {
        &self.trees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::DiagnosticTest;
    use pod_assert::CloudAssertion;

    fn leaf(id: &str, p: f64) -> FaultNode {
        FaultNode::root_cause(
            id,
            format!("{id} of {{ASG}}"),
            DiagnosticTest::AssertionFails(CloudAssertion::AmiAvailable),
            p,
        )
    }

    #[test]
    fn builder_shapes_tree() {
        let tree = FaultNode::branch("root", "top event")
            .child(leaf("a", 0.3).in_step("step1"))
            .child(leaf("b", 0.7));
        assert_eq!(tree.ids(), vec!["root", "a", "b"]);
        assert_eq!(tree.potential_faults(None), 2);
    }

    #[test]
    fn pruning_by_step_context() {
        let tree = FaultNode::branch("root", "top")
            .child(leaf("a", 0.3).in_step("step1"))
            .child(leaf("b", 0.7).in_step("step2"))
            .child(leaf("c", 0.5));
        assert_eq!(tree.potential_faults(Some("step1")), 2); // a + unconstrained c
        assert_eq!(tree.potential_faults(Some("step2")), 2); // b + c
        assert_eq!(tree.potential_faults(None), 3);
    }

    #[test]
    fn plausible_root_causes_prune_and_rank() {
        let tree = FaultTree::new(
            "k",
            FaultNode::branch("root", "top")
                .child(leaf("a", 0.3).in_step("step1"))
                .child(leaf("b", 0.7).in_step("step2"))
                .child(leaf("c", 0.5))
                .child(leaf("d", 0.5)),
        );
        // Pruned to step1's candidates, probability-descending, id tiebreak.
        let ids: Vec<&str> = tree
            .plausible_root_causes(Some("step1"))
            .iter()
            .map(|n| n.id.as_str())
            .collect();
        assert_eq!(ids, vec!["c", "d", "a"]);
        // No step context: everything, b first on probability.
        let all: Vec<&str> = tree
            .plausible_root_causes(None)
            .iter()
            .map(|n| n.id.as_str())
            .collect();
        assert_eq!(all, vec!["b", "c", "d", "a"]);
    }

    #[test]
    fn instantiation_replaces_variables() {
        let n = leaf("a", 0.1);
        let text = n.instantiate(&[("ASG".to_string(), "pm--asg".to_string())]);
        assert_eq!(text, "a of pm--asg");
    }

    #[test]
    fn repository_selects_by_assertion() {
        let mut repo = FaultTreeRepository::new();
        repo.add(FaultTree::new("k1", FaultNode::branch("r1", "t1")));
        repo.add(FaultTree::new("k2", FaultNode::branch("r2", "t2")));
        assert_eq!(repo.select("k2").unwrap().root.id, "r2");
        assert!(repo.select("k3").is_none());
        assert_eq!(repo.trees().len(), 2);
    }
}
