//! The error-diagnosis engine: top-down fault-tree traversal with on-demand
//! diagnostic tests, result caching and a paper-style diagnosis transcript.

use std::collections::HashMap;

use pod_assert::ConsistentApi;
use pod_log::{LogEvent, LogStorage, Severity};
use pod_obs::{Counter, Histogram, Obs, LATENCY_BOUNDS_US};
use pod_sim::{SimDuration, SimTime};

use crate::test::{DiagnosisContext, TestResult};
use crate::tree::{FaultNode, FaultTree};

/// Sibling visiting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TestOrder {
    /// Highest fault probability first — the paper's default.
    #[default]
    ByProbability,
    /// Cheapest diagnostic test first — the alternative the paper mentions.
    ByCost,
}

/// A confirmed root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosedCause {
    /// The fault-tree node id.
    pub node_id: String,
    /// Instantiated description.
    pub description: String,
}

/// The overall verdict of a diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnosisVerdict {
    /// One or more root causes were confirmed.
    RootCauseIdentified,
    /// An error was confirmed but its cause could not be determined
    /// ("diagnosis stops at the point where no further child nodes can be
    /// checked").
    ErrorConfirmedCauseUnknown,
    /// Nothing in the tree is present — the detection was likely spurious.
    NoRootCauseIdentified,
}

/// The result of one diagnosis run.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// Confirmed root causes, in discovery order.
    pub root_causes: Vec<DiagnosedCause>,
    /// Confirmed error events whose children were all excluded or
    /// uncheckable (deepest successful error tests without a cause).
    pub stopped_at: Vec<DiagnosedCause>,
    /// Number of potential faults in the (pruned, instantiated) tree.
    pub potential_faults: usize,
    /// Faults excluded by tests.
    pub excluded: usize,
    /// Diagnostic tests actually executed (cache hits not counted).
    pub tests_run: usize,
    /// How long after diagnosis start the first root cause was confirmed —
    /// the quantity the probability-ordered visit optimises.
    pub first_cause_after: Option<SimDuration>,
    /// When diagnosis started.
    pub started_at: SimTime,
    /// Total (virtual) diagnosis time.
    pub duration: SimDuration,
}

impl DiagnosisReport {
    /// The verdict derived from the report contents.
    pub fn verdict(&self) -> DiagnosisVerdict {
        if !self.root_causes.is_empty() {
            DiagnosisVerdict::RootCauseIdentified
        } else if !self.stopped_at.is_empty() {
            DiagnosisVerdict::ErrorConfirmedCauseUnknown
        } else {
            DiagnosisVerdict::NoRootCauseIdentified
        }
    }
}

/// Bucket bounds for the fault-tree walk depth histogram (tree levels).
const DEPTH_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16];

/// Cached handles for the engine's metrics so the walk never touches the
/// registry lock.
#[derive(Debug, Clone)]
struct EngineMetrics {
    walks: Counter,
    tests_run: Counter,
    memo_hits: Counter,
    walk_depth: Histogram,
    time_to_first_cause_us: Histogram,
}

impl EngineMetrics {
    fn new(obs: &Obs) -> EngineMetrics {
        EngineMetrics {
            walks: obs.counter("faulttree.walks"),
            tests_run: obs.counter("faulttree.tests_run"),
            memo_hits: obs.counter("faulttree.memo_hits"),
            walk_depth: obs.histogram("faulttree.walk_depth", DEPTH_BOUNDS),
            time_to_first_cause_us: obs
                .histogram("faulttree.time_to_first_cause_us", LATENCY_BOUNDS_US),
        }
    }
}

/// The diagnosis engine. One engine serves many diagnoses; each call gets a
/// fresh test-result cache (results are reused across the single traversal,
/// including when a node is reachable from several ancestors).
#[derive(Debug, Clone)]
pub struct DiagnosisEngine {
    api: ConsistentApi,
    storage: LogStorage,
    order: TestOrder,
    memoise: bool,
    metrics: EngineMetrics,
}

impl DiagnosisEngine {
    /// Creates an engine logging its transcript to `storage`.
    pub fn new(api: ConsistentApi, storage: LogStorage) -> DiagnosisEngine {
        let metrics = EngineMetrics::new(api.cloud().obs());
        DiagnosisEngine {
            api,
            storage,
            order: TestOrder::ByProbability,
            memoise: true,
            metrics,
        }
    }

    /// Sets the sibling visiting order.
    pub fn with_order(mut self, order: TestOrder) -> DiagnosisEngine {
        self.order = order;
        self
    }

    /// Disables test-result memoisation (ablation baseline).
    pub fn without_memoisation(mut self) -> DiagnosisEngine {
        self.memoise = false;
        self
    }

    /// Diagnoses a detected error: selects the instantiated, pruned tree
    /// and walks it top-down, running diagnostic tests until root causes
    /// are confirmed or excluded.
    pub fn diagnose(&self, tree: &FaultTree, ctx: &DiagnosisContext) -> DiagnosisReport {
        let span = self.api.cloud().obs().span("faulttree.walk");
        span.attr("tree", &tree.assertion_key);
        self.metrics.walks.incr();
        let started_at = self.api.cloud().clock().now();
        let variables = ctx.env.variables();
        let step = ctx.step.as_deref();
        let potential = tree.root.potential_faults(step);
        self.log(
            started_at,
            ctx,
            Severity::Info,
            format!(
                "Performing on demand assertion checking: {}. {} potential faults in total",
                tree.root.instantiate(&variables),
                potential
            ),
        );
        let mut walk = Walk {
            engine: self,
            ctx,
            variables: &variables,
            cache: HashMap::new(),
            depth: 0,
            max_depth: 0,
            report: DiagnosisReport {
                root_causes: Vec::new(),
                stopped_at: Vec::new(),
                potential_faults: potential,
                excluded: 0,
                tests_run: 0,
                first_cause_after: None,
                started_at,
                duration: SimDuration::ZERO,
            },
        };
        walk.visit_children(&tree.root);
        let max_depth = walk.max_depth;
        let mut report = walk.report;
        report.duration = self.api.cloud().clock().now().duration_since(started_at);
        self.metrics.walk_depth.record(max_depth as u64);
        if let Some(first) = report.first_cause_after {
            self.metrics
                .time_to_first_cause_us
                .record(first.as_micros());
        }
        span.attr("tests_run", report.tests_run);
        let verdict_tag = match report.verdict() {
            DiagnosisVerdict::RootCauseIdentified => "root-cause-identified",
            DiagnosisVerdict::ErrorConfirmedCauseUnknown => "cause-unknown",
            DiagnosisVerdict::NoRootCauseIdentified => "no-root-cause",
        };
        span.attr("verdict", verdict_tag);
        let verdict_event = self
            .api
            .cloud()
            .obs()
            .event("diagnosis.verdict", verdict_tag);
        verdict_event.attr("tests_run", report.tests_run);
        verdict_event.attr("excluded", report.excluded);
        verdict_event.attr("duration_ms", report.duration.as_millis());
        if !report.root_causes.is_empty() {
            verdict_event.attr(
                "root_causes",
                report
                    .root_causes
                    .iter()
                    .map(|c| c.node_id.as_str())
                    .collect::<Vec<_>>()
                    .join("|"),
            );
        }
        let now = self.api.cloud().clock().now();
        match report.verdict() {
            DiagnosisVerdict::RootCauseIdentified => self.log(
                now,
                ctx,
                Severity::Info,
                format!(
                    "{} root cause(s) identified: {}",
                    report.root_causes.len(),
                    report
                        .root_causes
                        .iter()
                        .map(|c| c.description.as_str())
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
            ),
            DiagnosisVerdict::ErrorConfirmedCauseUnknown => self.log(
                now,
                ctx,
                Severity::Warn,
                format!(
                    "Error confirmed but cause unknown; diagnosis stopped at: {}",
                    report
                        .stopped_at
                        .iter()
                        .map(|c| c.description.as_str())
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
            ),
            DiagnosisVerdict::NoRootCauseIdentified => self.log(
                now,
                ctx,
                Severity::Info,
                "No root cause identified".to_string(),
            ),
        }
        report
    }

    fn log(&self, at: SimTime, ctx: &DiagnosisContext, severity: Severity, message: String) {
        let step = ctx.step.as_deref().unwrap_or("-");
        self.storage.append(
            LogEvent::new(
                at,
                "diagnosis.log",
                format!("[diagnosis] [step:{step}] {message}"),
            )
            .with_type("diagnosis")
            .with_severity(severity),
        );
    }
}

struct Walk<'a> {
    engine: &'a DiagnosisEngine,
    ctx: &'a DiagnosisContext,
    variables: &'a [(String, String)],
    cache: HashMap<String, (TestResult, pod_obs::EventId)>,
    depth: usize,
    max_depth: usize,
    report: DiagnosisReport,
}

impl Walk<'_> {
    /// Visits the children of `node` in the configured order.
    fn visit_children(&mut self, node: &FaultNode) {
        let mut order: Vec<&FaultNode> = node
            .children
            .iter()
            .filter(|c| c.relevant_for(self.ctx.step.as_deref()))
            .collect();
        match self.engine.order {
            TestOrder::ByProbability => {
                order.sort_by(|a, b| {
                    b.probability
                        .partial_cmp(&a.probability)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.id.cmp(&b.id))
                });
            }
            TestOrder::ByCost => {
                order.sort_by(|a, b| {
                    let ca = a.test.as_ref().map(|t| t.cost_estimate()).unwrap_or(0);
                    let cb = b.test.as_ref().map(|t| t.cost_estimate()).unwrap_or(0);
                    ca.cmp(&cb).then_with(|| a.id.cmp(&b.id))
                });
            }
        }
        for child in order {
            self.visit(child);
        }
    }

    fn visit(&mut self, node: &FaultNode) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        let description = node.instantiate(self.variables);
        match &node.test {
            None => {
                // Structural node: descend directly.
                self.visit_children(node);
            }
            Some(test) => {
                let now = self.engine.api.cloud().clock().now();
                self.engine.log(
                    now,
                    self.ctx,
                    Severity::Info,
                    format!("Verifying: {description}"),
                );
                let (result, test_event) = self.run_cached(&node.id, test);
                let now = self.engine.api.cloud().clock().now();
                match result {
                    TestResult::Absent => {
                        self.report.excluded += node.potential_faults(self.ctx.step.as_deref());
                        self.engine.log(
                            now,
                            self.ctx,
                            Severity::Info,
                            format!(
                                "Verified: {description} — not present. {}/{} faults excluded",
                                self.report.excluded, self.report.potential_faults
                            ),
                        );
                    }
                    TestResult::Present => {
                        self.engine.log(
                            now,
                            self.ctx,
                            Severity::Error,
                            format!("Failed verification: {description} — fault present"),
                        );
                        if node.is_root_cause && node.children.is_empty() {
                            if self.report.first_cause_after.is_none() {
                                self.report.first_cause_after =
                                    Some(now.duration_since(self.report.started_at));
                            }
                            self.engine
                                .api
                                .cloud()
                                .obs()
                                .event_under(test_event, "diagnosis.cause", &node.id)
                                .attr("description", &description);
                            self.report.root_causes.push(DiagnosedCause {
                                node_id: node.id.clone(),
                                description,
                            });
                        } else {
                            let causes_before = self.report.root_causes.len();
                            self.visit_children(node);
                            if self.report.root_causes.len() == causes_before {
                                // Deepest confirmed error without a cause.
                                self.report.stopped_at.push(DiagnosedCause {
                                    node_id: node.id.clone(),
                                    description,
                                });
                            }
                        }
                    }
                    TestResult::Inconclusive { reason } => {
                        self.engine.log(
                            now,
                            self.ctx,
                            Severity::Warn,
                            format!("Cannot verify {description}: {reason}"),
                        );
                        // "Diagnosis stops at the point where no further
                        // child nodes can be checked."
                    }
                }
            }
        }
        self.depth -= 1;
    }

    /// Runs (or serves from cache) one diagnostic test, returning the
    /// result and the `faulttree.test` causal event it is evidenced by (the
    /// original test's event on a memo hit, so a cause confirmed twice
    /// still chains to the test that actually ran).
    fn run_cached(
        &mut self,
        id: &str,
        test: &crate::test::DiagnosticTest,
    ) -> (TestResult, pod_obs::EventId) {
        if self.engine.memoise {
            if let Some(hit) = self.cache.get(id) {
                self.engine.metrics.memo_hits.incr();
                return hit.clone();
            }
        }
        let obs = self.engine.api.cloud().obs().clone();
        let span = obs.span("faulttree.test");
        span.attr("node", id);
        let emitted = obs.event("faulttree.test", id);
        // Consistent-layer retries made by the test chain under it.
        let result = {
            let _scope = obs.events().scope(Some(emitted.id()));
            test.run(&self.engine.api, self.ctx)
        };
        let tag = match &result {
            TestResult::Absent => "absent",
            TestResult::Present => "present",
            TestResult::Inconclusive { .. } => "inconclusive",
        };
        span.attr("result", tag);
        emitted.attr("result", tag);
        self.report.tests_run += 1;
        self.engine.metrics.tests_run.incr();
        if self.engine.memoise {
            self.cache
                .insert(id.to_string(), (result.clone(), emitted.id()));
        }
        (result, emitted.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::DiagnosticTest;
    use crate::tree::{FaultNode, FaultTree};
    use pod_assert::{CloudAssertion, ExpectedEnv, RetryPolicy};
    use pod_cloud::{Cloud, CloudConfig};
    use pod_sim::{Clock, SimRng};

    fn setup() -> (DiagnosisEngine, DiagnosisContext, Cloud, LogStorage) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(21),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc =
            cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
        let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc,
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 2,
        };
        let ctx = DiagnosisContext {
            env,
            step: None,
            instance: None,
            operation_started: SimTime::ZERO,
        };
        let storage = LogStorage::new();
        let policy = RetryPolicy {
            max_retries: 2,
            timeout: SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        let engine = DiagnosisEngine::new(
            pod_assert::ConsistentApi::new(cloud.clone(), policy),
            storage.clone(),
        );
        (engine, ctx, cloud, storage)
    }

    fn demo_tree() -> FaultTree {
        let root = FaultNode::branch("root", "system does not have {N} instances of {VERSION}")
            .child(
                FaultNode::branch("lc-wrong", "launch configuration {LC} incorrect")
                    .with_test(DiagnosticTest::AssertionFails(
                        CloudAssertion::AsgLaunchConfigCorrect,
                    ))
                    .with_probability(0.4)
                    .child(FaultNode::root_cause(
                        "lc-wrong-ami",
                        "the launch configuration {LC} uses a wrong AMI",
                        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
                        0.5,
                    )),
            )
            .child(FaultNode::root_cause(
                "ami-wrong",
                "the launch configuration uses a wrong AMI",
                DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
                0.6,
            ))
            .child(FaultNode::root_cause(
                "kp-wrong",
                "the launch configuration uses a wrong key pair",
                DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesKeyPair),
                0.3,
            ));
        FaultTree::new("asg-has-n-instances-with-version", root)
    }

    #[test]
    fn healthy_system_yields_no_root_cause() {
        let (engine, ctx, _cloud, storage) = setup();
        let report = engine.diagnose(&demo_tree(), &ctx);
        assert_eq!(report.verdict(), DiagnosisVerdict::NoRootCauseIdentified);
        assert!(report.excluded > 0);
        assert!(report.duration > SimDuration::ZERO);
        let transcript = storage.snapshot();
        assert!(transcript
            .iter()
            .any(|e| e.message.contains("No root cause identified")));
        assert!(transcript[0].message.contains("potential faults in total"));
    }

    #[test]
    fn wrong_ami_is_pinpointed() {
        let (engine, ctx, cloud, storage) = setup();
        let evil = cloud.admin_create_ami("evil", "9.9");
        cloud.admin_update_launch_config(
            &ctx.env.launch_config,
            pod_cloud::LaunchConfigUpdate {
                ami: Some(evil),
                ..pod_cloud::LaunchConfigUpdate::default()
            },
        );
        let report = engine.diagnose(&demo_tree(), &ctx);
        assert_eq!(report.verdict(), DiagnosisVerdict::RootCauseIdentified);
        assert!(report
            .root_causes
            .iter()
            .any(|c| c.node_id == "ami-wrong" || c.node_id == "lc-wrong-ami"));
        // The key-pair fault was excluded.
        assert!(report.excluded >= 1);
        assert!(storage
            .snapshot()
            .iter()
            .any(|e| e.message.contains("root cause(s) identified")));
    }

    #[test]
    fn memoisation_reuses_duplicate_tests() {
        let (engine, ctx, cloud, _) = setup();
        let evil = cloud.admin_create_ami("evil", "9.9");
        cloud.admin_update_launch_config(
            &ctx.env.launch_config,
            pod_cloud::LaunchConfigUpdate {
                ami: Some(evil),
                ..pod_cloud::LaunchConfigUpdate::default()
            },
        );
        // Tree where the same node id appears under two branches.
        let dup = FaultNode::root_cause(
            "shared-ami-check",
            "wrong AMI",
            DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
            0.5,
        );
        let tree = FaultTree::new(
            "k",
            FaultNode::branch("root", "top")
                .child(dup.clone())
                .child(dup),
        );
        let memo = engine.clone().diagnose(&tree, &ctx);
        assert_eq!(memo.tests_run, 1, "second occurrence served from cache");
        let nomemo = engine.without_memoisation().diagnose(&tree, &ctx);
        assert_eq!(nomemo.tests_run, 2);
    }

    #[test]
    fn step_context_prunes_irrelevant_branches() {
        let (engine, mut ctx, cloud, _) = setup();
        let evil_kp = cloud.admin_create_key_pair("evil");
        cloud.admin_update_launch_config(
            &ctx.env.launch_config,
            pod_cloud::LaunchConfigUpdate {
                key_pair: Some(evil_kp),
                ..pod_cloud::LaunchConfigUpdate::default()
            },
        );
        let tree = FaultTree::new(
            "k",
            FaultNode::branch("root", "top")
                .child(
                    FaultNode::root_cause(
                        "kp",
                        "wrong key pair",
                        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesKeyPair),
                        0.5,
                    )
                    .in_step("update-launch-config"),
                )
                .child(
                    FaultNode::root_cause(
                        "ami",
                        "wrong AMI",
                        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
                        0.5,
                    )
                    .in_step("new-instance-ready"),
                ),
        );
        ctx.step = Some("new-instance-ready".to_string());
        let report = engine.diagnose(&tree, &ctx);
        // The key-pair fault IS present, but its branch was pruned away.
        assert_eq!(report.verdict(), DiagnosisVerdict::NoRootCauseIdentified);
        assert_eq!(report.potential_faults, 1);
        // Without a step context, it is found.
        ctx.step = None;
        let report = engine.diagnose(&tree, &ctx);
        assert_eq!(report.verdict(), DiagnosisVerdict::RootCauseIdentified);
    }

    #[test]
    fn confirmed_branch_without_cause_stops_there() {
        let (engine, ctx, cloud, _) = setup();
        // Make the top-level LC check fail but keep all child checks green:
        // point the ASG at a *different* (but internally consistent) LC.
        let other_lc = cloud.admin_create_launch_config(
            "lc-other",
            ctx.env.expected_ami.clone(),
            "m1.small",
            ctx.env.expected_key_pair.clone(),
            ctx.env.expected_security_group.clone(),
        );
        cloud
            .update_asg(
                &ctx.env.asg,
                pod_cloud::AsgUpdate {
                    launch_config: Some(other_lc),
                    ..pod_cloud::AsgUpdate::default()
                },
            )
            .unwrap();
        let tree = FaultTree::new(
            "k",
            FaultNode::branch("root", "top").child(
                FaultNode::branch(
                    "asg-lc",
                    "ASG {ASG} uses an unexpected launch configuration",
                )
                .with_test(DiagnosticTest::AssertionFails(
                    CloudAssertion::AsgLaunchConfigCorrect,
                ))
                .child(FaultNode::root_cause(
                    "ami",
                    "wrong AMI",
                    DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
                    0.5,
                )),
            ),
        );
        let report = engine.diagnose(&tree, &ctx);
        assert_eq!(
            report.verdict(),
            DiagnosisVerdict::ErrorConfirmedCauseUnknown
        );
        assert_eq!(report.stopped_at.len(), 1);
        assert!(report.stopped_at[0].description.contains("g uses"));
    }

    #[test]
    fn cost_order_is_never_more_expensive_on_library_trees() {
        // Library-wide contract between the two sibling orders: on every
        // tree of the shipped repository, cheapest-test-first must reach the
        // same verdict and the same root causes as the paper's
        // probability-first default, without running more diagnostic tests.
        let repository = crate::library::rolling_upgrade_repository(true);
        for scenario in ["healthy", "lc-wrong-ami", "ami-unavailable"] {
            let (engine, ctx, cloud, _storage) = setup();
            match scenario {
                "lc-wrong-ami" => {
                    let rogue = cloud.admin_create_ami("app", "0.9");
                    cloud.admin_update_launch_config(
                        &ctx.env.launch_config,
                        pod_cloud::LaunchConfigUpdate {
                            ami: Some(rogue),
                            ..pod_cloud::LaunchConfigUpdate::default()
                        },
                    );
                }
                "ami-unavailable" => {
                    cloud.admin_set_ami_available(&ctx.env.expected_ami, false);
                }
                _ => {}
            }
            for tree in repository.trees() {
                let by_cost = engine
                    .clone()
                    .with_order(TestOrder::ByCost)
                    .diagnose(tree, &ctx);
                let by_probability = engine
                    .clone()
                    .with_order(TestOrder::ByProbability)
                    .diagnose(tree, &ctx);
                assert_eq!(
                    by_cost.verdict(),
                    by_probability.verdict(),
                    "verdicts diverge on tree {} under {scenario}",
                    tree.assertion_key
                );
                let causes = |r: &DiagnosisReport| {
                    let mut ids: Vec<String> =
                        r.root_causes.iter().map(|c| c.node_id.clone()).collect();
                    ids.sort();
                    ids
                };
                assert_eq!(
                    causes(&by_cost),
                    causes(&by_probability),
                    "root causes diverge on tree {} under {scenario}",
                    tree.assertion_key
                );
                assert!(
                    by_cost.tests_run <= by_probability.tests_run,
                    "ByCost ran {} tests but ByProbability only {} on tree {} under {scenario}",
                    by_cost.tests_run,
                    by_probability.tests_run,
                    tree.assertion_key
                );
            }
        }
    }

    #[test]
    fn cost_order_runs_cheap_tests_first() {
        let (engine, ctx, _cloud, storage) = setup();
        let tree = FaultTree::new(
            "k",
            FaultNode::branch("root", "top")
                .child(FaultNode::root_cause(
                    "expensive",
                    "expensive high-level check",
                    DiagnosticTest::AssertionFails(CloudAssertion::AsgHasInstancesWithVersion {
                        count: 2,
                    }),
                    0.9,
                ))
                .child(FaultNode::root_cause(
                    "cheap",
                    "cheap low-level check",
                    DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
                    0.1,
                )),
        );
        storage.clear();
        engine
            .clone()
            .with_order(TestOrder::ByCost)
            .diagnose(&tree, &ctx);
        let first_verify = storage
            .snapshot()
            .into_iter()
            .find(|e| e.message.contains("Verifying:"))
            .unwrap();
        assert!(first_verify.message.contains("cheap"));
        storage.clear();
        engine
            .with_order(TestOrder::ByProbability)
            .diagnose(&tree, &ctx);
        let first_verify = storage
            .snapshot()
            .into_iter()
            .find(|e| e.message.contains("Verifying:"))
            .unwrap();
        assert!(first_verify.message.contains("expensive"));
    }

    use pod_sim::SimDuration;
}
