//! The rolling-upgrade fault-tree knowledge base.
//!
//! These trees encode Figure 5 of the paper (the tree under "assert the
//! system has N instances with the new version") plus the smaller trees for
//! the step-level assertions. They cover the eight injected fault types of
//! the evaluation, the scale-in interference, and — in the *amended*
//! version — the shared-account instance-limit root cause the paper added
//! after its fourth wrong-diagnosis class.

use pod_assert::CloudAssertion;

use crate::test::{DiagnosticTest, InstanceCheck};
use crate::tree::{FaultNode, FaultTree, FaultTreeRepository};

/// Activity names of the rolling-upgrade process (Figure 2), shared between
/// the orchestrator, the assertion bindings and the fault trees.
pub mod steps {
    /// Start of the upgrade task.
    pub const START: &str = "start-rolling-upgrade-task";
    /// Update launch configuration.
    pub const UPDATE_LC: &str = "update-launch-configuration";
    /// Sort instances.
    pub const SORT: &str = "sort-instances";
    /// Remove and deregister old instance from ELB.
    pub const DEREGISTER: &str = "remove-and-deregister-old-instance-from-elb";
    /// Terminate old instance.
    pub const TERMINATE: &str = "terminate-old-instance";
    /// Wait for ASG to start a new instance.
    pub const WAIT_ASG: &str = "wait-for-asg-to-start-new-instance";
    /// New instance ready and registered with ELB.
    pub const READY: &str = "new-instance-ready-and-registered-with-elb";
    /// Upgrade task completed.
    pub const COMPLETED: &str = "rolling-upgrade-task-completed";
}

/// Builds the full repository for the rolling-upgrade operation.
///
/// With `amended == false`, the account instance-limit root cause is
/// missing, reproducing the paper's fourth wrong-diagnosis class (diagnosis
/// then stops at "launch failing, cause unknown" when the shared account
/// runs out of capacity).
pub fn rolling_upgrade_repository(amended: bool) -> FaultTreeRepository {
    let mut repo = FaultTreeRepository::new();
    repo.add(version_count_tree(amended));
    repo.add(lc_tree());
    repo.add(deregister_tree());
    repo.add(terminate_tree());
    repo.add(elb_registration_tree());
    repo.add(capacity_tree("asg-instance-count", amended));
    repo.add(capacity_tree("asg-desired-capacity", amended));
    repo.add(capacity_tree("asg-active-count-at-least", amended));
    repo.add(single_cause_tree(
        "launch-config-uses-ami",
        wrong_ami_cause(0.8),
    ));
    repo.add(single_cause_tree(
        "launch-config-uses-key-pair",
        wrong_key_pair_cause(0.8),
    ));
    repo.add(single_cause_tree(
        "launch-config-uses-security-group",
        wrong_sg_cause(0.8),
    ));
    repo.add(single_cause_tree(
        "launch-config-uses-instance-type",
        wrong_instance_type_cause(0.8),
    ));
    repo.add(single_cause_tree("instance-uses-ami", wrong_ami_cause(0.8)));
    repo.add(single_cause_tree(
        "ami-available",
        FaultNode::root_cause(
            "ami-unavailable",
            "the AMI {AMI} is unavailable",
            DiagnosticTest::AssertionFails(CloudAssertion::AmiAvailable),
            0.8,
        ),
    ));
    repo.add(single_cause_tree(
        "key-pair-available",
        FaultNode::root_cause(
            "key-pair-unavailable",
            "the key pair {KEYPAIR} does not exist",
            DiagnosticTest::AssertionFails(CloudAssertion::KeyPairAvailable),
            0.8,
        ),
    ));
    repo.add(single_cause_tree(
        "security-group-available",
        FaultNode::root_cause(
            "sg-unavailable",
            "the security group {SG} does not exist",
            DiagnosticTest::AssertionFails(CloudAssertion::SecurityGroupAvailable),
            0.8,
        ),
    ));
    repo.add(single_cause_tree(
        "elb-available",
        FaultNode::root_cause(
            "elb-unavailable",
            "the ELB {ELB} is unavailable",
            DiagnosticTest::AssertionFails(CloudAssertion::ElbAvailable),
            0.8,
        ),
    ));
    repo.add(FaultTree::new(
        "instance-configuration-correct",
        FaultNode::branch(
            "instance-misconfigured",
            "a new instance of {ASG} does not match the expected configuration",
        )
        .child(wrong_ami_cause(0.5))
        .child(wrong_key_pair_cause(0.3))
        .child(wrong_sg_cause(0.3))
        .child(wrong_instance_type_cause(0.2)),
    ));
    repo
}

/// A tree whose top event has exactly one candidate root cause.
fn single_cause_tree(key: &str, cause: FaultNode) -> FaultTree {
    FaultTree::new(
        key,
        FaultNode::branch(
            format!("{key}-failed"),
            "the step post-condition does not hold",
        )
        .child(cause),
    )
}

/// The tree for capacity-family assertion failures: a concurrent scale-in,
/// an unexpected termination, or launches failing.
fn capacity_tree(key: &str, amended: bool) -> FaultTree {
    let mut launch_failing = FaultNode::branch(
        "instance-launch-failing",
        "the ASG {ASG} cannot launch replacement instances",
    )
    .with_test(DiagnosticTest::FailedActivityMatching {
        pattern: "Failed to launch instance".to_string(),
    })
    .with_probability(0.3)
    .child(FaultNode::root_cause(
        "ami-unavailable",
        "the AMI {AMI} is unavailable",
        DiagnosticTest::AssertionFails(CloudAssertion::AmiAvailable),
        0.4,
    ))
    .child(FaultNode::root_cause(
        "key-pair-unavailable",
        "the key pair {KEYPAIR} does not exist",
        DiagnosticTest::AssertionFails(CloudAssertion::KeyPairAvailable),
        0.3,
    ))
    .child(FaultNode::root_cause(
        "sg-unavailable",
        "the security group {SG} does not exist",
        DiagnosticTest::AssertionFails(CloudAssertion::SecurityGroupAvailable),
        0.3,
    ));
    if amended {
        launch_failing = launch_failing.child(FaultNode::root_cause(
            "instance-limit-reached",
            "the shared account reached its instance limit",
            DiagnosticTest::FailedActivityMatching {
                pattern: "InstanceLimitExceeded".to_string(),
            },
            0.1,
        ));
    }
    let root = FaultNode::branch(
        format!("{key}-violated"),
        "the ASG {ASG} capacity deviates from the expectation",
    )
    .child(FaultNode::root_cause(
        "concurrent-capacity-change",
        "a concurrent operation changed the desired capacity of {ASG}",
        DiagnosticTest::DesiredCapacityDiffersFromExpected,
        0.55,
    ))
    .child(FaultNode::root_cause(
        "concurrent-scale-in",
        "a concurrent scale-in changed the capacity of {ASG}",
        DiagnosticTest::ActivityMatching {
            pattern: "scale in".to_string(),
        },
        0.5,
    ))
    .child(
        FaultNode::branch(
            "instance-terminated-unexpectedly",
            "an instance of {ASG} was terminated outside the upgrade",
        )
        .with_test(DiagnosticTest::UnexpectedTermination)
        .with_probability(0.3),
    )
    .child(launch_failing);
    FaultTree::new(key, root)
}

/// The Figure-5 tree: failure of "assert the system has N instances with
/// the new version".
pub fn version_count_tree(amended: bool) -> FaultTree {
    let lc_misconfigured = FaultNode::branch(
        "lc-misconfigured",
        "the launch configuration {LC} is incorrect",
    )
    .in_step(steps::UPDATE_LC)
    .with_probability(0.5)
    .child(wrong_ami_cause(0.5))
    .child(wrong_key_pair_cause(0.3))
    .child(wrong_sg_cause(0.3))
    .child(wrong_instance_type_cause(0.2));

    let asg_wrong_version = FaultNode::branch(
        "asg-wrong-version",
        "the ASG {ASG} is not using a correct version",
    )
    .with_probability(0.6)
    .child(wrong_ami_cause(0.5))
    .child(wrong_key_pair_cause(0.3))
    .child(wrong_sg_cause(0.3))
    .child(wrong_instance_type_cause(0.2));

    let mut launch_failing = FaultNode::branch(
        "instance-launch-failing",
        "the ASG {ASG} cannot launch replacement instances",
    )
    .with_probability(0.4)
    .child(FaultNode::root_cause(
        "ami-unavailable",
        "the AMI {AMI} is unavailable",
        DiagnosticTest::AssertionFails(CloudAssertion::AmiAvailable),
        0.4,
    ))
    .child(FaultNode::root_cause(
        "key-pair-unavailable",
        "the key pair {KEYPAIR} does not exist",
        DiagnosticTest::AssertionFails(CloudAssertion::KeyPairAvailable),
        0.3,
    ))
    .child(FaultNode::root_cause(
        "sg-unavailable",
        "the security group {SG} does not exist",
        DiagnosticTest::AssertionFails(CloudAssertion::SecurityGroupAvailable),
        0.3,
    ));
    // Checked via the activity feed as well: launch failures leave failed
    // scaling activities behind.
    launch_failing = launch_failing.with_test(DiagnosticTest::FailedActivityMatching {
        pattern: "Failed to launch instance".to_string(),
    });
    if amended {
        launch_failing = launch_failing.child(FaultNode::root_cause(
            "instance-limit-reached",
            "the shared account reached its instance limit",
            DiagnosticTest::FailedActivityMatching {
                pattern: "InstanceLimitExceeded".to_string(),
            },
            0.1,
        ));
    }

    let elb_problems = FaultNode::branch("elb-problems", "ELB {ELB} problems")
        .with_probability(0.3)
        .child(FaultNode::root_cause(
            "elb-unavailable",
            "the ELB {ELB} is unavailable",
            DiagnosticTest::AssertionFails(CloudAssertion::ElbAvailable),
            0.4,
        ))
        .child(
            FaultNode::root_cause(
                "instance-not-registered",
                "the new instance is not registered with ELB {ELB}",
                DiagnosticTest::InstanceAssertionFails(InstanceCheck::RegisteredWithElb),
                0.3,
            )
            .in_step(steps::READY),
        );

    let capacity_changed = FaultNode::branch(
        "capacity-changed",
        "the ASG {ASG} capacity was changed by a concurrent operation",
    )
    .with_probability(0.35)
    .child(FaultNode::root_cause(
        "concurrent-capacity-change",
        "a concurrent operation changed the desired capacity of {ASG}",
        DiagnosticTest::DesiredCapacityDiffersFromExpected,
        0.55,
    ))
    .child(FaultNode::root_cause(
        "concurrent-scale-in",
        "a concurrent scale-in reduced the capacity of {ASG}",
        DiagnosticTest::ActivityMatching {
            pattern: "scale in".to_string(),
        },
        0.5,
    ))
    .child(
        FaultNode::branch(
            "instance-terminated-unexpectedly",
            "an instance of {ASG} was terminated outside the upgrade",
        )
        .with_test(DiagnosticTest::UnexpectedTermination)
        .with_probability(0.3),
        // No children: random external terminations leave no API-call log
        // (the paper could not diagnose these without CloudTrail), so a
        // confirmed test here stops with "cause unknown".
    );

    let root = FaultNode::branch(
        "no-n-instances-with-version",
        "the system does not have {N} instances with version {VERSION}",
    )
    .child(asg_wrong_version)
    .child(lc_misconfigured)
    .child(launch_failing)
    .child(elb_problems)
    .child(capacity_changed);

    FaultTree::new("asg-has-n-instances-with-version", root)
}

/// Tree for a failed "launch configuration correct" step assertion.
fn lc_tree() -> FaultTree {
    let root = FaultNode::branch("lc-incorrect", "the launch configuration {LC} is incorrect")
        .child(wrong_ami_cause(0.5))
        .child(wrong_key_pair_cause(0.3))
        .child(wrong_sg_cause(0.3))
        .child(wrong_instance_type_cause(0.2));
    FaultTree::new("asg-launch-config-correct", root)
}

/// Tree for a failed deregistration assertion.
fn deregister_tree() -> FaultTree {
    let root = FaultNode::branch(
        "deregister-failed",
        "the old instance was not deregistered from ELB {ELB}",
    )
    .child(FaultNode::root_cause(
        "elb-unavailable",
        "the ELB {ELB} is unavailable",
        DiagnosticTest::AssertionFails(CloudAssertion::ElbAvailable),
        0.6,
    ));
    FaultTree::new("instance-deregistered-from-elb", root)
}

/// Tree for a failed termination assertion.
fn terminate_tree() -> FaultTree {
    let root = FaultNode::branch("terminate-failed", "the old instance did not terminate").child(
        FaultNode::root_cause(
            "instance-still-running",
            "the instance is still in service (terminate call lost or throttled)",
            DiagnosticTest::InstanceAssertionFails(InstanceCheck::InService),
            0.5,
        ),
    );
    FaultTree::new("instance-terminated", root)
}

/// Tree for a failed "instance registered with ELB" assertion.
fn elb_registration_tree() -> FaultTree {
    let root = FaultNode::branch(
        "registration-failed",
        "the new instance failed to register with ELB {ELB}",
    )
    .child(FaultNode::root_cause(
        "elb-unavailable",
        "the ELB {ELB} is unavailable",
        DiagnosticTest::AssertionFails(CloudAssertion::ElbAvailable),
        0.6,
    ))
    .child(FaultNode::root_cause(
        "instance-not-in-service",
        "the new instance never reached in-service state",
        DiagnosticTest::InstanceAssertionFails(InstanceCheck::InService),
        0.3,
    ));
    FaultTree::new("instance-registered-with-elb", root)
}

fn wrong_ami_cause(p: f64) -> FaultNode {
    FaultNode::root_cause(
        "lc-wrong-ami",
        "the launch configuration {LC} uses a wrong AMI (expected {AMI}) — AMI changed during \
         upgrade",
        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesAmi),
        p,
    )
}

fn wrong_key_pair_cause(p: f64) -> FaultNode {
    FaultNode::root_cause(
        "lc-wrong-key-pair",
        "the launch configuration {LC} uses a wrong key pair (expected {KEYPAIR})",
        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesKeyPair),
        p,
    )
}

fn wrong_sg_cause(p: f64) -> FaultNode {
    FaultNode::root_cause(
        "lc-wrong-sg",
        "the launch configuration {LC} uses a wrong security group (expected {SG})",
        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesSecurityGroup),
        p,
    )
}

fn wrong_instance_type_cause(p: f64) -> FaultNode {
    FaultNode::root_cause(
        "lc-wrong-instance-type",
        "the launch configuration {LC} uses a wrong instance type (expected {TYPE})",
        DiagnosticTest::AssertionFails(CloudAssertion::LaunchConfigUsesInstanceType),
        p,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repository_has_a_tree_per_assertion_family() {
        let repo = rolling_upgrade_repository(true);
        for key in [
            "asg-has-n-instances-with-version",
            "asg-launch-config-correct",
            "instance-deregistered-from-elb",
            "instance-terminated",
            "instance-registered-with-elb",
        ] {
            assert!(repo.select(key).is_some(), "missing tree for {key}");
        }
    }

    #[test]
    fn amendment_adds_instance_limit_cause() {
        let amended = rolling_upgrade_repository(true);
        let unamended = rolling_upgrade_repository(false);
        let has_limit = |repo: &FaultTreeRepository| {
            repo.select("asg-has-n-instances-with-version")
                .unwrap()
                .root
                .ids()
                .contains(&"instance-limit-reached")
        };
        assert!(has_limit(&amended));
        assert!(!has_limit(&unamended));
    }

    #[test]
    fn figure_5_tree_covers_all_eight_fault_types() {
        let tree = version_count_tree(true);
        let ids = tree.root.ids();
        for id in [
            "lc-wrong-ami",           // fault 1
            "lc-wrong-key-pair",      // fault 2
            "lc-wrong-sg",            // fault 3
            "lc-wrong-instance-type", // fault 4
            "ami-unavailable",        // fault 5
            "key-pair-unavailable",   // fault 6
            "sg-unavailable",         // fault 7
            "elb-unavailable",        // fault 8
            "concurrent-scale-in",    // interference
        ] {
            assert!(ids.contains(&id), "missing node {id}");
        }
    }

    #[test]
    fn pruning_for_update_lc_step_keeps_lc_branch() {
        let tree = version_count_tree(true);
        let all = tree.root.potential_faults(None);
        let pruned = tree.root.potential_faults(Some(steps::UPDATE_LC));
        assert!(pruned < all);
        assert!(pruned > 0);
    }
}
