//! Property-based tests on fault-tree structure, pruning and instantiation.

use pod_assert::CloudAssertion;
use pod_faulttree::{DiagnosticTest, FaultNode, FaultTree, FaultTreeRepository};
use proptest::prelude::*;

/// Builds a random two-level tree: `branches` top branches, each with the
/// given number of leaves, each leaf optionally step-constrained.
fn build_tree(leaf_spec: &[Vec<Option<u8>>]) -> FaultTree {
    let mut root = FaultNode::branch("root", "top event on {ASG}");
    for (bi, leaves) in leaf_spec.iter().enumerate() {
        let mut branch = FaultNode::branch(format!("b{bi}"), format!("branch {bi}"));
        for (li, step) in leaves.iter().enumerate() {
            let mut leaf = FaultNode::root_cause(
                format!("b{bi}-l{li}"),
                "leaf {N}",
                DiagnosticTest::AssertionFails(CloudAssertion::AmiAvailable),
                0.1 + li as f64 * 0.05,
            );
            if let Some(s) = step {
                leaf = leaf.in_step(format!("step{s}"));
            }
            branch = branch.child(leaf);
        }
        root = root.child(branch);
    }
    FaultTree::new("k", root)
}

proptest! {
    /// Pruned potential-fault counts never exceed the unpruned count, and
    /// pruning with a step keeps exactly the unconstrained leaves plus the
    /// matching ones.
    #[test]
    fn pruning_counts_are_exact(
        leaf_spec in prop::collection::vec(
            prop::collection::vec(prop::option::of(0u8..3), 1..4),
            1..4,
        ),
        step in 0u8..3,
    ) {
        let tree = build_tree(&leaf_spec);
        let all: usize = leaf_spec.iter().map(|b| b.len()).sum();
        prop_assert_eq!(tree.root.potential_faults(None), all);
        let step_name = format!("step{step}");
        let expected: usize = leaf_spec
            .iter()
            .flatten()
            .filter(|s| s.is_none() || s.map(|v| format!("step{v}")) == Some(step_name.clone()))
            .count();
        prop_assert_eq!(tree.root.potential_faults(Some(&step_name)), expected);
    }

    /// Instantiation replaces exactly the provided variables and leaves
    /// unknown placeholders untouched.
    #[test]
    fn instantiation_is_targeted(value in "[a-z0-9-]{1,12}") {
        let node = FaultNode::branch("n", "the ASG {ASG} and the mystery {UNKNOWN}");
        let text = node.instantiate(&[("ASG".to_string(), value.clone())]);
        prop_assert!(text.contains(&value));
        let unresolved = "{UNKNOWN}";
        let resolved = "{ASG}";
        prop_assert!(text.contains(unresolved));
        prop_assert!(!text.contains(resolved));
    }

    /// `ids()` enumerates every node exactly once, parents before children.
    #[test]
    fn ids_cover_the_tree(
        leaf_spec in prop::collection::vec(
            prop::collection::vec(prop::option::of(0u8..2), 1..3),
            1..4,
        ),
    ) {
        let tree = build_tree(&leaf_spec);
        let ids = tree.root.ids();
        let expected = 1 + leaf_spec.len() + leaf_spec.iter().map(|b| b.len()).sum::<usize>();
        prop_assert_eq!(ids.len(), expected);
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), expected, "ids are unique");
        prop_assert_eq!(ids[0], "root");
    }

    /// Repository lookup returns the tree that was stored under the key.
    #[test]
    fn repository_is_a_map(keys in prop::collection::vec("[a-z-]{1,10}", 1..6)) {
        let mut repo = FaultTreeRepository::new();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        for key in &deduped {
            repo.add(FaultTree::new(key.clone(), FaultNode::branch(format!("r-{key}"), "t")));
        }
        for key in &deduped {
            let expected = format!("r-{key}");
            prop_assert_eq!(repo.select(key).unwrap().root.id.clone(), expected);
        }
        prop_assert!(repo.select("definitely-not-a-key").is_none());
    }
}

#[test]
fn rolling_upgrade_repository_trees_have_unique_keys() {
    let repo = pod_faulttree::rolling_upgrade_repository(true);
    let mut keys: Vec<&str> = repo
        .trees()
        .iter()
        .map(|t| t.assertion_key.as_str())
        .collect();
    let n = keys.len();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), n, "duplicate assertion keys in the repository");
}

#[test]
fn every_library_tree_has_at_least_one_testable_fault() {
    for amended in [true, false] {
        let repo = pod_faulttree::rolling_upgrade_repository(amended);
        for tree in repo.trees() {
            assert!(
                tree.root.potential_faults(None) > 0,
                "tree {} has nothing to test",
                tree.assertion_key
            );
        }
    }
}
